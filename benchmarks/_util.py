"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Besides
the pytest-benchmark timing, the regenerated data is written to
``benchmarks/results/<experiment>.txt`` (and echoed to stdout) so that
``EXPERIMENTS.md``'s paper-vs-measured records can be re-derived from a
plain ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINES_DIR = pathlib.Path(__file__).parent / "baselines"
REPO_ROOT = pathlib.Path(__file__).parent.parent

#: Default fraction a throughput metric may fall below its committed
#: baseline before the perf-smoke job fails the build.
REGRESSION_TOLERANCE = 0.25


def record_result(experiment: str, text: str) -> None:
    """Persist and echo one experiment's regenerated data."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {experiment} ===")
    print(text)


def record_json(experiment: str, payload: dict) -> None:
    """Persist one experiment's machine-readable metrics.

    ``BENCH_*`` experiments are additionally copied to the repository
    root: those are the canonical committed baselines that
    ``repro obs diff BENCH_solver.json benchmarks/results/BENCH_solver.json``
    gates against, so running the benchmarks refreshes them in place.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    path = RESULTS_DIR / f"{experiment}.json"
    path.write_text(text)
    if experiment.startswith("BENCH_"):
        (REPO_ROOT / f"{experiment}.json").write_text(text)
    print(f"\n=== {experiment} ===")
    print(text.rstrip("\n"))


def load_baseline(experiment: str) -> dict:
    """The committed baseline metrics for ``experiment`` ({} if none)."""
    path = BASELINES_DIR / f"{experiment}.json"
    if not path.exists():
        return {}
    return json.loads(path.read_text())


def check_regression(experiment: str, measured: dict,
                     tolerance: float = REGRESSION_TOLERANCE,
                     skip_prefixes: tuple = (),
                     skip_reason: str = "") -> None:
    """Fail if a measured metric regressed >``tolerance`` vs baseline.

    Only keys present in *both* the baseline file and ``measured`` are
    compared, and every compared metric is bigger-is-better (speedups,
    items/sec); a missing baseline file makes the check a no-op so the
    benchmarks still run on branches that have not recorded one.

    ``skip_prefixes`` exempts baseline keys from the gate with an
    explicit logged reason — e.g. ``speedup_jobs*`` on a machine with
    too few CPUs to express parallel speedup — so a skipped assertion
    is visible in the benchmark log, never silent.
    """
    baseline = load_baseline(experiment)
    for key, reference in baseline.items():
        if any(key.startswith(prefix) for prefix in skip_prefixes):
            print(f"{experiment}.{key}: regression gate skipped "
                  f"({skip_reason or 'exempted by caller'})")
            continue
        if key not in measured:
            continue
        if not isinstance(reference, (int, float)) or isinstance(
                reference, bool):
            continue
        floor = reference * (1.0 - tolerance)
        assert measured[key] >= floor, (
            f"{experiment}.{key} regressed: measured {measured[key]:.3f} "
            f"< floor {floor:.3f} (baseline {reference:.3f} "
            f"- {tolerance:.0%} tolerance)")
