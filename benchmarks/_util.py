"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Besides
the pytest-benchmark timing, the regenerated data is written to
``benchmarks/results/<experiment>.txt`` (and echoed to stdout) so that
``EXPERIMENTS.md``'s paper-vs-measured records can be re-derived from a
plain ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record_result(experiment: str, text: str) -> None:
    """Persist and echo one experiment's regenerated data."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {experiment} ===")
    print(text)
