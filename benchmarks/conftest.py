"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import pytest

from repro.core import SramDramComparison
from repro.units import kb, Mb

#: Retention pinned to the DRAM-technology 6-sigma worst case (see
#: examples/retention_monte_carlo.py) so benchmarks are deterministic
#: and cheap; the Monte-Carlo itself is benchmarked separately.
RETENTION = 1e-3


@pytest.fixture(scope="session")
def comparison() -> SramDramComparison:
    return SramDramComparison(
        sizes=(128 * kb, 256 * kb, 512 * kb, 1024 * kb, 2 * Mb),
        retention_override=RETENTION,
    )


@pytest.fixture(scope="session")
def two_point_comparison() -> SramDramComparison:
    """Just the paper's two headline sizes, for the heavier benchmarks."""
    return SramDramComparison(sizes=(128 * kb, 2 * Mb),
                              retention_override=RETENTION)
