"""E11 — Paper Sec. I: the 3D-interconnect context.

"3D vias are typically smaller and have less parasitic capacitance than
off-chip connections […] a better bandwidth-energy trade off."  The
bench regenerates the link comparison and the Fig. 2 stack.
"""

from repro.core import format_table
from repro.stack3d import compare_links, hybrid_cache_stack
from repro.units import pJ
from benchmarks._util import record_result


def test_3d_routing_energy(benchmark):
    result = benchmark.pedantic(compare_links, rounds=1, iterations=1)

    table = format_table(
        ["link", "energy/bit (pJ)", "bandwidth (Gb/s)", "power @64Gb/s (mW)"],
        [[name,
          entry["energy_per_bit_j"] / pJ,
          entry["aggregate_bandwidth_bps"] / 1e9,
          entry["power_w"] * 1e3]
         for name, entry in result.items()],
    )
    record_result("routing_3d_links", table)

    tsv, off = result["3d-tsv"], result["off-chip"]
    assert tsv["energy_per_bit_j"] < off["energy_per_bit_j"] / 100
    assert tsv["aggregate_bandwidth_bps"] > off["aggregate_bandwidth_bps"]


def test_3d_hybrid_stack(benchmark):
    stack = benchmark.pedantic(hybrid_cache_stack, rounds=1, iterations=1)
    l1, l2 = stack.dies[1].macros
    table = format_table(
        ["quantity", "value"],
        [["stack footprint (mm2)", stack.footprint * 1e6],
         ["memory capacity (Mb)", stack.memory_capacity() / (1024 * 1024)],
         ["TSV signal links", stack.interface().max_links],
         ["L1 access (ns)", l1.access_time() * 1e9],
         ["L2 access (ns)", l2.access_time() * 1e9]],
    )
    record_result("hybrid_stack", table)

    assert l2.access_time() > l1.access_time()
    assert stack.interface().max_links > 500
