"""E10 — Ablation study of the architectural choices (ours).

DESIGN.md calls out three design choices the paper motivates
qualitatively; this bench quantifies each by disabling it:

* the local write-after-read / localized refresh (Fig. 4),
* the low-swing global bitline,
* the fine matrix granularity (short LBLs).
"""

from repro.core import ablate_architecture, format_table, sweep_cells_per_lbl
from benchmarks._util import record_result


def test_ablation_architecture(benchmark):
    results = benchmark.pedantic(ablate_architecture, rounds=1, iterations=1)

    table = format_table(
        ["feature removed", "metric", "proposed", "ablated", "change"],
        [[r.feature, r.metric, r.proposed_value, r.ablated_value,
          f"{r.penalty_factor:.2f}x"] for r in results],
    )
    record_result("ablation_architecture", table)

    by_feature = {r.feature: r for r in results}
    # Localized restore: refresh energy and hidden latency both benefit.
    assert by_feature["local_restore"].penalty_factor > 1.1
    assert by_feature["local_restore_latency"].penalty_factor > 1.2
    # Low-swing GBL: read energy benefit.
    assert by_feature["low_swing_gbl"].penalty_factor > 1.1
    # Fine granularity: a monolithic bitline loses >90 % of the signal.
    assert by_feature["fine_granularity_signal"].penalty_factor < 0.1


def test_ablation_lbl_granularity_sweep(benchmark):
    """The granularity knob as a sweep — Fig. 1's design choice."""
    rows = benchmark.pedantic(
        sweep_cells_per_lbl, kwargs={"values": (8, 16, 32, 64, 128, 256)},
        rounds=1, iterations=1)

    table = format_table(
        ["cells/LBL", "signal (mV)", "access (ns)", "read E (pJ)",
         "area (mm2)"],
        [[r.cells_per_lbl, r.read_signal * 1e3, r.access_time * 1e9,
          r.read_energy * 1e12, r.area * 1e6] for r in rows],
    )
    record_result("ablation_lbl_sweep", table)

    signals = [r.read_signal for r in rows]
    areas = [r.area for r in rows]
    assert signals == sorted(signals, reverse=True)
    assert areas == sorted(areas, reverse=True)
