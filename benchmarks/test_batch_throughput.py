"""Batched transient solver throughput: samples/sec vs batch size.

The batched sample-axis Newton engine (:mod:`repro.spice.batch`) must
deliver at least a 3x samples/sec improvement at B=32 on the paper's
transistor-level local-block Monte-Carlo workload — on one core, purely
by amortising Python dispatch over the sample axis — while staying
bit-identical to the per-sample scalar path.  Serial and batched runs
are interleaved rep by rep and the *best* time per configuration is
compared (min-over-reps cancels the load spikes of a noisy shared
machine without averaging them into the result); identity is asserted
on every rep, not just the fastest.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cells.dram1t1c import Dram1t1cCell
from repro.spice.batch import eval_model_batch
from repro.variability.localblock_mc import LocalBlockMcModel
from benchmarks._util import check_regression, record_json, record_result

SAMPLES = 32
BATCH_SIZES = (1, 8, 32)
REPS = 4
MIN_SPEEDUP_B32 = 3.0
SEED = 2009


def _rngs():
    return [np.random.default_rng(child)
            for child in np.random.SeedSequence(SEED).spawn(SAMPLES)]


def _run_serial(model):
    start = time.perf_counter()
    values = [model(rng) for rng in _rngs()]
    return time.perf_counter() - start, values


def _run_batched(model, batch):
    rngs = _rngs()
    start = time.perf_counter()
    values = []
    for chunk_start in range(0, SAMPLES, batch):
        outcomes = eval_model_batch(model, rngs[chunk_start:
                                               chunk_start + batch])
        for ok, value in outcomes:
            assert ok, f"batched sample failed: {value!r}"
            values.append(value)
    return time.perf_counter() - start, values


def test_batch_throughput_and_bit_identity():
    model = LocalBlockMcModel(Dram1t1cCell.scratchpad())

    best = {size: float("inf") for size in BATCH_SIZES}
    for _ in range(REPS):
        elapsed, reference = _run_serial(model)
        best[1] = min(best[1], elapsed)
        for size in BATCH_SIZES[1:]:
            elapsed, values = _run_batched(model, size)
            # The speedup must never buy numerical drift: every batch
            # size reproduces the scalar samples bit for bit.
            assert values == reference, (
                f"B={size} drifted from the serial sample vector")
            best[size] = min(best[size], elapsed)

    speedups = {size: best[1] / best[size] for size in BATCH_SIZES}
    metrics = {
        "workload": "localblock-read MC (16 cells/LBL, 700 steps)",
        "samples": SAMPLES,
        "reps": REPS,
    }
    for size in BATCH_SIZES:
        metrics[f"samples_per_sec_b{size}"] = round(SAMPLES / best[size], 2)
    for size in BATCH_SIZES[1:]:
        metrics[f"speedup_b{size}"] = round(speedups[size], 3)
    record_json("BENCH_batch", metrics)
    record_result("batch_throughput", "\n".join([
        f"batched vs serial Newton, {SAMPLES}-sample local-block MC:",
        *(f"  B={size:>2}: {best[size] * 1e3:8.1f} ms  "
          f"{SAMPLES / best[size]:7.2f} samples/s  "
          f"({speedups[size]:5.2f}x vs serial)" for size in BATCH_SIZES),
        f"  B=32 floor: {MIN_SPEEDUP_B32}x (asserted)",
    ]))

    assert speedups[32] >= MIN_SPEEDUP_B32, (
        f"B=32 speedup {speedups[32]:.2f}x fell below the "
        f"{MIN_SPEEDUP_B32}x floor "
        f"(best times: {[round(best[s], 3) for s in BATCH_SIZES]})")
    check_regression("BENCH_batch", metrics)
