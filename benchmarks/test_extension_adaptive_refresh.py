"""E12 (extension) — adaptive refresh: temperature tracking + binning.

Quantifies the refresh refinements the localized architecture enables
beyond the paper's uniform worst-case scheme.
"""

from repro.core import FastDramDesign, format_table
from repro.refresh import TemperatureAdaptiveRefresh, plan_binned_refresh
from repro.units import si_format
from benchmarks._util import record_result


def test_extension_temperature_adaptive(benchmark):
    adaptive = TemperatureAdaptiveRefresh(base_retention=1e-3)

    def sweep():
        return [(t, adaptive.refresh_period_at(t),
                 adaptive.power_saving_vs_fixed(t, 358.0))
                for t in (300.0, 315.0, 330.0, 345.0, 358.0)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["temperature (K)", "refresh period", "saving vs fixed-85C"],
        [[t, si_format(period, "s"), f"{saving:.1f}x"]
         for t, period, saving in rows],
    )
    record_result("extension_temperature_adaptive", table)

    savings = [saving for _t, _p, saving in rows]
    assert savings == sorted(savings, reverse=True)
    assert savings[0] > 30.0  # room-temperature operation
    assert savings[-1] == 1.0  # at the design point


def test_extension_binned_refresh(benchmark):
    retention = FastDramDesign().cell().retention_model()

    def plan_both():
        block = plan_binned_refresh(retention, n_blocks=128,
                                    rows_per_block=32, n_bins=6)
        row = plan_binned_refresh(retention, n_blocks=4096,
                                  rows_per_block=1, n_bins=6)
        return block, row

    block_plan, row_plan = benchmark.pedantic(plan_both, rounds=1,
                                              iterations=1)
    table = format_table(
        ["granularity", "granules", "saving vs uniform"],
        [["per local block", block_plan.n_blocks,
          f"{block_plan.saving_factor():.2f}x"],
         ["per row", row_plan.n_blocks,
          f"{row_plan.saving_factor():.2f}x"]],
    )
    record_result("extension_binned_refresh", table)

    assert block_plan.saving_factor() > 1.1
    assert row_plan.saving_factor() > block_plan.saving_factor()
    assert row_plan.saving_factor() > 2.0
