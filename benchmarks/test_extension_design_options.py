"""E13 (extension) — design options the paper leaves as future work.

* dedicated DRAM peripherals (paper Sec. IV: "further gain should be
  possible by designing peripherals dedicated to a DRAM matrix"),
* banked composition of large capacities,
* PVT corner envelope of the headline figures.
"""

import dataclasses

from repro.array import compare_banking_options
from repro.core import FastDramDesign, PvtAnalysis, format_table
from repro.sramref import SramBaselineDesign
from repro.units import Mb, kb, mm2, ns, pJ, si_format, uW
from benchmarks._util import record_result


def test_extension_dedicated_peripherals(benchmark, two_point_comparison):
    def areas():
        out = []
        for bits in (128 * kb, 2 * Mb):
            dram = two_point_comparison.dram_macro(bits)
            sram = two_point_comparison.sram_macro(bits)
            dedicated = dataclasses.replace(dram.floorplan,
                                            dedicated_periphery=True)
            out.append((bits, sram.area(), dram.area(),
                        dedicated.total_area()))
        return out

    rows = benchmark.pedantic(areas, rounds=1, iterations=1)
    table = format_table(
        ["size", "SRAM (mm2)", "DRAM shared periph", "DRAM dedicated",
         "gain shared", "gain dedicated"],
        [[f"{bits // kb} kb", sram / mm2, shared / mm2, dedicated / mm2,
          f"{sram / shared:.2f}x", f"{sram / dedicated:.2f}x"]
         for bits, sram, shared, dedicated in rows],
    )
    record_result("extension_dedicated_peripherals", table)

    for _bits, sram, shared, dedicated in rows:
        assert dedicated < shared < sram


def test_extension_banking(benchmark):
    options = benchmark.pedantic(
        compare_banking_options,
        args=(FastDramDesign(), 2 * Mb),
        kwargs={"bank_counts": (1, 2, 4, 8)},
        rounds=1, iterations=1)

    table = format_table(
        ["banks", "access (ns)", "read (pJ)", "area (mm2)"],
        [[count, memory.access_time() / ns, memory.read_energy() / pJ,
          memory.area() / mm2]
         for count, memory in sorted(options.items())],
    )
    record_result("extension_banking", table)

    # The hierarchical single macro already scales: banking buys little
    # speed and costs energy/area — a real (negative) design result.
    mono = options[1]
    assert options[4].access_time() < 1.1 * mono.access_time()
    assert options[4].read_energy() > mono.read_energy()
    assert options[4].area() > mono.area()


def test_extension_pvt_envelope(benchmark):
    analysis = PvtAnalysis(retention_samples=400)
    points = benchmark.pedantic(
        analysis.sweep, kwargs={"temperatures": (300.0, 358.0)},
        rounds=1, iterations=1)

    table = format_table(
        ["corner", "access (ns)", "refresh power (uW)", "worst retention"],
        [[p.label, p.access_time / ns, p.static_power / uW,
          si_format(p.worst_retention, "s")] for p in points],
    )
    record_result("extension_pvt_envelope", table)

    by_label = {p.label: p for p in points}
    assert (by_label["SS@358K"].access_time
            > by_label["FF@300K"].access_time)
    # The hot-retention finding: static power up by >10x at 358 K.
    assert (by_label["TT@358K"].static_power
            > 10 * by_label["TT@300K"].static_power)
