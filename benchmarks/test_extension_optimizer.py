"""E17 (extension) — design-space optimisation.

Searches the (cells/LBL, word width, supply) grid under the paper's
1.3 ns access constraint and reports the Pareto front — the adoption
tool the paper's single design point invites.
"""

from repro.core import DesignOptimizer, format_table
from repro.units import ns
from benchmarks._util import record_result


def test_extension_optimizer(benchmark):
    optimizer = DesignOptimizer(max_access_time=1.3 * ns, activity=0.1)
    result = benchmark.pedantic(optimizer.run, rounds=1, iterations=1)

    rows = [[c.cells_per_lbl, c.word_bits, c.vdd,
             c.access_time / ns, c.total_power * 1e6, c.area * 1e6]
            for c in sorted(result.pareto_front,
                            key=lambda c: c.access_time)]
    record_result("extension_optimizer_front", format_table(
        ["cells/LBL", "word", "vdd", "access (ns)", "power (uW)",
         "area (mm2)"], rows))

    assert len(result.pareto_front) >= 3
    # The paper's design point survives on or near the front.
    paper = next(c for c in result.candidates
                 if c.cells_per_lbl == 32 and c.word_bits == 32
                 and abs(c.vdd - 1.2) < 1e-9)
    assert not any(c.dominates(paper) for c in result.candidates)
    # Every constraint respected.
    for candidate in result.candidates:
        assert candidate.access_time <= 1.3 * ns
