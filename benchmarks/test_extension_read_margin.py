"""E14 (extension) — sensing-aware read margin vs refresh interval.

Quantifies how conservative the paper's per-cell retention criterion is
against the criterion that actually matters at the sense amplifier:
the decayed charge-sharing differential must clear the SA offset.
"""

from repro.array import ReadMarginAnalysis
from repro.core import FastDramDesign, format_table
from repro.units import kb, si_format
from benchmarks._util import record_result


def test_extension_read_margin(benchmark):
    macro = FastDramDesign().build(128 * kb, retention_override=1e-3)
    analysis = ReadMarginAnalysis(
        organization=macro.organization,
        local_sa=macro.local_sa,
        retention=macro.cell_design.retention_model(),
        samples=3000,
    )

    def run():
        points = analysis.sweep((1e-4, 1e-3, 5e-3, 2e-2, 1e-1))
        threshold = analysis.max_interval_at_yield(target_failure=1e-3)
        return points, threshold

    points, threshold = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[si_format(p.refresh_interval, "s"),
             f"{p.mean_margin * 1e3:.0f} mV",
             f"{p.worst_margin * 1e3:.0f} mV",
             f"{100 * p.failure_fraction:.2f} %"] for p in points]
    rows.append(["max interval @1e-3 fails", "-", "-",
                 si_format(threshold, "s")])
    record_result("extension_read_margin", format_table(
        ["refresh interval", "mean margin", "worst margin",
         "fail fraction"], rows))

    # Margin decays monotonically; failures only appear at long intervals.
    means = [p.mean_margin for p in points]
    assert means == sorted(means, reverse=True)
    assert points[0].failure_fraction == 0.0
    assert points[-1].failure_fraction > 0.05
    # The sensing criterion beats the paper's conservative cell criterion.
    cell_worst = macro.retention_statistics(count=600).worst_case
    assert threshold > 2 * cell_worst
