"""E16 (extension) — thermal feedback in the 3D stack.

The paper's Fig. 2 system stacks the DRAM over hot logic; this bench
solves the temperature/retention/refresh fixed point across logic power
levels and reports how much of the static-power win survives.
"""

from repro.core import format_table
from repro.refresh import TemperatureAdaptiveRefresh
from repro.stack3d import (
    RefreshThermalCoupling,
    StackThermalModel,
    ThermalLayer,
)
from repro.units import uW
from benchmarks._util import record_result

ROWS_128KB = 4096
ROW_ENERGY = 1.77e-12  # refresh_row_energy of the 128 kb macro
SRAM_LEAK_318K = 113e-6 * 2.0 ** ((318 - 300) / 18.0)  # rough hot derate


def solve_at(logic_power: float):
    stack = StackThermalModel(
        layers=(ThermalLayer("logic", power=logic_power, area=25e-6),
                ThermalLayer("memory", power=0.05, area=25e-6)),
        ambient=318.0, sink_resistance=2.0)
    coupling = RefreshThermalCoupling(
        stack=stack, memory_layer=1,
        refresh_model=TemperatureAdaptiveRefresh(base_retention=1e-3,
                                                 base_temperature=300.0),
        rows=ROWS_128KB, row_energy=ROW_ENERGY)
    result, power = coupling.solve()
    return result.temperatures[1], power


def test_extension_thermal_feedback(benchmark):
    points = benchmark.pedantic(
        lambda: [(p, *solve_at(p)) for p in (0.5, 2.0, 4.0, 6.0)],
        rounds=1, iterations=1)

    table = format_table(
        ["logic power (W)", "memory die (K)", "refresh power (uW)"],
        [[p, f"{t:.1f}", f"{power / uW:.1f}"] for p, t, power in points],
    )
    record_result("extension_thermal_feedback", table)

    temperatures = [t for _p, t, _w in points]
    powers = [w for _p, _t, w in points]
    assert temperatures == sorted(temperatures)
    assert powers == sorted(powers)
    # Even under a 6 W logic die the refresh power stays well below the
    # (equally hot) SRAM's leakage: the architecture's win survives the
    # stack's thermal reality.
    assert powers[-1] < SRAM_LEAK_318K
