"""E15 (extension) — supply scaling / boost mode.

The baseline [10] ships a boosted-supply mode (480 MHz -> 850 MHz);
the same knob applied to the fast DRAM: speed up with supply, dynamic
energy up ~quadratically, minimum-EDP point inside the sweep range.
"""

from repro.core import format_table, voltage_sweep
from repro.units import ns, pJ
from benchmarks._util import record_result


def test_extension_voltage_sweep(benchmark):
    points = benchmark.pedantic(
        voltage_sweep, kwargs={"supplies": (0.9, 1.0, 1.1, 1.2, 1.3)},
        rounds=1, iterations=1)

    table = format_table(
        ["vdd (V)", "access (ns)", "read (pJ)", "EDP (1e-21 J*s)"],
        [[p.vdd, p.access_time / ns, p.read_energy / pJ,
          p.energy_delay_product * 1e21] for p in points],
    )
    record_result("extension_voltage_sweep", table)

    times = [p.access_time for p in points]
    energies = [p.read_energy for p in points]
    assert times == sorted(times, reverse=True)
    assert energies == sorted(energies)
    # Boost headroom: >= 15 % faster from 0.9 V to 1.3 V.
    assert times[0] / times[-1] > 1.15
