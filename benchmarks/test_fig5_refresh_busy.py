"""E1 — Paper Fig. 5: percentage of busy cycles due to refresh.

Monoblock vs 128-localblock DRAM at 500 MHz, swept over retention time.
Shape assertions: the localized scheme is orders of magnitude cheaper
and becomes negligible at high retention.
"""

import numpy as np
import pytest

from repro.core import format_table
from repro.refresh import (
    LocalizedRefresh,
    MonoblockRefresh,
    RefreshSimulator,
    uniform_random_trace,
)
from benchmarks._util import record_result

N_BLOCKS, ROWS = 128, 32
CLOCK = 500e6
CYCLES = 60_000
ACTIVITY = 0.5
RETENTIONS_US = (20, 50, 100, 500, 1000)


def run_sweep():
    rng = np.random.default_rng(2009)
    trace = uniform_random_trace(CYCLES, N_BLOCKS, ACTIVITY, rng)
    rows = []
    for retention_us in RETENTIONS_US:
        period = int(retention_us * 1e-6 * CLOCK)
        results = {}
        for cls, name in ((MonoblockRefresh, "mono"),
                          (LocalizedRefresh, "local")):
            policy = cls(n_blocks=N_BLOCKS, rows_per_block=ROWS,
                         refresh_period_cycles=period)
            results[name] = RefreshSimulator(policy).run(trace)
        rows.append((retention_us, results["mono"].busy_fraction,
                     results["local"].busy_fraction))
    return rows


def test_fig5_refresh_busy_cycles(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = format_table(
        ["retention (us)", "monoblock busy %", "128 localblocks busy %",
         "gain"],
        [[r_us, 100 * mono, 100 * local,
          f"{mono / max(local, 1e-12):.0f}x"]
         for r_us, mono, local in rows],
    )
    record_result("fig5_refresh_busy", table)

    for _retention, mono, local in rows:
        # The paper's message: localized refresh wipes out the penalty.
        assert local < 0.05 * mono
    # Negligible at high retention ("especially for high retention time").
    assert rows[-1][2] < 0.001
    # Monoblock penalty scales ~1/retention.
    assert rows[0][1] > 5 * rows[-1][1]
