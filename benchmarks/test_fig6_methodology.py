"""E9 — Paper Fig. 6: the three-step methodology, end to end.

Benchmarks the full flow (scratch-pad design + transistor-level
local-block validation, DRAM-technology estimate, size extension) and
asserts its central consistency claim: 32 cells/LBL in DRAM technology
times like 16 cells/LBL in the logic scratch-pad.
"""

from repro.core import MethodologyFlow, format_table
from repro.units import kb, ns, pJ
from benchmarks._util import record_result


def test_fig6_methodology_flow(benchmark):
    flow = MethodologyFlow(total_bits=128 * kb)
    report = benchmark.pedantic(flow.run, rounds=1, iterations=1)

    rows = [
        ["scratchpad access (ns)",
         report.scratchpad_macro.access_time() / ns],
        ["DRAM-tech access (ns)", report.dram_macro.access_time() / ns],
        ["timing ratio (32 vs 16 cells)", report.timing_ratio],
        ["scratchpad read (pJ)",
         report.scratchpad_macro.read_energy().total / pJ],
        ["DRAM-tech read (pJ)",
         report.dram_macro.read_energy().total / pJ],
    ]
    for wave in report.scratchpad_waveforms:
        rows.append([f"circuit read '{wave.stored_value}' GBL swing (mV)",
                     wave.gbl_swing * 1e3])
    record_result("fig6_methodology",
                  format_table(["quantity", "value"], rows))

    # The doubling finding (paper Sec. III).
    assert report.doubling_holds
    # The circuit-level validation passed for both data values.
    assert all(w.restored_correctly for w in report.scratchpad_waveforms)
    # Fig. 3's GBL waveform: 0.4 V -> 0.3 V on a read '0'.
    read0 = next(w for w in report.scratchpad_waveforms
                 if w.stored_value == 0)
    assert 0.05 < read0.gbl_swing < 0.15
