"""E2 — Paper Fig. 7(a): access time vs memory size, DRAM vs SRAM.

Shape assertions: the two matrices stay within ~25 % of each other at
128 kb ("the impact … is negligible") and the DRAM does not fall behind
at 2 Mb ("especially for medium size (2Mb) memories").
"""

from repro.core import format_table
from repro.units import ns
from benchmarks._util import record_result


def test_fig7a_access_time(benchmark, comparison):
    rows = benchmark.pedantic(comparison.access_time, rounds=1, iterations=1)

    table = format_table(
        ["size", "SRAM (ns)", "DRAM (ns)", "SRAM/DRAM"],
        [[r.size_label, r.sram / ns, r.dram / ns, r.ratio] for r in rows],
    )
    record_result("fig7a_access_time", table)

    first, last = rows[0], rows[-1]
    # 128 kb: similar, with the DRAM paying a small WL-overdrive penalty.
    assert 0.8 < first.ratio < 1.2
    assert first.dram >= first.sram
    # 2 Mb: the denser DRAM has caught up (or passed) the SRAM.
    assert last.ratio >= 1.0
    # Both grow monotonically with size.
    for series in ("sram", "dram"):
        values = [getattr(r, series) for r in rows]
        assert values == sorted(values)
    # Headline: the 128 kb DRAM is in the paper's 1.3 ns band.
    assert 0.78 * ns < first.dram < 1.82 * ns
