"""E3 — Paper Fig. 7(b): dynamic read and write energy vs memory size.

Shape assertions: read energy similar between the matrices; write energy
significantly better for the DRAM at large sizes.
"""

from repro.core import format_table
from repro.units import pJ
from benchmarks._util import record_result


def collect(comparison):
    return comparison.read_energy(), comparison.write_energy()


def test_fig7b_dynamic_energy(benchmark, comparison):
    reads, writes = benchmark.pedantic(collect, args=(comparison,),
                                       rounds=1, iterations=1)

    table = format_table(
        ["size", "read SRAM (pJ)", "read DRAM (pJ)",
         "write SRAM (pJ)", "write DRAM (pJ)", "write SRAM/DRAM"],
        [[rd.size_label, rd.sram / pJ, rd.dram / pJ,
          wr.sram / pJ, wr.dram / pJ, wr.ratio]
         for rd, wr in zip(reads, writes)],
    )
    record_result("fig7b_dynamic_energy", table)

    # "A similar read active power for the two matrices."
    for row in reads:
        assert 0.7 < row.ratio < 1.6
    # "A significant improvement for the write energy of a large matrix."
    assert writes[-1].ratio > 1.5
    # The write advantage grows with size.
    assert writes[-1].ratio > writes[0].ratio
    # At 128 kb the DRAM read costs slightly more (WL overdrive + SA).
    assert reads[0].dram > reads[0].sram
