"""E4 — Paper Fig. 7(c): cell static power vs memory size.

SRAM leakage vs DRAM refresh power.  Shape assertion: "the cell static
power consumption is 10 times less for DRAM than for the SRAM memory,
for a 2 Mb memory" — accepted as a 5x-20x band.
"""

from repro.core import format_table
from repro.units import uW
from benchmarks._util import record_result


def test_fig7c_static_power(benchmark, comparison):
    rows = benchmark.pedantic(comparison.static_power, rounds=1,
                              iterations=1)

    table = format_table(
        ["size", "SRAM leakage (uW)", "DRAM refresh (uW)", "gain"],
        [[r.size_label, r.sram / uW, r.dram / uW, f"{r.ratio:.1f}x"]
         for r in rows],
    )
    record_result("fig7c_static_power", table)

    # The paper's factor 10 at 2 Mb (band: 5x-20x).
    assert 5.0 < rows[-1].ratio < 20.0
    # The gain holds across sizes (both mechanisms scale with bits).
    for row in rows:
        assert row.ratio > 5.0
    # Both grow with capacity.
    for series in ("sram", "dram"):
        values = [getattr(r, series) for r in rows]
        assert values == sorted(values)


def test_fig7c_retention_sensitivity(benchmark):
    """Fig. 7c's hidden axis: the assumed worst-case retention."""
    from repro.core import sweep_retention

    rows = benchmark.pedantic(
        sweep_retention, kwargs={"values": (1e-4, 3e-4, 1e-3, 3e-3, 1e-2)},
        rounds=1, iterations=1)

    table = format_table(
        ["retention (us)", "refresh power (uW)"],
        [[r.retention_time * 1e6, r.static_power / uW] for r in rows],
    )
    record_result("fig7c_retention_sensitivity", table)

    powers = [r.static_power for r in rows]
    assert powers == sorted(powers, reverse=True)
