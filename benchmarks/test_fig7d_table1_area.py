"""E5 — Paper Fig. 7(d) and Table I: macro area, DRAM vs SRAM.

Table I gives the two sizes the paper prints (128 kb and 2 Mb); the
figure sweeps sizes.  Shape assertion: "the total area is reduced by a
factor of 2.x" (2.7 at 2 Mb by our reading) — accepted as 2.2x-3.5x.
"""

from repro.core import format_table
from repro.units import mm2
from benchmarks._util import record_result


def test_fig7d_area_sweep(benchmark, comparison):
    rows = benchmark.pedantic(comparison.area, rounds=1, iterations=1)

    table = format_table(
        ["size", "SRAM (mm2)", "DRAM (mm2)", "gain"],
        [[r.size_label, r.sram / mm2, r.dram / mm2, f"{r.ratio:.2f}x"]
         for r in rows],
    )
    record_result("fig7d_area", table)

    for row in rows:
        assert row.dram < row.sram
    # The gain grows towards the raw cell-area ratio as peripherals
    # amortise.
    assert rows[-1].ratio >= rows[0].ratio * 0.95
    assert 2.2 < rows[-1].ratio < 3.5


def test_table1_memory_area(benchmark, two_point_comparison):
    rows = benchmark.pedantic(two_point_comparison.area, rounds=1,
                              iterations=1)

    table = format_table(
        ["Size", "SRAM (mm2)", "proposed DRAM (mm2)"],
        [[r.size_label, f"{r.sram / mm2:.4f}", f"{r.dram / mm2:.4f}"]
         for r in rows],
    )
    record_result("table1_memory_area", table)

    kb128, mb2 = rows
    # Magnitude checks for a 90 nm implementation.
    assert 0.1 * mm2 < kb128.sram < 0.5 * mm2
    assert 1.5 * mm2 < mb2.sram < 5.0 * mm2
    assert 2.0 < mb2.ratio < 3.5
