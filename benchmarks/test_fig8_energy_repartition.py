"""E6 — Paper Fig. 8: energy repartition in the fast DRAM.

Paper values (read / write): decoder 1.0 / 1.6 pJ, global SA 0.56 pJ,
cell 0.5 / 0.62 pJ, localblock 1.1 / 1.2 pJ.  Shape assertions: each
category within a +-50 % band, plus the 16 -> 32 cells/LBL "marginal
impact" finding attached to this figure in the paper text.
"""

import pytest

from repro.core import FastDramDesign, format_table
from repro.units import kb, pJ
from benchmarks._util import record_result

PAPER_READ = {"decode": 1.0, "cell": 0.50, "localblock": 1.1,
              "global_path": 0.56}
PAPER_WRITE = {"decode": 1.6, "cell": 0.62, "localblock": 1.2}


def test_fig8_energy_repartition(benchmark, two_point_comparison):
    repartition = benchmark.pedantic(
        two_point_comparison.energy_repartition, rounds=1, iterations=1)

    rows = []
    for category in ("decode", "cell", "localblock", "global_path", "io"):
        rows.append([
            category,
            repartition["read"][category] / pJ,
            PAPER_READ.get(category, "-"),
            repartition["write"][category] / pJ,
            PAPER_WRITE.get(category, "-"),
        ])
    table = format_table(
        ["category", "read (pJ)", "paper read", "write (pJ)", "paper write"],
        rows)
    record_result("fig8_energy_repartition", table)

    for category, paper in PAPER_READ.items():
        measured = repartition["read"][category] / pJ
        assert measured == pytest.approx(paper, rel=0.5), category
    for category, paper in PAPER_WRITE.items():
        measured = repartition["write"][category] / pJ
        assert measured == pytest.approx(paper, rel=0.5), category


def test_fig8_doubling_cells_marginal(benchmark):
    """Paper Sec. IV on Fig. 8: 'doubling the number of cells per LBL has
    a marginal impact on the power consumption, as most of the localblock
    power consumption is due to the local sense amplifiers'."""

    def energies():
        out = {}
        for cells in (16, 32):
            macro = FastDramDesign(cells_per_lbl=cells).build(
                128 * kb, retention_override=1e-3)
            out[cells] = macro.read_energy()
        return out

    result = benchmark.pedantic(energies, rounds=1, iterations=1)
    table = format_table(
        ["cells/LBL", "read total (pJ)", "localblock (pJ)"],
        [[cells, access.total / pJ, access.localblock / pJ]
         for cells, access in result.items()],
    )
    record_result("fig8_doubling_cells", table)

    delta = abs(result[32].total - result[16].total) / result[16].total
    assert delta < 0.15
