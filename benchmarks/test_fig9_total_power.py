"""E7 — Paper Fig. 9: total power vs activity for different sizes.

Random access pattern with as much read as write.  Shape assertions:
the DRAM improves overall power "especially for large arrays with low
activity" — the gain at low activity exceeds the gain at full activity,
and grows with memory size.
"""

from repro.core import format_table
from repro.units import uW
from benchmarks._util import record_result

ACTIVITIES = (0.001, 0.01, 0.1, 0.5, 1.0)


def test_fig9_total_power(benchmark, two_point_comparison):
    curves = benchmark.pedantic(
        two_point_comparison.total_power_curves,
        kwargs={"activities": ACTIVITIES},
        rounds=1, iterations=1)

    rows = []
    for bits, series in curves.items():
        for point in series:
            activity = ACTIVITIES[series.index(point)]
            rows.append([point.size_label, activity,
                         point.sram / uW, point.dram / uW,
                         f"{point.ratio:.2f}x"])
    table = format_table(
        ["size", "activity", "SRAM (uW)", "DRAM (uW)", "SRAM/DRAM"], rows)
    record_result("fig9_total_power", table)

    for bits, series in curves.items():
        low_gain = series[0].ratio
        high_gain = series[-1].ratio
        # DRAM never loses, and the static-power win dominates at low
        # activity.
        assert high_gain > 0.9
        assert low_gain > 2.0
        assert low_gain > high_gain
        # Power is monotone in activity for both matrices.
        for attr in ("sram", "dram"):
            values = [getattr(p, attr) for p in series]
            assert values == sorted(values)

    # "Especially for large arrays": the 2 Mb low-activity gain tops the
    # 128 kb one.
    sizes = sorted(curves)
    assert curves[sizes[-1]][0].ratio >= 0.9 * curves[sizes[0]][0].ratio
