"""E8 — The abstract's headline figures of the 128 kb macro.

"an access time of 1.3 ns for a dynamic energy of less than 0.2 pJ per
bit … a factor of 10 in static power … and a factor of 2.x in area."
"""

from repro.core import FastDramDesign, format_table
from repro.units import kb, ns, pJ
from benchmarks._util import record_result


def build_and_summarise():
    macro = FastDramDesign().build(128 * kb, retention_override=1e-3)
    return macro.summary()


def test_headline_figures(benchmark):
    summary = benchmark.pedantic(build_and_summarise, rounds=1, iterations=1)

    table = format_table(
        ["figure", "paper", "measured"],
        [
            ["access time (ns)", 1.3, summary["access_time_s"] / ns],
            ["energy per bit (pJ)", "< 0.2",
             summary["read_energy_per_bit_j"] / pJ],
            ["read energy (pJ)", "~3.2 (Fig. 8 sum)",
             summary["read_energy_j"] / pJ],
            ["area (mm2)", "Table I",
             summary["area_m2"] / 1e-6],
        ],
    )
    record_result("headline_figures", table)

    assert 0.78 * ns < summary["access_time_s"] < 1.82 * ns
    assert summary["read_energy_per_bit_j"] < 0.2 * pJ


def test_headline_retention_monte_carlo(benchmark):
    """The 6-sigma retention Monte-Carlo behind the static-power figure
    (timed: it is the costly part of a full evaluation)."""
    macro = FastDramDesign().build(128 * kb)

    stats = benchmark.pedantic(macro.retention_statistics,
                               kwargs={"count": 1000},
                               rounds=1, iterations=1)
    table = format_table(
        ["quantity", "value (us)"],
        [["typical retention", stats.typical * 1e6],
         ["6-sigma worst case", stats.worst_case * 1e6]],
    )
    record_result("headline_retention", table)
    assert 200e-6 < stats.worst_case < 5e-3
