"""Disabled-instrumentation overhead bound on the Fig. 5 loop.

The instrumentation layer promises that leaving its hooks compiled into
the hot paths costs < 2 % of the Fig. 5 refresh-interference loop while
disabled.  The bound is asserted deterministically: measure the cost of
one disabled hook (no-op span enter/exit + null-registry instrument
fetch/update + null event emit + null series sample), count how many
hooks one simulator run actually executes (via counting telemetry
instances with instrumentation enabled — metric fetches, spans, event
emits and series samples all count), and compare the product against
the measured loop time.  A direct enabled-vs-disabled wall-clock
comparison is also recorded for the timing summary, but not asserted —
it is the noisy version of the same quantity.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesRecorder
from repro.obs.tracing import Tracer
from repro.refresh import (LocalizedRefresh, MonoblockRefresh,
                           RefreshSimulator, uniform_random_trace)
from benchmarks._util import record_result

CYCLES = 20_000
N_BLOCKS, ROWS = 128, 32
OVERHEAD_BOUND = 0.02


class _CountingRegistry(MetricsRegistry):
    """Counts instrument fetches — one fetch ≈ one hook execution."""

    def __init__(self) -> None:
        super().__init__()
        self.fetches = 0

    def counter(self, name):
        self.fetches += 1
        return super().counter(name)

    def gauge(self, name):
        self.fetches += 1
        return super().gauge(name)

    def histogram(self, name, buckets=None):
        self.fetches += 1
        return super().histogram(name, buckets)


def _fig5_iteration(trace: np.ndarray) -> None:
    """One representative slice of the Fig. 5 sweep (both policies)."""
    period = int(100e-6 * 500e6)
    for cls in (MonoblockRefresh, LocalizedRefresh):
        policy = cls(n_blocks=N_BLOCKS, rows_per_block=ROWS,
                     refresh_period_cycles=period)
        RefreshSimulator(policy).run(trace)


def _time(fn, *args, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _disabled_hook_cost(iterations: int = 50_000) -> float:
    """Mean cost of one disabled hook bundle: span + metric fetch +
    update + event emit + series sample."""
    assert not obs.is_enabled()
    start = time.perf_counter()
    for _ in range(iterations):
        with obs.span("bench", key=1):
            pass
        obs.metrics().counter("bench.counter").inc()
        obs.event("bench.tick", key=1)
        obs.timeseries().series("bench.series").sample(1.0, 1.0)
    return (time.perf_counter() - start) / iterations


def test_disabled_overhead_below_bound():
    rng = np.random.default_rng(2009)
    trace = uniform_random_trace(CYCLES, N_BLOCKS, 0.5, rng)

    # 1. The real loop, instrumentation disabled (the shipped default).
    assert not obs.is_enabled()
    t_disabled = _time(_fig5_iteration, trace)

    # 2. Hooks executed per iteration, counted with instrumentation on
    #    (metric fetches + spans + event emits + series samples).
    registry = _CountingRegistry()
    tracer = Tracer()
    events = EventLog()
    timeseries = TimeSeriesRecorder()
    with obs.instrumented(registry=registry, tracer=tracer,
                          events=events, timeseries=timeseries):
        _fig5_iteration(trace)
    samples = sum(timeseries.series(name).count
                  for name in timeseries.names())
    hooks = (registry.fetches + tracer.total_spans()
             + events.emitted + samples)

    # 3. Per-hook disabled cost, measured in isolation.
    per_hook = _disabled_hook_cost()

    overhead = hooks * per_hook / t_disabled
    assert overhead < OVERHEAD_BOUND, (
        f"disabled instrumentation costs {overhead:.3%} of the Fig. 5 "
        f"loop ({hooks} hooks x {per_hook * 1e9:.0f} ns vs "
        f"{t_disabled * 1e3:.1f} ms)")

    # Noisy cross-check, recorded but not asserted.
    with obs.instrumented():
        t_enabled = _time(_fig5_iteration, trace)

    record_result("obs_overhead", "\n".join([
        f"fig5 slice ({CYCLES} cycles, both policies), best of 5:",
        f"  disabled instrumentation : {t_disabled * 1e3:9.2f} ms",
        f"  enabled instrumentation  : {t_enabled * 1e3:9.2f} ms",
        f"  hooks per iteration      : {hooks}",
        f"  disabled cost per hook   : {per_hook * 1e9:9.0f} ns",
        f"  bounded disabled overhead: {overhead:9.4%} "
        f"(asserted < {OVERHEAD_BOUND:.0%})",
    ]))


def test_disabled_hooks_record_nothing():
    rng = np.random.default_rng(2009)
    trace = uniform_random_trace(2000, N_BLOCKS, 0.5, rng)
    _fig5_iteration(trace)
    assert obs.tracer().finished_roots() == []
    assert obs.metrics().snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {}}
    assert obs.events().to_dicts() == []
    assert obs.timeseries().snapshot() == {}
