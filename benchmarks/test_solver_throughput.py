"""Solver fast-path throughput: compiled stamp plan vs legacy stamping.

The compiled :class:`~repro.spice.stampplan.StampPlan` must deliver at
least a 3x timesteps/sec improvement on the paper's 16-cell local-block
read transient while staying bit-identical to the legacy per-element
stamping loop.  Legacy/fast runs are interleaved in pairs and the
*median* per-pair ratio is asserted, which cancels the slow drift of a
noisy shared machine; per-run throughput (timesteps/sec, Newton
iterations/sec) is measured through the instrumentation counters the
solver already emits.
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from repro import FastDramDesign, obs
from repro.array.localblock import build_localblock_read_circuit
from repro.spice import simulate_transient
from repro.units import ns, ps
from benchmarks._util import check_regression, record_json, record_result

MIN_SPEEDUP = 3.0
PAIRS = 5
T_STOP = 0.5 * ns
DT = 1.0 * ps


def _localblock():
    cell = FastDramDesign().cell()
    circuit = build_localblock_read_circuit(cell, cells_per_lbl=16)
    initial = {"pre_rail": cell.bitline_precharge,
               "sa_rail": cell.bitline_precharge,
               "gbl_gnd": 0.3, "prech_ctl": 1.2}
    return circuit, initial


def _run(circuit, initial, stamp_plan):
    """One instrumented transient; returns (result, seconds, counters)."""
    with obs.instrumented() as registry:
        start = time.perf_counter()
        result = simulate_transient(circuit, t_stop=T_STOP, dt=DT,
                                    initial_voltages=initial,
                                    stamp_plan=stamp_plan)
        elapsed = time.perf_counter() - start
        snapshot = registry.snapshot()
    steps = snapshot["counters"]["spice.timesteps"]
    iters = snapshot["histograms"]["spice.newton.iterations"]["sum"]
    return result, elapsed, steps, iters


def test_stamp_plan_speedup_and_bit_identity():
    circuit, initial = _localblock()

    ratios, fast_rates, legacy_rates, newton_rates = [], [], [], []
    reference = None
    for _ in range(PAIRS):
        legacy, t_legacy, steps, _ = _run(circuit, initial, stamp_plan=False)
        fast, t_fast, _, iters = _run(circuit, initial, stamp_plan=True)
        # The speedup must never buy numerical drift.
        assert np.array_equal(fast.data, legacy.data)
        if reference is None:
            reference = fast.data
        else:
            assert np.array_equal(fast.data, reference)  # runs repeat too
        ratios.append(t_legacy / t_fast)
        fast_rates.append(steps / t_fast)
        legacy_rates.append(steps / t_legacy)
        newton_rates.append(iters / t_fast)

    speedup = statistics.median(ratios)
    metrics = {
        "circuit": "localblock-read (16 cells/LBL)",
        "timesteps": int(round(T_STOP / DT)),
        "pairs": PAIRS,
        "speedup_fast_vs_legacy": round(speedup, 3),
        "speedup_per_pair": [round(r, 3) for r in ratios],
        "timesteps_per_sec_fast": round(max(fast_rates), 1),
        "timesteps_per_sec_legacy": round(max(legacy_rates), 1),
        "newton_iters_per_sec_fast": round(max(newton_rates), 1),
    }
    record_json("BENCH_solver", metrics)
    record_result("solver_throughput", "\n".join([
        "stamp-plan fast path vs legacy stamping, 16-cell local block:",
        f"  timesteps/sec fast   : {metrics['timesteps_per_sec_fast']:10.1f}",
        f"  timesteps/sec legacy : "
        f"{metrics['timesteps_per_sec_legacy']:10.1f}",
        f"  newton iters/sec fast: "
        f"{metrics['newton_iters_per_sec_fast']:10.1f}",
        f"  median speedup       : {speedup:10.2f}x "
        f"(asserted >= {MIN_SPEEDUP}x)",
    ]))

    assert speedup >= MIN_SPEEDUP, (
        f"stamp-plan speedup {speedup:.2f}x fell below the "
        f"{MIN_SPEEDUP}x floor (per-pair: {ratios})")
    check_regression("BENCH_solver", metrics)
