"""Sparse-vs-dense solve throughput across the hierarchy sizes.

The pattern-compiled symbolic-LU backend exists to make the
hierarchical-bitline workload tractable: dense LU is O(n^3) per
refactor while the sparse refactor tracks the near-linear fill-in of
the MNA tree.  This benchmark times identical transients on both
backends at n ~= 64 / 256 / 1024 unknowns and asserts the ISSUE's
acceptance floor — sparse at least ``MIN_SPEEDUP_1024``x the dense
timesteps/sec on the ~1024-unknown circuit — alongside the
dense-vs-sparse waveform-agreement contract.

Backends are interleaved per pair and the median per-pair ratio is
asserted, cancelling slow machine drift exactly as the solver
benchmark does.
"""

from __future__ import annotations

import statistics
import time

import numpy as np

from repro import FastDramDesign, obs
from repro.array.globalbitline import (build_globalbitline_read_circuit,
                                       globalbitline_initial_voltages)
from repro.spice import simulate_transient
from repro.spice.mna import MnaSystem
from repro.units import ns, ps
from benchmarks._util import check_regression, record_json, record_result

#: Acceptance floor: sparse timesteps/sec over dense at n ~= 1024.
MIN_SPEEDUP_1024 = 5.0
#: Dense-vs-sparse max-abs waveform tolerance, volts (ARCHITECTURE §15).
WAVEFORM_TOL = 1e-9

#: (blocks, cells_per_lbl) -> n = blocks * (cells + 1) + 17 unknowns.
SIZES = [
    ("n64", 4, 12),     # 69 unknowns
    ("n256", 16, 14),   # 257 unknowns
    ("n1024", 56, 17),  # 1025 unknowns
]
PAIRS = 3
T_STOP = 0.1 * ns
DT = 2.0 * ps


def _workload(blocks, cells):
    cell = FastDramDesign().cell()
    circuit = build_globalbitline_read_circuit(cell, blocks=blocks,
                                               cells_per_lbl=cells)
    return circuit, globalbitline_initial_voltages(cell)


def _run(circuit, initial, backend):
    with obs.instrumented() as registry:
        start = time.perf_counter()
        result = simulate_transient(circuit, t_stop=T_STOP, dt=DT,
                                    initial_voltages=initial,
                                    backend=backend)
        elapsed = time.perf_counter() - start
        steps = registry.snapshot()["counters"]["spice.timesteps"]
    return result, steps / elapsed


def test_sparse_backend_speedup_and_agreement():
    metrics = {"timesteps": int(round(T_STOP / DT)), "pairs": PAIRS}
    lines = ["sparse vs dense backend, hierarchical-bitline read:"]
    speedups = {}
    for label, blocks, cells in SIZES:
        circuit, initial = _workload(blocks, cells)
        size = MnaSystem(circuit).size
        ratios, sparse_rates, dense_rates = [], [], []
        for _ in range(PAIRS):
            dense, dense_rate = _run(circuit, initial, "dense")
            sparse, sparse_rate = _run(circuit, initial, "sparse")
            # Speedup must never buy waveform drift past the contract.
            worst = float(np.abs(dense.data - sparse.data).max())
            assert worst < WAVEFORM_TOL, (
                f"{label}: dense-vs-sparse disagreement {worst:g} V "
                f"exceeds the {WAVEFORM_TOL:g} V contract")
            ratios.append(sparse_rate / dense_rate)
            sparse_rates.append(sparse_rate)
            dense_rates.append(dense_rate)
        speedup = statistics.median(ratios)
        speedups[label] = speedup
        metrics[f"unknowns_{label}"] = size
        metrics[f"speedup_sparse_vs_dense_{label}"] = round(speedup, 3)
        metrics[f"timesteps_per_sec_sparse_{label}"] = round(
            max(sparse_rates), 1)
        metrics[f"timesteps_per_sec_dense_{label}"] = round(
            max(dense_rates), 1)
        lines.append(
            f"  {label} ({size} unknowns): sparse "
            f"{max(sparse_rates):9.1f} steps/s, dense "
            f"{max(dense_rates):9.1f} steps/s, speedup {speedup:6.2f}x")
    lines.append(f"  asserted: n1024 speedup >= {MIN_SPEEDUP_1024}x")

    record_json("BENCH_sparse", metrics)
    record_result("sparse_throughput", "\n".join(lines))

    assert speedups["n1024"] >= MIN_SPEEDUP_1024, (
        f"sparse speedup {speedups['n1024']:.2f}x at ~1024 unknowns "
        f"fell below the {MIN_SPEEDUP_1024}x floor")
    check_regression("BENCH_sparse", metrics)
