"""Parallel sweep executor scaling on a Monte-Carlo population.

A 64-sample Monte-Carlo run whose model does real solver work is
evaluated at ``jobs`` = 1, 2 and 4.  Two properties are checked:

* **determinism** — the sample vector is bit-identical at every job
  count (always asserted; this is the executor's core contract);
* **scaling** — ``jobs=4`` must beat serial by >= 1.8x wall-clock,
  asserted only when the machine actually has >= 4 CPUs (the CI
  perf-smoke runners do; a 1-CPU container records the numbers without
  failing on physics it cannot express).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.spice import (Capacitor, Circuit, Diode, Resistor, VoltageSource,
                         dc, simulate_transient)
from repro.variability.montecarlo import run_monte_carlo_resumable
from benchmarks._util import check_regression, record_json, record_result

SAMPLES = 64
SEED = 2009
MIN_SPEEDUP_J4 = 1.8
JOB_COUNTS = (1, 2, 4)


def mc_model(rng):
    """One sample: transient settling of a diode divider with sampled
    resistance (module-level so worker processes can unpickle it)."""
    resistance = float(rng.lognormal(mean=np.log(10e3), sigma=0.2))
    circuit = Circuit("mc-divider")
    circuit.add(VoltageSource("v1", "in", "0", dc(2.0)))
    circuit.add(Resistor("r1", "in", "mid", resistance))
    circuit.add(Diode("d1", "mid", "0", v_t=0.026, v_clip=0.8))
    circuit.add(Capacitor("c1", "mid", "0", 1e-12))
    result = simulate_transient(circuit, t_stop=2e-9, dt=1e-11)
    return float(result.final_voltage("mid"))


def test_parallel_sweep_scaling_and_determinism():
    cpu_count = os.cpu_count() or 1
    wall, samples = {}, {}
    for jobs in JOB_COUNTS:
        start = time.perf_counter()
        outcome = run_monte_carlo_resumable(mc_model, SAMPLES, seed=SEED,
                                            jobs=jobs)
        wall[jobs] = time.perf_counter() - start
        assert outcome.complete and outcome.failed == 0
        samples[jobs] = outcome.result.samples

    # Determinism is unconditional: every job count, bit for bit.
    for jobs in JOB_COUNTS[1:]:
        assert np.array_equal(samples[jobs], samples[1]), (
            f"jobs={jobs} drifted from the serial sample vector")

    speedups = {jobs: wall[1] / wall[jobs] for jobs in JOB_COUNTS}
    metrics = {
        "samples": SAMPLES,
        "cpu_count": cpu_count,
        "wall_seconds_jobs1": round(wall[1], 3),
        "wall_seconds_jobs2": round(wall[2], 3),
        "wall_seconds_jobs4": round(wall[4], 3),
        "speedup_jobs2": round(speedups[2], 3),
        "speedup_jobs4": round(speedups[4], 3),
    }
    record_json("BENCH_sweep", metrics)
    record_result("sweep_scaling", "\n".join([
        f"{SAMPLES}-sample Monte-Carlo, {cpu_count} CPU(s):",
        *(f"  jobs={j}: {wall[j] * 1e3:8.1f} ms  "
          f"({speedups[j]:5.2f}x vs serial)" for j in JOB_COUNTS),
        f"  jobs=4 floor: {MIN_SPEEDUP_J4}x "
        + ("(asserted)" if cpu_count >= 4
           else f"(not asserted: only {cpu_count} CPU(s))"),
    ]))

    if cpu_count >= 4:
        assert speedups[4] >= MIN_SPEEDUP_J4, (
            f"jobs=4 speedup {speedups[4]:.2f}x fell below the "
            f"{MIN_SPEEDUP_J4}x floor on a {cpu_count}-CPU machine")
        check_regression("BENCH_sweep", metrics)
    else:
        # The regression baseline still gates the non-speedup metrics;
        # the speedup_jobs* floors are skipped with a logged reason
        # instead of silently dropping the whole check.
        check_regression(
            "BENCH_sweep", metrics, skip_prefixes=("speedup_jobs",),
            skip_reason=f"only {cpu_count} CPU(s); parallel speedup "
                        "is not expressible on this machine")
