#!/usr/bin/env python3
"""The paper Fig. 2 system: a hybrid 3D-stacked cache running workloads.

Builds the memory-die cache hierarchy (fast DRAM L1 + dense DRAM L2),
stacks it over a logic die through TSVs, and drives it with synthetic
workloads — then swaps the L1 for the SRAM baseline to show the
system-level trade-off.

Run:  python examples/cache_3d_stack.py
"""

import numpy as np

from repro import FastDramDesign, SramBaselineDesign
from repro.cache import (
    Cache,
    CacheHierarchy,
    HierarchyLevel,
    looping_addresses,
    streaming_addresses,
    uniform_addresses,
    zipf_addresses,
)
from repro.core import format_table
from repro.stack3d import compare_links, hybrid_cache_stack
from repro.units import Mb, kb, ns, pJ

TRACE_LENGTH = 20_000
FOOTPRINT_WORDS = 1 << 20  # 4 MB of 32-bit words


def build_hierarchy(l1_kind: str) -> CacheHierarchy:
    if l1_kind == "fast-dram":
        l1_macro = FastDramDesign().build(128 * kb, retention_override=1e-3)
    else:
        l1_macro = SramBaselineDesign().build(128 * kb)
    l2_macro = FastDramDesign(cells_per_lbl=128).build(
        2 * Mb, retention_override=1e-3)
    return CacheHierarchy(levels=[
        HierarchyLevel("L1", Cache(capacity_words=4096, ways=4,
                                   line_words=8), l1_macro),
        HierarchyLevel("L2", Cache(capacity_words=65536, ways=8,
                                   line_words=8), l2_macro),
    ])


def main() -> None:
    print("=== The 3D stack (paper Fig. 2) ===")
    stack = hybrid_cache_stack()
    link = stack.interface()
    print(f"dies: {[d.name for d in stack.dies]}, footprint "
          f"{stack.footprint * 1e6:.1f} mm2, memory "
          f"{stack.memory_capacity() / (1024 * 1024):.2f} Mb")
    print(f"TSV interface: {link.max_links} signal vias, "
          f"{link.energy_per_bit / 1e-15:.0f} fJ/bit")
    print()

    print("=== Die-to-die link styles (Sec. I motivation) ===")
    rows = []
    for name, entry in compare_links().items():
        rows.append([
            name,
            f"{entry['energy_per_bit_j'] / pJ:.3f} pJ",
            f"{entry['aggregate_bandwidth_bps'] / 1e9:.0f} Gb/s",
            f"{entry['power_w'] * 1e3:.2f} mW @ 64 Gb/s",
        ])
    print(format_table(["link", "energy/bit", "bandwidth", "power"], rows))
    print()

    rng = np.random.default_rng(42)
    workloads = {
        "zipf": zipf_addresses(TRACE_LENGTH, FOOTPRINT_WORDS, rng),
        "looping": looping_addresses(TRACE_LENGTH, 3000, rng),
        "streaming": streaming_addresses(TRACE_LENGTH, FOOTPRINT_WORDS, rng),
        "uniform": uniform_addresses(TRACE_LENGTH, FOOTPRINT_WORDS, rng),
    }

    print("=== Hybrid cache vs SRAM-L1 cache across workloads ===")
    rows = []
    for name, trace in workloads.items():
        dram_stats = build_hierarchy("fast-dram").run(trace)
        sram_stats = build_hierarchy("sram").run(trace)
        rows.append([
            name,
            f"{dram_stats.hit_rate(0):.2f}",
            f"{dram_stats.average_energy / pJ:.1f} pJ",
            f"{sram_stats.average_energy / pJ:.1f} pJ",
            f"{dram_stats.average_time / ns:.2f} ns",
            f"{sram_stats.average_time / ns:.2f} ns",
        ])
    print(format_table(
        ["workload", "L1 hit", "E/op DRAM-L1", "E/op SRAM-L1",
         "t/op DRAM-L1", "t/op SRAM-L1"], rows))
    print()
    print("Same hit rates by construction (identical behavioural caches); "
          "the fast-DRAM L1 matches the SRAM on time and energy per "
          "operation while using ~2.7x less die area and ~10x less "
          "standby power — the paper's system-level argument.")


if __name__ == "__main__":
    main()
