#!/usr/bin/env python3
"""Chaos run: the resilience layer end to end, on purpose.

Draws a seeded fault plan from the retention tail (weak cells, stuck
bits, SA outliers, dropped/late refreshes), lets ECC + spare-row repair
absorb what it can, replays the survivors against the refresh
interference simulator, and finally starves the circuit solver's Newton
budget so the recovery ladder has to escalate.  Everything is seeded:
rerunning reproduces the identical chaos.

The module also exposes a ``repro_check_targets()`` hook, so

    repro check examples/chaos_run.py

lints the fault plan, repair model and run budget below with rule M212
(physical-consistency checks) — including one deliberately questionable
budget, kept here as a linter demonstration.

Run:  python examples/chaos_run.py
"""

import numpy as np

from repro.checkpoint import RunBudget
from repro.core import FastDramDesign
from repro.faults import (FaultyRefreshPolicy, RepairModel,
                          plan_for_organization)
from repro.refresh import (LocalizedRefresh, RefreshSimulator,
                           uniform_random_trace)
from repro.spice import Circuit, Diode, Resistor, VoltageSource, dc, solve_dc
from repro.spice.recovery import RecoveryConfig
from repro.units import kb

SEED = 2009

#: Repair provisioning: two spare rows per block, 1-bit ECC.
REPAIR = RepairModel(spare_rows_per_block=2, correctable_bits=1)

#: Deliberately questionable: a zero-second budget stops a sweep before
#: its first item.  ``repro check`` flags it (M212) — that's the demo.
SUSPICIOUS_BUDGET = RunBudget(max_seconds=0.0)


def build_plan(design: FastDramDesign, macro):
    return plan_for_organization(
        macro.organization, seed=SEED, weak_cell_fraction=0.005,
        retention_model=design.cell().retention_model(),
        stuck_bit_fraction=0.001, sa_outlier_fraction=0.02,
        refresh_drop_fraction=0.002, refresh_late_fraction=0.004)


def repro_check_targets():
    """Objects ``repro check`` should lint in this file (rule M212)."""
    design = FastDramDesign()
    macro = design.build(128 * kb, retention_override=1e-3)
    return [build_plan(design, macro), REPAIR, SUSPICIOUS_BUDGET]


def main() -> None:
    design = FastDramDesign()
    macro = design.build(128 * kb, retention_override=1e-3)
    org = macro.organization

    print("=== Seeded fault plan ===")
    plan = build_plan(design, macro)
    print(plan.describe())
    print()

    print("=== Degraded-but-functional assessment ===")
    report = macro.fault_assessment(plan, repair=REPAIR)
    print(report.describe())
    print()

    print("=== Refresh interference with injected faults ===")
    policy = LocalizedRefresh(
        n_blocks=org.n_localblocks, rows_per_block=org.cells_per_lbl,
        refresh_period_cycles=int(1e-3 * 500e6))  # noqa: L101 - 1 ms at 500 MHz
    trace = uniform_random_trace(60_000, org.n_localblocks, 0.5,
                                 np.random.default_rng(SEED))
    stats = RefreshSimulator(
        FaultyRefreshPolicy(base=policy, plan=plan)).run(trace)
    print(f"busy fraction: {100 * stats.busy_fraction:.3f} %, "
          f"{stats.dropped_refreshes} dropped "
          f"({stats.data_loss_events} data-loss events), "
          f"{stats.late_refreshes} late")
    print()

    print("=== Forced solver failure and recovery ===")
    circuit = Circuit("chaos-diode")
    circuit.add(VoltageSource("v1", "in", "0", dc(5.0)))
    circuit.add(Resistor("r1", "in", "d", 100.0))
    circuit.add(Diode("d1", "d", "0"))
    solution = solve_dc(circuit, recovery=RecoveryConfig(max_newton=10))
    print(f"plain Newton starved at 10 iterations; the recovery ladder "
          f"escalated and converged (diode at {solution['d']:.3f} V)")
    print()
    print("Chaos run finished with zero uncaught exceptions: every fault "
          "was absorbed, degraded around, or recovered from.")


if __name__ == "__main__":
    main()
