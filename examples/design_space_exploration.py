#!/usr/bin/env python3
"""Design-space exploration of the fast-DRAM architecture.

Walks the knobs the paper discusses:

* cells per local bitline (the 16 -> 32 doubling of Sec. III),
* memory size scaling (128 kb -> 2 Mb, Sec. III last step),
* the architecture ablations (what each idea buys).

Run:  python examples/design_space_exploration.py
"""

from repro.core import (
    ablate_architecture,
    format_table,
    sweep_cells_per_lbl,
    sweep_sizes,
)
from repro.units import kb, ns, pJ


def main() -> None:
    print("=== Cells per local bitline (DRAM technology, 128 kb) ===")
    rows = []
    for point in sweep_cells_per_lbl(values=(8, 16, 32, 64, 128, 256)):
        rows.append([
            point.cells_per_lbl,
            f"{point.read_signal * 1e3:.0f} mV",
            f"{point.access_time / ns:.2f} ns",
            f"{point.read_energy / pJ:.2f} pJ",
            f"{point.area / 1e-6:.4f} mm2",
        ])
    print(format_table(
        ["cells/LBL", "read signal", "access", "read energy", "area"], rows))
    print()
    print("Doubling 16 -> 32 cells/LBL trades a little signal for a "
          "denser matrix at nearly constant energy — the paper's "
          "'marginal impact' finding (Sec. IV).")
    print()

    print("=== Memory size scaling (DRAM technology) ===")
    rows = []
    for point in sweep_sizes(sizes=(128 * kb, 256 * kb, 512 * kb,
                                    1024 * kb, 2048 * kb)):
        rows.append([
            f"{point.total_bits // kb} kb",
            f"{point.access_time / ns:.2f} ns",
            f"{point.read_energy / pJ:.2f} pJ",
            f"{point.write_energy / pJ:.2f} pJ",
            f"{point.area / 1e-6:.4f} mm2",
            f"{point.static_power * 1e6:.1f} uW",
        ])
    print(format_table(
        ["size", "access", "read E", "write E", "area", "static P"], rows))
    print()

    print("=== Architecture ablations (what each choice buys) ===")
    rows = []
    for result in ablate_architecture():
        rows.append([
            result.feature,
            result.metric,
            f"{result.proposed_value:.3g}",
            f"{result.ablated_value:.3g}",
            f"{result.penalty_factor:.2f}x",
        ])
    print(format_table(
        ["feature removed", "metric", "proposed", "ablated", "change"], rows))
    print()
    print("local_restore: without the in-block write-after-read, every "
          "refresh pays the global write path; fine_granularity: a "
          "monolithic bitline collapses the charge-sharing signal.")


if __name__ == "__main__":
    main()
