#!/usr/bin/env python3
"""Regenerate the paper's Fig. 3 waveforms at transistor level.

Simulates the local block for read '0', read '1' and a localized
refresh, renders the LBL/GBL waveforms as ASCII charts, and exports
them to CSV for external plotting.

Run:  python examples/fig3_waveforms.py
"""

import pathlib

from repro.array import simulate_localblock_read
from repro.cells import Dram1t1cCell
from repro.core import ascii_chart
from repro.spice import save_waveforms

OUTPUT_DIR = pathlib.Path("fig3_waveforms")
SUBSAMPLE = 50


def chart(wave, title: str) -> None:
    result = wave.result
    t = result.time[::SUBSAMPLE]
    series = {
        "LBL": result.voltage("lbl")[::SUBSAMPLE],
        "ref": result.voltage("ref")[::SUBSAMPLE],
        "GBL": result.voltage("gbl")[::SUBSAMPLE],
        "cell": result.voltage("cell")[::SUBSAMPLE],
    }
    print(f"--- {title} ---")
    print(ascii_chart({k: list(v) for k, v in series.items()},
                      [x * 1e9 for x in t],
                      width=70, height=14, x_label="t (ns)",
                      y_label="V"))
    print(f"charge-sharing signal: {wave.charge_sharing_signal * 1e3:.0f} mV"
          f" | GBL swing: {wave.gbl_swing * 1e3:.0f} mV"
          f" | cell restored to {wave.cell_final:.2f} V"
          f" ({'ok' if wave.restored_correctly else 'FAILED'})")
    print()


def main() -> None:
    cell = Dram1t1cCell.scratchpad()
    OUTPUT_DIR.mkdir(exist_ok=True)

    runs = [
        ("read '0' (paper Fig. 3 left)",
         simulate_localblock_read(cell, stored_value=0), "read0"),
        ("read '1' (paper Fig. 3 middle)",
         simulate_localblock_read(cell, stored_value=1), "read1"),
        ("localized refresh of '0' (paper Fig. 3 right)",
         simulate_localblock_read(cell, stored_value=0, refresh_only=True),
         "refresh0"),
    ]
    for title, wave, stem in runs:
        chart(wave, title)
        path = save_waveforms(wave.result,
                              ["wl", "lbl", "ref", "cell", "gbl"],
                              OUTPUT_DIR / f"{stem}.csv")
        print(f"exported {path}")
        print()


def repro_check_targets():
    """Netlists validated by ``python -m repro check examples/``."""
    from repro.array import build_localblock_read_circuit
    cell = Dram1t1cCell.scratchpad()
    return [build_localblock_read_circuit(cell, stored_value=stored,
                                          refresh_only=refresh_only)
            for stored, refresh_only in ((0, False), (1, False), (0, True))]


if __name__ == "__main__":
    main()
