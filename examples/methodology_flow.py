#!/usr/bin/env python3
"""The paper's three-step evaluation methodology (Fig. 6), end to end.

Step 1 designs the scratch-pad test memory and *circuit-simulates* one
local block with the built-in MNA engine (charge sharing, latch SA,
write-after-read restore, low-swing GBL — the paper's Fig. 3 waveforms).
Step 2 re-estimates in DRAM technology and checks the 16 -> 32 cells/LBL
doubling.  Step 3 extends to larger memories.

Run:  python examples/methodology_flow.py
"""

from repro.core import MethodologyFlow, format_table
from repro.units import kb, ns, pJ, si_format


def main() -> None:
    flow = MethodologyFlow(total_bits=128 * kb)

    print("Step 1: scratch-pad test memory (logic process, 11 fF cell)")
    scratchpad, waveforms = flow.step1_scratchpad()
    print(f"  access time {scratchpad.access_time() / ns:.2f} ns, "
          f"read energy {scratchpad.read_energy().total / pJ:.2f} pJ")
    rows = []
    for wave in waveforms:
        rows.append([
            f"read '{wave.stored_value}'",
            f"{wave.charge_sharing_signal * 1e3:.0f} mV",
            f"{wave.lbl_final:.2f} V",
            f"{wave.cell_final:.2f} V",
            f"{wave.gbl_swing * 1e3:.0f} mV",
            "yes" if wave.restored_correctly else "NO",
        ])
    print(format_table(
        ["operation", "LBL signal", "LBL final", "cell restored to",
         "GBL swing", "restore ok"], rows))
    print()

    print("Step 2: DRAM technology estimate (30 fF trench, 1.7 V WL)")
    dram, ratio = flow.step2_dram_estimate(scratchpad)
    print(f"  access time {dram.access_time() / ns:.2f} ns at 32 cells/LBL "
          f"-> {ratio:.2f}x the 16-cell scratch-pad "
          f"({'similar, doubling holds' if abs(ratio - 1) <= 0.25 else 'NOT similar'})")
    print()

    print("Step 3: extension to larger memories")
    rows = []
    for point in flow.step3_larger_memories():
        rows.append([
            f"{point.total_bits // kb} kb",
            f"{point.access_time / ns:.2f} ns",
            f"{point.read_energy / pJ:.2f} pJ",
            f"{point.area / 1e-6:.4f} mm2",
            si_format(point.static_power, "W"),
        ])
    print(format_table(["size", "access", "read E", "area", "static P"],
                       rows))


if __name__ == "__main__":
    main()
