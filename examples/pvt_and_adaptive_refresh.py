#!/usr/bin/env python3
"""PVT corners and adaptive refresh — beyond the paper's single corner.

The paper quotes one worst-case point.  This example sweeps the design
across process corners and temperature, shows the DRAM-specific finding
(retention collapse at 85 C erodes the static-power win under the
paper's conservative retention anchor), and then applies the two
refresh refinements the localized architecture enables: temperature
tracking and retention binning.

Run:  python examples/pvt_and_adaptive_refresh.py
"""

from repro.core import FastDramDesign, PvtAnalysis, format_table
from repro.refresh import TemperatureAdaptiveRefresh, plan_binned_refresh
from repro.tech import Corner
from repro.units import kb, ns, pJ, si_format, uW


def main() -> None:
    print("=== Corner matrix, 128 kb fast DRAM ===")
    analysis = PvtAnalysis(retention_samples=500)
    rows = []
    for point in analysis.sweep(temperatures=(300.0, 358.0)):
        rows.append([
            point.label,
            f"{point.access_time / ns:.2f} ns",
            f"{point.read_energy / pJ:.2f} pJ",
            f"{point.static_power / uW:.1f} uW",
            si_format(point.worst_retention, "s"),
        ])
    print(format_table(
        ["corner", "access", "read E", "refresh P", "worst retention"],
        rows))
    print()

    sram = PvtAnalysis(technology="sram")
    cold = sram.evaluate(Corner.TT, 300.0)
    hot = sram.evaluate(Corner.TT, 358.0)
    print("SRAM baseline for scale: "
          f"{cold.static_power / uW:.0f} uW @300K, "
          f"{hot.static_power / uW:.0f} uW @358K (leakage).")
    print("Finding: at 358 K the conservative retention anchor makes the")
    print("fixed worst-case refresh as costly as SRAM leakage — which is")
    print("exactly what the two refinements below recover.")
    print()

    print("=== Temperature-adaptive refresh ===")
    adaptive = TemperatureAdaptiveRefresh(base_retention=1e-3)
    rows = []
    for temperature in (300.0, 330.0, 358.0):
        saving = adaptive.power_saving_vs_fixed(temperature, 358.0)
        rows.append([
            f"{temperature:.0f} K",
            si_format(adaptive.refresh_period_at(temperature), "s"),
            f"{saving:.1f}x",
        ])
    print(format_table(
        ["die temperature", "refresh period", "power saving vs fixed-85C"],
        rows))
    print()

    print("=== Retention-binned refresh (RAIDR-style) ===")
    retention = FastDramDesign().cell().retention_model()
    for granules, rows_per_granule, label in (
            (128, 32, "per local block"),
            (4096, 1, "per row")):
        plan = plan_binned_refresh(retention, n_blocks=granules,
                                   rows_per_block=rows_per_granule,
                                   n_bins=6)
        print(f"{label} ({granules} granules): "
              f"saving {plan.saving_factor():.2f}x; bins:")
        for bin_ in plan.bins:
            if bin_.block_count:
                print(f"    {si_format(bin_.period, 's'):>8} : "
                      f"{bin_.block_count} granules")
    print()
    print("Binning exploits the localized-refresh architecture: each")
    print("block already refreshes independently (paper Fig. 4), so")
    print("per-block rates come at controller cost only.")


if __name__ == "__main__":
    main()
