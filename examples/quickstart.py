#!/usr/bin/env python3
"""Quickstart: build the paper's fast DRAM macro and print its figures.

Reproduces the headline claims of the abstract:

* 128 kb macro, ~1.3 ns access, < 0.2 pJ per bit dynamic energy,
* ~10x lower cell static power than the equivalent SRAM,
* ~2-3x smaller area.

Run:  python examples/quickstart.py
"""

from repro import FastDramDesign, SramBaselineDesign
from repro.core import format_table
from repro.units import kb, ns, pJ, si_format


def main() -> None:
    dram = FastDramDesign().build(128 * kb)
    sram = SramBaselineDesign().build(128 * kb)

    print("=== Proposed fast DRAM (DRAM technology, 32 cells/LBL) ===")
    print(dram.describe())
    print()
    print("=== Baseline SRAM (ESSCIRC'08 [10] style, 6T cells) ===")
    print(sram.describe())
    print()

    d, s = dram.summary(), sram.summary()
    rows = [
        ["access time", si_format(d["access_time_s"], "s"),
         si_format(s["access_time_s"], "s"),
         f"{s['access_time_s'] / d['access_time_s']:.2f}x"],
        ["read energy", si_format(d["read_energy_j"], "J"),
         si_format(s["read_energy_j"], "J"),
         f"{s['read_energy_j'] / d['read_energy_j']:.2f}x"],
        ["write energy", si_format(d["write_energy_j"], "J"),
         si_format(s["write_energy_j"], "J"),
         f"{s['write_energy_j'] / d['write_energy_j']:.2f}x"],
        ["area", f"{d['area_m2'] / 1e-6:.4f} mm2",
         f"{s['area_m2'] / 1e-6:.4f} mm2",
         f"{s['area_m2'] / d['area_m2']:.2f}x"],
        ["cell static power", si_format(d["static_power_w"], "W"),
         si_format(s["static_power_w"], "W"),
         f"{s['static_power_w'] / d['static_power_w']:.1f}x"],
    ]
    print("=== Head to head (ratio = SRAM / DRAM, >1 means DRAM wins) ===")
    print(format_table(["metric", "fast DRAM", "SRAM", "ratio"], rows))
    print()

    per_bit = dram.energy_per_bit()
    print(f"Dynamic energy per bit: {per_bit / pJ:.3f} pJ "
          f"(paper: < 0.2 pJ) -> {'OK' if per_bit < 0.2 * pJ else 'MISS'}")
    print(f"Access time: {dram.access_time() / ns:.2f} ns "
          f"(paper: ~1.3 ns)")

    stats = dram.retention_statistics(count=1000)
    print(f"Cell retention: typical {si_format(stats.typical, 's')}, "
          f"6-sigma worst case {si_format(stats.worst_case, 's')}")


def repro_check_targets():
    """Models validated by ``python -m repro check examples/``."""
    return [FastDramDesign().build(128 * kb),
            SramBaselineDesign().build(128 * kb)]


if __name__ == "__main__":
    main()
