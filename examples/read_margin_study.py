#!/usr/bin/env python3
"""Read-margin study: when does a read actually fail?

The paper budgets refresh by the worst cell losing a fixed charge
margin.  The sense path's real criterion is softer: the decayed
charge-sharing differential must clear the local SA offset.  This
example sweeps the refresh interval, plots the margin distribution's
mean/worst, and finds the longest interval meeting a yield target —
then compares it with the paper-style 6-sigma retention.

Run:  python examples/read_margin_study.py
"""

from repro.array import ReadMarginAnalysis
from repro.core import FastDramDesign, ascii_chart, format_table
from repro.units import kb, si_format

INTERVALS = (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1)


def main() -> None:
    macro = FastDramDesign().build(128 * kb, retention_override=1e-3)
    analysis = ReadMarginAnalysis(
        organization=macro.organization,
        local_sa=macro.local_sa,
        retention=macro.cell_design.retention_model(),
        samples=4000,
    )

    print(f"fresh signal       : {analysis.fresh_signal() * 1e3:.0f} mV")
    print(f"SA requirement     : "
          f"{analysis.required_differential() * 1e3:.0f} mV")
    print()

    points = analysis.sweep(INTERVALS)
    rows = [[si_format(p.refresh_interval, "s"),
             f"{p.mean_margin * 1e3:.0f} mV",
             f"{p.worst_margin * 1e3:.0f} mV",
             f"{100 * p.failure_fraction:.3f} %"] for p in points]
    print(format_table(
        ["refresh interval", "mean margin", "worst sampled", "fails"],
        rows))
    print()

    print(ascii_chart(
        {"mean": [max(p.mean_margin, 1e-4) for p in points],
         "worst": [max(p.worst_margin, 1e-4) for p in points]},
        list(INTERVALS),
        log_x=True, width=60, height=12,
        x_label="refresh interval (s)", y_label="margin (V)"))
    print()

    for target in (1e-2, 1e-3, 1e-4):
        interval = analysis.max_interval_at_yield(target_failure=target)
        print(f"max interval at <= {target:g} read-fail fraction: "
              f"{si_format(interval, 's')}")

    cell_worst = macro.retention_statistics(count=1000).worst_case
    sensing = analysis.max_interval_at_yield(target_failure=1e-3)
    print()
    print(f"paper-style 6-sigma cell retention : {si_format(cell_worst, 's')}")
    print(f"sensing-aware interval (1e-3 yield): {si_format(sensing, 's')}")
    print(f"conservatism factor                : {sensing / cell_worst:.1f}x")


if __name__ == "__main__":
    main()
