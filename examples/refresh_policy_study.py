#!/usr/bin/env python3
"""Refresh policy study: the paper's localized refresh (Fig. 4 / Fig. 5).

Simulates a 128 kb fast DRAM (128 local blocks of 32 rows) at 500 MHz
under random traffic and compares how many cycles refresh steals when it
blocks the whole matrix (conventional) versus a single local block (the
paper's scheme) — across retention times and traffic patterns.

Run:  python examples/refresh_policy_study.py
"""

import numpy as np

from repro.core import format_table
from repro.refresh import (
    LocalizedRefresh,
    MonoblockRefresh,
    RefreshSimulator,
    analytic_busy_fraction,
    bursty_trace,
    hot_block_trace,
    uniform_random_trace,
)
from repro.units import MHz, ms, us

N_BLOCKS = 128
ROWS_PER_BLOCK = 32
CLOCK = 500 * MHz
N_CYCLES = 150_000
ACTIVITY = 0.5


def busy(policy_cls, retention: float, trace: np.ndarray) -> float:
    period = int(retention * CLOCK)
    policy = policy_cls(n_blocks=N_BLOCKS, rows_per_block=ROWS_PER_BLOCK,
                        refresh_period_cycles=period)
    stats = RefreshSimulator(policy).run(trace)
    return 100.0 * stats.busy_fraction


def main() -> None:
    rng = np.random.default_rng(2009)
    trace = uniform_random_trace(N_CYCLES, N_BLOCKS, ACTIVITY, rng)

    print(f"128 kb fast DRAM: {N_BLOCKS} local blocks x {ROWS_PER_BLOCK} "
          f"rows, {CLOCK / 1e6:.0f} MHz, activity {ACTIVITY}")
    print()

    rows = []
    for retention_us in (20, 50, 100, 200, 500, 1000, 5000):
        retention = retention_us * us
        period = int(retention * CLOCK)
        mono = busy(MonoblockRefresh, retention, trace)
        local = busy(LocalizedRefresh, retention, trace)
        analytic = 100.0 * analytic_busy_fraction(
            LocalizedRefresh(n_blocks=N_BLOCKS, rows_per_block=ROWS_PER_BLOCK,
                             refresh_period_cycles=period), ACTIVITY)
        rows.append([f"{retention_us} us", f"{mono:.3f} %", f"{local:.4f} %",
                     f"{analytic:.4f} %", f"{mono / max(local, 1e-9):.0f}x"])
    print("=== Fig. 5: busy cycles lost to refresh (uniform traffic) ===")
    print(format_table(
        ["retention", "monoblock", "128 localblocks", "localized analytic",
         "gain"], rows))
    print()

    # Traffic-pattern sensitivity of the localized scheme.
    retention = 200 * us
    traces = {
        "uniform": uniform_random_trace(N_CYCLES, N_BLOCKS, ACTIVITY, rng),
        "bursty": bursty_trace(N_CYCLES, N_BLOCKS, ACTIVITY, rng),
        "hot-block": hot_block_trace(N_CYCLES, N_BLOCKS, ACTIVITY, rng),
    }
    rows = []
    for name, pattern in traces.items():
        mono = busy(MonoblockRefresh, retention, pattern)
        local = busy(LocalizedRefresh, retention, pattern)
        rows.append([name, f"{mono:.3f} %", f"{local:.4f} %"])
    print("=== Traffic sensitivity at 200 us retention ===")
    print(format_table(["pattern", "monoblock", "localized"], rows))
    print()
    print("Localized refresh keeps the penalty negligible even for the "
          "hot-block adversary — the refreshed block is only one of "
          f"{N_BLOCKS}.")


def repro_check_targets():
    """Policies validated by ``python -m repro check examples/``."""
    period = int(1 * ms * CLOCK)
    return [cls(n_blocks=N_BLOCKS, rows_per_block=ROWS_PER_BLOCK,
                refresh_period_cycles=period)
            for cls in (MonoblockRefresh, LocalizedRefresh)]


if __name__ == "__main__":
    main()
