#!/usr/bin/env python3
"""Retention Monte-Carlo: the paper's Sec. III cell methodology.

Reproduces the "6 sigma worst case monte-carlo" retention analysis for
both cells (scratch-pad CMOS capacitance and DRAM-technology trench) and
shows how the worst case propagates into the static-power figure.

Run:  python examples/retention_monte_carlo.py
"""

from repro.cells import Dram1t1cCell
from repro.core import FastDramDesign, format_table
from repro.units import kb, si_format


def describe_cell(name: str, cell: Dram1t1cCell) -> list:
    model = cell.retention_model()
    stats = model.statistics(count=3000)
    return [
        name,
        si_format(cell.capacitor.capacitance, "F"),
        f"{cell.wordline_voltage:.1f} V",
        si_format(model.nominal_leakage(), "A"),
        si_format(stats.typical, "s"),
        si_format(stats.worst_case, "s"),
    ]


def main() -> None:
    scratchpad = Dram1t1cCell.scratchpad()
    dram = Dram1t1cCell.dram_technology()

    print("=== Cell retention statistics (6-sigma worst case) ===")
    rows = [
        describe_cell("scratchpad (CMOS cap)", scratchpad),
        describe_cell("DRAM tech (trench)", dram),
    ]
    print(format_table(
        ["cell", "C_cell", "V_WL", "median leak", "typical t_ret",
         "6-sigma worst"], rows))
    print()
    print("The scratch-pad figure is 'very conservative' (paper Sec. III): "
          "no dedicated access transistors, no trench, no negative "
          "word-line low level.")
    print()

    print("=== Leakage budget of each cell ===")
    rows = []
    for name, cell in (("scratchpad", scratchpad), ("DRAM tech", dram)):
        model = cell.retention_model()
        rows.append([
            name,
            si_format(model.subthreshold_leak(), "A"),
            si_format(model.junction_leak(), "A"),
            si_format(model.dielectric_leak(), "A"),
        ])
    print(format_table(
        ["cell", "subthreshold", "junction", "dielectric"], rows))
    print()

    print("=== Worst-case retention -> static power (128 kb macro) ===")
    rows = []
    for sigma in (3.0, 4.5, 6.0):
        stats = dram.retention_model().statistics(count=3000, n_sigma=sigma)
        macro = FastDramDesign().build(
            128 * kb, retention_override=stats.worst_case)
        report = macro.static_power()
        rows.append([
            f"{sigma:.1f}",
            si_format(stats.worst_case, "s"),
            si_format(report.power, "W"),
        ])
    print(format_table(
        ["design sigma", "worst retention", "refresh power"], rows))
    print()
    print("Designing to more sigmas forces a faster refresh and a higher "
          "static power — the conservatism knob the paper mentions.")


if __name__ == "__main__":
    main()
