"""Legacy setup shim.

This environment has no network access and no ``wheel`` package, so PEP
517/660 builds (``pip install -e .``) cannot run.  ``python setup.py
develop`` installs the package in editable mode using only setuptools.
"""

from setuptools import setup

setup()
