"""repro — reproduction of "A novel DRAM architecture as a low leakage
alternative for SRAM caches in a 3D interconnect context" (DATE 2009).

Public API highlights:

>>> from repro import FastDramDesign, SramBaselineDesign
>>> macro = FastDramDesign().build()
>>> macro.access_time() < 2e-9
True

Subpackages
-----------
``repro.core``
    The paper's contribution: the fast-DRAM macro, the methodology flow,
    the DRAM-vs-SRAM comparison, design-space sweeps.
``repro.array``
    The hierarchical array model (organization, timing, energy, area,
    static power, circuit-level local block).
``repro.cells`` / ``repro.tech`` / ``repro.spice`` / ``repro.variability``
    Substrates: cells, 90 nm device/wire models, the MNA circuit
    simulator, Monte-Carlo machinery.
``repro.refresh``
    Cycle-level refresh/access interference simulation (paper Fig. 5).
``repro.sramref``
    The ESSCIRC'08 SRAM baseline.
``repro.stack3d`` / ``repro.cache``
    The 3D-interconnect context and the cache-level application.
``repro.obs``
    Instrumentation: metrics registry, span tracing, run reports.
"""

import logging

# Library convention: module loggers under the "repro" namespace emit
# nothing unless the application configures handlers (the CLI's
# -v/--verbose does).
logging.getLogger("repro").addHandler(logging.NullHandler())

from repro.core.fastdram import FastDramDesign, FastDramMacro
from repro.core.compare import SramDramComparison
from repro.core.methodology import MethodologyFlow
from repro.sramref.model import SramBaselineDesign
from repro.array.macro import MacroDesign

__version__ = "1.0.0"

__all__ = [
    "FastDramDesign",
    "FastDramMacro",
    "SramDramComparison",
    "MethodologyFlow",
    "SramBaselineDesign",
    "MacroDesign",
    "__version__",
]
