"""repro.analysis — static analysis: linter, model checker, audit.

Three analyzer families share one diagnostics core:

* :mod:`repro.analysis.lint` — AST rules specialized to this codebase
  (``repro lint``, L1xx): bare physical-magnitude literals that should
  use the :mod:`repro.units` multipliers, float equality comparisons,
  physical parameters without documented units, mutable default
  arguments, and :mod:`repro.obs` metric/span naming discipline.
* :mod:`repro.analysis.model` — pre-solve checks of ``Circuit`` graphs
  and macro/refresh/tech configurations (``repro check``, M2xx):
  floating nodes, voltage-source loops, dangling subckt ports, undamped
  dynamic nodes, and physical-range validation — the defect classes
  that otherwise surface as a singular MNA matrix deep inside a solve.
* :mod:`repro.analysis.purity` — the determinism & parallel-safety
  audit (``repro audit``, D3xx): an interprocedural call-graph effect
  analysis (:mod:`repro.analysis.callgraph`,
  :mod:`repro.analysis.effects`) proving the executor's bit-identity
  contract — no unseeded RNG reachable from the seeded pipelines or
  worker-submitted functions, no ambient state in fingerprints or
  checkpoints, no global mutation in workers, no hash-ordered
  reductions.

All emit :class:`~repro.analysis.diagnostics.Diagnostic` records with a
stable rule ID, severity, location and fix hint; text and JSON
renderers, the cross-family rule-ID registry, and the baseline file for
suppressing accepted findings live in
:mod:`repro.analysis.diagnostics`.
"""

from repro.analysis.diagnostics import (
    Baseline,
    Diagnostic,
    Severity,
    all_rules,
    diagnostics_to_json,
    format_diagnostics,
    register_rules,
)
from repro.analysis.effects import (
    Effect,
    declared_effects,
    deterministic_under_seed,
    mutates_global_state,
    observational,
    pure,
)
from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.lint import LINT_RULES, lint_paths, lint_source
from repro.analysis.model import (
    MODEL_RULES,
    check_circuit,
    check_organization,
    check_python_file,
    check_refresh_policy,
    check_scope,
    check_targets,
    check_tech_node,
    default_targets,
)
from repro.analysis.purity import AUDIT_RULES, audit_graph, audit_paths

__all__ = [
    "Baseline", "Diagnostic", "Severity",
    "format_diagnostics", "diagnostics_to_json",
    "register_rules", "all_rules",
    "Effect", "declared_effects", "pure", "deterministic_under_seed",
    "mutates_global_state", "observational",
    "CallGraph", "build_callgraph",
    "LINT_RULES", "lint_paths", "lint_source",
    "MODEL_RULES", "check_circuit", "check_organization",
    "check_python_file", "check_refresh_policy", "check_scope",
    "check_targets", "check_tech_node", "default_targets",
    "AUDIT_RULES", "audit_graph", "audit_paths",
]
