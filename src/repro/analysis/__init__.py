"""repro.analysis — static analysis: code linter + model checker.

Two analyzers share one diagnostics core:

* :mod:`repro.analysis.lint` — AST rules specialized to this codebase
  (``repro lint``): bare physical-magnitude literals that should use the
  :mod:`repro.units` multipliers, float equality comparisons, physical
  parameters without documented units, mutable default arguments, and
  :mod:`repro.obs` metric/span naming discipline.
* :mod:`repro.analysis.model` — pre-solve checks of ``Circuit`` graphs
  and macro/refresh/tech configurations (``repro check``): floating
  nodes, voltage-source loops, dangling subckt ports, undamped dynamic
  nodes, and physical-range validation — the defect classes that
  otherwise surface as a singular MNA matrix deep inside a solve.

Both emit :class:`~repro.analysis.diagnostics.Diagnostic` records with a
stable rule ID, severity, location and fix hint; text and JSON renderers
and a baseline file for suppressing accepted findings live in
:mod:`repro.analysis.diagnostics`.
"""

from repro.analysis.diagnostics import (
    Baseline,
    Diagnostic,
    Severity,
    format_diagnostics,
    diagnostics_to_json,
)
from repro.analysis.lint import LINT_RULES, lint_paths, lint_source
from repro.analysis.model import (
    MODEL_RULES,
    check_circuit,
    check_organization,
    check_python_file,
    check_refresh_policy,
    check_scope,
    check_targets,
    check_tech_node,
    default_targets,
)

__all__ = [
    "Baseline", "Diagnostic", "Severity",
    "format_diagnostics", "diagnostics_to_json",
    "LINT_RULES", "lint_paths", "lint_source",
    "MODEL_RULES", "check_circuit", "check_organization",
    "check_python_file", "check_refresh_policy", "check_scope",
    "check_targets", "check_tech_node", "default_targets",
]
