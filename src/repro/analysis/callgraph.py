"""Interprocedural call-graph construction for the determinism audit.

Builds a whole-package graph of every function, method, nested function
and lambda in the analyzed files, with three edge kinds:

* **call** — ``f`` may invoke ``g``: a direct call, a ``self.m()``
  method call resolved through the enclosing class (and its in-package
  bases), a call through an import alias (including package-``__init__``
  re-exports like ``repro.exec.run_parallel_sweep``), a
  ``functools.partial(g, ...)`` construction, or a decorator applied to
  ``f`` (the wrapper a decorator returns runs on every call of ``f``).
* **contains** — ``f`` defines ``g`` inline (nested ``def`` or
  ``lambda``).  Effects bubble from ``g`` up to ``f``: a nested
  function executes, if at all, under its parent's obligations.
* **reference** — ``f`` mentions ``g`` without calling it.  Inside a
  function that submits work to the parallel executor these are how
  work-item callables escape into worker processes, so the audit
  treats them as worker entry points.

Resolution is best-effort and *static*: unresolvable targets (calls on
computed objects, callables received as parameters) become external
names, which the effect analysis classifies against its known-impure
tables instead of following.  The graph never imports or executes the
analyzed code.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionNode",
    "ModuleInfo",
    "build_callgraph",
    "module_name_for",
]

#: Pseudo-function holding a module's import-time (top-level) code.
MODULE_BODY = "<module>"


def module_name_for(path: "str | pathlib.Path") -> str:
    """Dotted module name of ``path``, walking up through packages.

    ``src/repro/obs/__init__.py`` -> ``repro.obs``; a loose file outside
    any package is just its stem.
    """
    file = pathlib.Path(path).resolve()
    parts = [file.stem]
    if file.name == "__init__.py":
        parts = []
        file = file.parent
        parts.append(file.name)
    directory = file.parent
    while (directory / "__init__.py").is_file():
        parts.append(directory.name)
        directory = directory.parent
    return ".".join(reversed(parts))


@dataclasses.dataclass
class CallSite:
    """One call expression inside a function body."""

    raw: str  # dotted name as written ("fn", "np.random.default_rng")
    expanded: str  # import aliases substituted ("numpy.random.default_rng")
    lineno: int
    node: ast.Call
    resolved: Optional[str] = None  # qualname of an in-graph callee


@dataclasses.dataclass
class FunctionNode:
    """One function / method / lambda (or a module's top-level body)."""

    qualname: str  # "repro.core.optimizer.DesignOptimizer._evaluate"
    module: str
    path: str
    lineno: int
    name: str  # bare name ("_evaluate", "<lambda>", "<module>")
    class_name: Optional[str]
    node: Optional[ast.AST]  # the def/lambda node; None for MODULE_BODY
    annotation: Optional[str] = None  # effects declaration, if any
    decorators: List[str] = dataclasses.field(default_factory=list)
    calls: List[CallSite] = dataclasses.field(default_factory=list)
    #: qualnames of nested defs/lambdas (contains edges).
    children: List[str] = dataclasses.field(default_factory=list)
    parent: Optional[str] = None
    #: in-graph functions referenced without being called.
    references: Set[str] = dataclasses.field(default_factory=set)
    #: names bound locally (params, assignments) — shadowing guard.
    local_bindings: Set[str] = dataclasses.field(default_factory=set)

    @property
    def display(self) -> str:
        """Short human name used in diagnostic messages."""
        if self.name == MODULE_BODY:
            return f"{self.module} (module body)"
        prefix = f"{self.class_name}." if self.class_name else ""
        return f"{self.module}.{prefix}{self.name}"


@dataclasses.dataclass
class ModuleInfo:
    """Per-module symbol tables used during resolution."""

    name: str
    path: str
    aliases: Dict[str, str] = dataclasses.field(default_factory=dict)
    functions: Dict[str, str] = dataclasses.field(default_factory=dict)
    classes: Dict[str, "ClassInfo"] = dataclasses.field(default_factory=dict)
    #: names assigned at module top level (global-mutation detection).
    global_names: Set[str] = dataclasses.field(default_factory=set)
    source_lines: List[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class ClassInfo:
    """Methods and base-class names of one class definition."""

    name: str
    methods: Dict[str, str] = dataclasses.field(default_factory=dict)
    bases: List[str] = dataclasses.field(default_factory=list)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ModuleVisitor(ast.NodeVisitor):
    """Collects functions, classes, imports and call sites of one file."""

    def __init__(self, graph: "CallGraph", info: ModuleInfo) -> None:
        self.graph = graph
        self.info = info
        body = FunctionNode(
            qualname=f"{info.name}.{MODULE_BODY}", module=info.name,
            path=info.path, lineno=1, name=MODULE_BODY, class_name=None,
            node=None)
        graph.add(body)
        self._stack: List[FunctionNode] = [body]
        self._class_stack: List[ClassInfo] = []

    # -- helpers --------------------------------------------------------------

    @property
    def _current(self) -> FunctionNode:
        return self._stack[-1]

    def _qualify(self, name: str, lineno: int) -> str:
        parent = self._current
        if parent.name == MODULE_BODY:
            scope = self.info.name
            if self._class_stack:
                scope += "." + ".".join(c.name for c in self._class_stack)
        else:
            scope = parent.qualname
        if name == "<lambda>":
            name = f"<lambda:{lineno}>"
        return f"{scope}.{name}"

    def _expand(self, raw: str) -> str:
        head, _, rest = raw.partition(".")
        target = self.info.aliases.get(head)
        if target is None:
            return raw
        return f"{target}.{rest}" if rest else target

    # -- imports --------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.info.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0])
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                if alias.name != "*":
                    self.info.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")
        self.generic_visit(node)

    # -- definitions -----------------------------------------------------------

    def _enter_function(self, node, name: str) -> FunctionNode:
        qualname = self._qualify(name, node.lineno)
        class_name = (self._class_stack[-1].name
                      if self._class_stack and self._current.name == MODULE_BODY
                      else None)
        fn = FunctionNode(
            qualname=qualname, module=self.info.name, path=self.info.path,
            lineno=node.lineno, name=name, class_name=class_name, node=node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in node.decorator_list:
                target = deco.func if isinstance(deco, ast.Call) else deco
                raw = dotted_name(target)
                if raw is not None:
                    fn.decorators.append(self._expand(raw))
            fn.annotation = _declaration_of(fn.decorators)
            args = node.args
            fn.local_bindings.update(
                a.arg for a in [*args.posonlyargs, *args.args,
                                *args.kwonlyargs])
            if args.vararg:
                fn.local_bindings.add(args.vararg.arg)
            if args.kwarg:
                fn.local_bindings.add(args.kwarg.arg)
        elif isinstance(node, ast.Lambda):
            args = node.args
            fn.local_bindings.update(
                a.arg for a in [*args.posonlyargs, *args.args,
                                *args.kwonlyargs])
        fn.parent = self._current.qualname
        self._current.children.append(qualname)
        self.graph.add(fn)
        # Register in the enclosing symbol tables for call resolution.
        if self._current.name == MODULE_BODY:
            if self._class_stack:
                self._class_stack[-1].methods[name] = qualname
            else:
                self.info.functions[name] = qualname
        return fn

    def _visit_function(self, node) -> None:
        fn = self._enter_function(node, node.name)
        # Decorators may call functions (``@register(table)``): record
        # the application as a call edge of the *decorated* function —
        # its wrapper runs on every invocation.
        for deco in node.decorator_list:
            self._record_call_like(deco, owner=fn)
        self._stack.append(fn)
        for default in [*node.args.defaults,
                        *[d for d in node.args.kw_defaults if d]]:
            self.visit(default)
        for stmt in node.body:
            self.visit(stmt)
        self._stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Lambda(self, node: ast.Lambda) -> None:
        fn = self._enter_function(node, "<lambda>")
        self._stack.append(fn)
        self.visit(node.body)
        self._stack.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        cls = ClassInfo(name=node.name)
        for base in node.bases:
            raw = dotted_name(base)
            if raw is not None:
                cls.bases.append(self._expand(raw))
        self.info.classes[node.name] = cls
        if self._current.name == MODULE_BODY and not self._class_stack:
            self.info.global_names.add(node.name)
        self._class_stack.append(cls)
        for stmt in node.body:
            self.visit(stmt)
        self._class_stack.pop()

    # -- bindings and references -----------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_bindings(node.targets)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_bindings([node.target])
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_bindings([node.target])
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._record_bindings([node.target])
        self.generic_visit(node)

    visit_AsyncFor = visit_For

    def visit_withitem(self, node: ast.withitem) -> None:
        if node.optional_vars is not None:
            self._record_bindings([node.optional_vars])
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self._bind_name(node.name)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._record_bindings([node.target])
        self.generic_visit(node)

    def _record_bindings(self, targets: Iterable[ast.AST]) -> None:
        """Record names a store target actually *binds*.

        Only bare names (and names inside tuple/list unpacking or a
        star) create bindings; a subscript or attribute store mutates
        an existing object without binding its root, so ``CACHE[k] = v``
        must not shadow the module global ``CACHE``.
        """
        for target in targets:
            if isinstance(target, ast.Name):
                self._bind_name(target.id)
            elif isinstance(target, ast.Starred):
                self._record_bindings([target.value])
            elif isinstance(target, (ast.Tuple, ast.List)):
                self._record_bindings(target.elts)

    def _bind_name(self, name: str) -> None:
        if self._current.name == MODULE_BODY and not self._class_stack:
            self.info.global_names.add(name)
        else:
            self._current.local_bindings.add(name)

    def visit_Call(self, node: ast.Call) -> None:
        self._record_call_like(node, owner=self._current)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)
        # Visit computed callees too (``factory()()``), but not plain
        # name chains — those were consumed as the call target.
        if dotted_name(node.func) is None:
            self.visit(node.func)

    def _record_call_like(self, node: ast.AST, owner: FunctionNode) -> None:
        if not isinstance(node, ast.Call):
            raw = dotted_name(node)
            if raw is not None:
                owner.calls.append(CallSite(
                    raw=raw, expanded=self._expand(raw),
                    lineno=getattr(node, "lineno", owner.lineno),
                    node=ast.Call(func=node, args=[], keywords=[])))
            return
        raw = dotted_name(node.func)
        if raw is not None:
            owner.calls.append(CallSite(
                raw=raw, expanded=self._expand(raw), lineno=node.lineno,
                node=node))

    def visit_Name(self, node: ast.Name) -> None:
        # Bare references to known functions (resolved in pass 2).
        if isinstance(node.ctx, ast.Load):
            self._current.references.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        raw = dotted_name(node)
        if raw is not None and isinstance(node.ctx, ast.Load):
            self._current.references.add(raw)
            return  # don't double-record the chain's root Name
        self.generic_visit(node)


def _declaration_of(decorators: Sequence[str]) -> Optional[str]:
    """The effects declaration named by a decorator list, if any."""
    for deco in decorators:
        last = deco.rsplit(".", 1)[-1]
        if last in ("pure", "deterministic_under_seed",
                    "mutates_global_state", "observational"):
            # Accept both the canonical ``effects.pure`` spelling and a
            # direct ``from repro.analysis.effects import pure``.
            if ("effects" in deco or deco == last):
                return last
    return None


class CallGraph:
    """The resolved whole-package graph the audit walks."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionNode] = {}
        self.modules: Dict[str, ModuleInfo] = {}
        #: (path, lineno, message) for files that failed to parse.
        self.parse_failures: List[Tuple[str, Optional[int], str]] = []
        self._by_bare_name: Dict[str, List[str]] = {}

    def add(self, fn: FunctionNode) -> None:
        self.functions[fn.qualname] = fn
        self._by_bare_name.setdefault(fn.name, []).append(fn.qualname)

    def node(self, qualname: str) -> FunctionNode:
        return self.functions[qualname]

    # -- resolution ------------------------------------------------------------

    def _resolve_in_module(self, info: ModuleInfo, raw: str,
                           expanded: str,
                           fn: FunctionNode) -> Optional[str]:
        head, _, rest = raw.partition(".")
        # self.method() / cls.method(): enclosing class, then bases.
        if head in ("self", "cls") and rest and "." not in rest:
            class_name = self._enclosing_class(fn)
            if class_name is not None:
                found = self._resolve_method(info, class_name, rest, set())
                if found is not None:
                    return found
            return None
        # Nested functions of enclosing scopes shadow module names.
        scope: Optional[FunctionNode] = fn
        while scope is not None and not rest:
            for child in scope.children:
                child_fn = self.functions[child]
                if child_fn.name == head:
                    return child
            scope = (self.functions[scope.parent]
                     if scope.parent is not None else None)
        if not rest and head in info.functions:
            return info.functions[head]
        if rest and head in info.classes:
            # ClassName.method reference (including decorator targets).
            return info.classes[head].methods.get(rest)
        # Through an import alias: exact qualname, then a package
        # ``__init__`` re-export (repro.exec.run_parallel_sweep ->
        # repro.exec.parallel.run_parallel_sweep).
        if expanded in self.functions:
            return expanded
        prefix, _, bare = expanded.rpartition(".")
        if prefix:
            for candidate in self._by_bare_name.get(bare, ()):  # re-export
                node = self.functions[candidate]
                if node.module.startswith(prefix) and node.class_name is None:
                    return candidate
            # method through an imported class: Module.Class.method
            cls_prefix, _, cls_name = prefix.rpartition(".")
            cls_module = self.modules.get(cls_prefix)
            if cls_module is not None and cls_name in cls_module.classes:
                return cls_module.classes[cls_name].methods.get(bare)
        return None

    def _enclosing_class(self, fn: FunctionNode) -> Optional[str]:
        node: Optional[FunctionNode] = fn
        while node is not None:
            if node.class_name is not None:
                return node.class_name
            node = (self.functions[node.parent]
                    if node.parent is not None else None)
        return None

    def _resolve_method(self, info: ModuleInfo, class_name: str,
                        method: str, seen: Set[str]) -> Optional[str]:
        if class_name in seen:
            return None
        seen.add(class_name)
        cls = info.classes.get(class_name)
        if cls is None:
            # The class may live in another analyzed module (imported).
            target = info.aliases.get(class_name, class_name)
            module_name, _, bare = target.rpartition(".")
            other = self.modules.get(module_name)
            if other is None or bare not in other.classes:
                return None
            info, cls = other, other.classes[bare]
        if method in cls.methods:
            return cls.methods[method]
        for base in cls.bases:
            found = self._resolve_method(info, base.rsplit(".", 1)[-1],
                                         method, seen)
            if found is not None:
                return found
        return None

    def resolve(self) -> None:
        """Second pass: resolve every call site and reference."""
        for fn in self.functions.values():
            info = self.modules[fn.module]
            for site in fn.calls:
                if ("." not in site.raw
                        and site.raw in fn.local_bindings):
                    continue  # a parameter/local shadows the module name
                site.resolved = self._resolve_in_module(
                    info, site.raw, site.expanded, fn)
            resolved_refs: Set[str] = set()
            for raw in fn.references:
                if "." not in raw and raw in fn.local_bindings:
                    continue  # a parameter/local shadows the module name
                target = self._resolve_in_module(info, raw,
                                                 self._expand_for(info, raw),
                                                 fn)
                if target is not None:
                    resolved_refs.add(target)
            fn.references = resolved_refs

    @staticmethod
    def _expand_for(info: ModuleInfo, raw: str) -> str:
        head, _, rest = raw.partition(".")
        target = info.aliases.get(head)
        if target is None:
            return raw
        return f"{target}.{rest}" if rest else target

    # -- traversal helpers -----------------------------------------------------

    def callees(self, qualname: str) -> List[str]:
        """Resolved in-graph call targets of one function."""
        fn = self.functions[qualname]
        seen: Set[str] = set()
        out: List[str] = []
        for site in fn.calls:
            if site.resolved is not None and site.resolved not in seen:
                seen.add(site.resolved)
                out.append(site.resolved)
        return out

    def reachable_from(self, roots: Iterable[str]
                       ) -> Dict[str, Optional[str]]:
        """BFS closure over call edges; maps qualname -> predecessor."""
        parent: Dict[str, Optional[str]] = {}
        queue: List[str] = []
        for root in roots:
            if root in self.functions and root not in parent:
                parent[root] = None
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee in self.callees(current):
                if callee not in parent:
                    parent[callee] = current
                    queue.append(callee)
        return parent

    def chain(self, parent: Dict[str, Optional[str]],
              qualname: str, limit: int = 4) -> List[str]:
        """Root-to-``qualname`` path through a BFS predecessor map."""
        path = [qualname]
        while parent.get(path[-1]) is not None and len(path) < 32:
            nxt = parent[path[-1]]
            assert nxt is not None
            path.append(nxt)
        path.reverse()
        if len(path) > limit:
            path = [*path[:limit - 1], "...", path[-1]]
        return path


def build_callgraph(files: Sequence["str | pathlib.Path"]) -> CallGraph:
    """Parse ``files`` and return the resolved call graph.

    Files that fail to read or parse are recorded in
    :attr:`CallGraph.parse_failures` (the audit reports them as D300)
    and skipped; one bad file never aborts the whole audit.
    """
    graph = CallGraph()
    for raw_path in files:
        path = pathlib.Path(raw_path)
        try:
            source = path.read_text()
        except OSError as exc:
            graph.parse_failures.append(
                (str(path), None, f"cannot read file: {exc}"))
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            graph.parse_failures.append(
                (str(path), exc.lineno, f"syntax error: {exc.msg}"))
            continue
        info = ModuleInfo(name=module_name_for(path), path=str(path),
                          source_lines=source.splitlines())
        if info.name in graph.modules:  # same stem twice: keep both parts
            info.name = f"{info.name}@{len(graph.modules)}"
        graph.modules[info.name] = info
        _ModuleVisitor(graph, info).visit(tree)
    graph.resolve()
    return graph
