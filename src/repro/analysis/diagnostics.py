"""Shared diagnostics core for the static analyzers.

A :class:`Diagnostic` is one finding: a stable rule ID (``L101``,
``M203``, ...), a severity, a location (file/line or a model object
path), the message, and an optional fix hint.  The CLI renders lists of
them as text or JSON; a :class:`Baseline` file records accepted findings
so ``repro lint`` / ``repro check`` can gate CI on *new* findings only.

Baseline fingerprints deliberately exclude the line number: moving code
around must not invalidate a suppression, only changing the finding
itself (rule, file, message) does.

This module also owns the cross-analyzer **rule registry**: every
analyzer family (lint L1xx, check M2xx, audit D3xx) registers its rule
table through :func:`register_rules`, which rejects any rule ID already
claimed — a new rule can never silently reuse (and thereby re-key the
baselines of) an existing one.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence


# Rule ID -> (family, summary); populated via register_rules() by each
# analyzer module at import time.
_RULE_REGISTRY: Dict[str, "tuple[str, str]"] = {}


def register_rules(family: str, rules: Dict[str, str]) -> Dict[str, str]:
    """Claim ``rules`` (ID -> summary) for one analyzer ``family``.

    Returns ``rules`` unchanged so modules can write
    ``LINT_RULES = register_rules("lint", {...})``.  Re-registering an
    identical entry is a no-op (modules may be reloaded); claiming an
    ID another family or summary already holds raises ``ValueError``.
    """
    for rule_id, summary in rules.items():
        existing = _RULE_REGISTRY.get(rule_id)
        if existing is not None and existing != (family, summary):
            raise ValueError(
                f"rule ID {rule_id} already registered by family "
                f"'{existing[0]}' ({existing[1]!r}); every rule ID must "
                f"be unique across analyzers")
        _RULE_REGISTRY[rule_id] = (family, summary)
    return rules


def all_rules() -> Dict[str, "tuple[str, str]"]:
    """Every registered rule: ID -> (family, summary), sorted by ID."""
    return dict(sorted(_RULE_REGISTRY.items()))


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail the CLI (exit code 1); ``WARNING`` findings
    are reported but pass unless ``--strict``; ``INFO`` never gates.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding of an analyzer.

    ``path`` is a source file for lint findings or a dotted model path
    (``circuit:localblock-read-0``) for model findings; ``line`` is
    meaningful only for lint findings.
    """

    rule: str
    severity: Severity
    message: str
    path: str = ""
    line: Optional[int] = None
    column: Optional[int] = None
    hint: Optional[str] = None

    def location(self) -> str:
        """Human-readable ``path:line:col`` prefix."""
        parts = [self.path or "<unknown>"]
        if self.line is not None:
            parts.append(str(self.line))
            if self.column is not None:
                parts.append(str(self.column))
        return ":".join(parts)

    def fingerprint(self) -> str:
        """Stable identity for baseline suppression (line-independent)."""
        key = f"{self.rule}|{self.path}|{self.message}"
        return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "path": self.path,
            "fingerprint": self.fingerprint(),
        }
        if self.line is not None:
            data["line"] = self.line
        if self.column is not None:
            data["column"] = self.column
        if self.hint is not None:
            data["hint"] = self.hint
        return data


def sort_key(diag: Diagnostic) -> tuple:
    return (diag.path, diag.line or 0, diag.column or 0, diag.rule)


def format_diagnostics(diagnostics: Sequence[Diagnostic]) -> str:
    """Render findings as one text line each, plus a tally line."""
    lines: List[str] = []
    for diag in sorted(diagnostics, key=sort_key):
        lines.append(f"{diag.location()}: {diag.severity.value} "
                     f"[{diag.rule}] {diag.message}")
        if diag.hint:
            lines.append(f"    hint: {diag.hint}")
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    warnings = sum(1 for d in diagnostics if d.severity is Severity.WARNING)
    lines.append(f"{len(diagnostics)} finding(s): "
                 f"{errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def diagnostics_to_json(diagnostics: Sequence[Diagnostic]) -> str:
    """Render findings as a JSON document (stable ordering)."""
    ordered = sorted(diagnostics, key=sort_key)
    return json.dumps({
        "version": 1,
        "count": len(ordered),
        "errors": sum(1 for d in ordered if d.severity is Severity.ERROR),
        "warnings": sum(1 for d in ordered
                        if d.severity is Severity.WARNING),
        "diagnostics": [d.to_dict() for d in ordered],
    }, indent=2)


class Baseline:
    """A set of accepted findings, persisted as JSON.

    Workflow: run the analyzer once with ``--write-baseline FILE`` to
    accept the current findings, commit the file, and subsequent runs
    with ``--baseline FILE`` (or the auto-discovered repo default) only
    report findings *not* in the set.
    """

    DEFAULT_NAME = ".repro-lint-baseline.json"

    def __init__(self, entries: Optional[Dict[str, Dict[str, str]]] = None
                 ) -> None:
        self.entries: Dict[str, Dict[str, str]] = dict(entries or {})

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, diag: Diagnostic) -> bool:
        return diag.fingerprint() in self.entries

    def filter(self, diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
        """The findings not suppressed by this baseline."""
        return [d for d in diagnostics if d not in self]

    # -- persistence ---------------------------------------------------------

    @classmethod
    def from_diagnostics(cls, diagnostics: Iterable[Diagnostic]) -> "Baseline":
        entries = {
            d.fingerprint(): {"rule": d.rule, "path": d.path,
                              "message": d.message}
            for d in diagnostics
        }
        return cls(entries)

    @classmethod
    def load(cls, path: "str | pathlib.Path") -> "Baseline":
        data = json.loads(pathlib.Path(path).read_text())
        if data.get("version") != 1:
            raise ValueError(f"unsupported baseline version in {path}")
        return cls(data.get("suppressions", {}))

    def save(self, path: "str | pathlib.Path") -> pathlib.Path:
        path = pathlib.Path(path)
        ordered = dict(sorted(self.entries.items()))
        path.write_text(json.dumps(
            {"version": 1, "suppressions": ordered}, indent=2,
            sort_keys=True) + "\n")
        return path

    @classmethod
    def discover(cls, start: "str | pathlib.Path") -> "Optional[Baseline]":
        """Find and load the repo-default baseline near ``start``.

        Walks from ``start`` (a file or directory being analyzed) up
        through its parents looking for :data:`DEFAULT_NAME`, stopping
        at the repository root — the first directory holding ``.git``
        or ``pyproject.toml`` — so analyzing a checkout never picks up
        a stray baseline from ``$HOME`` or ``/``.
        """
        here = pathlib.Path(start).resolve()
        if here.is_file():
            here = here.parent
        for directory in (here, *here.parents):
            candidate = directory / cls.DEFAULT_NAME
            if candidate.is_file():
                return cls.load(candidate)
            if ((directory / ".git").exists()
                    or (directory / "pyproject.toml").is_file()):
                return None  # repository root: stop walking up
        return None
