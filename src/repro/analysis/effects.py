"""Effect lattice and declarative effect annotations for the audit.

The determinism audit (:mod:`repro.analysis.purity`, ``repro audit``)
classifies every function by the *effects* its body can exercise:

* :data:`Effect.UNSEEDED_RNG` — draws entropy that is not derived from
  a seed the caller passed in (``np.random.default_rng()`` with no
  argument, the module-global ``np.random.*`` / ``random.*`` streams,
  ``os.urandom``, ``uuid.uuid4``);
* :data:`Effect.AMBIENT` — reads run-varying ambient process state
  (wall clock, ``os.environ``, ``os.getpid``, hostname);
* :data:`Effect.GLOBAL_WRITE` — mutates process-global state (module
  globals, class attributes, the process-global telemetry instances),
  which fork/spawn semantics silently discard or race when it happens
  inside a worker process.

Effects form a join-semilattice under set union: a function's *closure
effect* is the union of its intrinsic effects, the effects of every
function it can call, and the effects of every function it defines
inline (nested defs and lambdas execute with the parent's obligations).
``Effect`` is a :class:`enum.Flag`, so the join is the ``|`` operator
and "pure" is the bottom element :data:`Effect.NONE`.

The decorators below are the **annotation contract**: they declare the
effect discipline a function promises, both to human readers and to the
static analyzer.  They are deliberately inert at runtime (they only tag
the function) — the analyzer *verifies* each promise against the
computed closure effect and reports rule ``D306`` on contradiction, so
an annotation can never silence a real finding the way a trusted
``@no_side_effects`` marker could.

>>> @pure
... def area(width_m: float, height_m: float) -> float:
...     return width_m * height_m
>>> declared_effects(area)
'pure'
>>> declared_effects(declared_effects) is None
True
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, TypeVar

__all__ = [
    "Effect",
    "EFFECT_ATTRIBUTE",
    "pure",
    "deterministic_under_seed",
    "mutates_global_state",
    "observational",
    "declared_effects",
]

F = TypeVar("F", bound=Callable)

#: Attribute name the decorators stamp onto the function object.
EFFECT_ATTRIBUTE = "__repro_effects__"


class Effect(enum.Flag):
    """One function's effect set (a join-semilattice under ``|``)."""

    NONE = 0
    #: Entropy not derived from a caller-supplied seed.
    UNSEEDED_RNG = enum.auto()
    #: Run-varying ambient process state (clock, environ, pid, host).
    AMBIENT = enum.auto()
    #: Mutation of process-global state (module globals, class
    #: attributes, the process-global telemetry instances).
    GLOBAL_WRITE = enum.auto()

    def describe(self) -> str:
        """Human-readable rendering of a (possibly joined) effect."""
        if self is Effect.NONE:
            return "pure"
        names = {
            Effect.UNSEEDED_RNG: "unseeded-rng",
            Effect.AMBIENT: "ambient-state",
            Effect.GLOBAL_WRITE: "global-mutation",
        }
        return "+".join(label for flag, label in names.items()
                        if flag in self)


def _annotate(fn: F, declaration: str) -> F:
    setattr(fn, EFFECT_ATTRIBUTE, declaration)
    return fn


def pure(fn: F) -> F:
    """Declare ``fn`` free of every audited effect.

    A pure function may not draw randomness, read ambient process
    state, or mutate process-global state — directly or through
    anything it calls.  ``repro audit`` verifies the declaration
    (rule ``D306``) rather than trusting it.
    """
    return _annotate(fn, "pure")


def deterministic_under_seed(fn: F) -> F:
    """Declare ``fn`` bit-reproducible given its explicit seed inputs.

    The function may sample randomness, but only through generators or
    seeds passed in by the caller (``np.random.Generator`` parameters,
    ``SeedSequence`` children); it may not touch the module-global RNG
    streams or ambient process state.  This is the contract every
    Monte-Carlo sample evaluator and sweep work item must satisfy for
    the serial↔parallel bit-identity guarantee to hold.  Verified by
    ``repro audit`` (rule ``D306``), never trusted.
    """
    return _annotate(fn, "deterministic_under_seed")


def mutates_global_state(fn: F) -> F:
    """Declare ``fn`` an *intentional* mutator of process-global state.

    Used by the sanctioned global-state APIs (``obs.enable`` and
    friends) so the audit knows calls to them from worker-executed
    code are rule ``D303`` findings even when the mutation itself is
    hidden behind the call boundary.  The declaration grants nothing:
    it moves the report from the mutation site to the worker-side call
    site, where the reviewer can judge (and, for the one sanctioned
    per-worker telemetry setup, suppress) it.
    """
    return _annotate(fn, "mutates_global_state")


def observational(fn: F) -> F:
    """Declare ``fn`` telemetry-only: its effects never reach results.

    The :mod:`repro.obs` accessors read clocks and append to the
    process-global metric/event instances, but by construction nothing
    they record flows back into computed values (disabled, they are
    no-ops; enabled in a worker, the parent folds their data in a
    deterministic ordered merge).  The audit therefore stops effect
    propagation at an observational call — a ``@pure`` model function
    may freely emit metrics — while still verifying the one thing that
    *would* leak back: an observational function must never draw
    unseeded randomness (rule ``D306``).
    """
    return _annotate(fn, "observational")


def declared_effects(fn: Callable) -> Optional[str]:
    """The declaration stamped on ``fn``, or ``None`` when unannotated."""
    return getattr(fn, EFFECT_ATTRIBUTE, None)
