"""AST-based code linter specialized to this codebase (``repro lint``).

Rules
-----
``L100``  file does not parse (reported, never crashes the run)
``L101``  bare physical-magnitude literal (``11e-15`` instead of
          ``11 * fF``) outside :mod:`repro.units`
``L102``  ``==`` / ``!=`` on floats (literal or ``float``-annotated)
``L103``  parameter named ``*_cap`` / ``*_time`` / ``*_voltage`` /
          ``*_energy`` / ``*_power`` whose docstring does not state units
``L104``  mutable default argument
``L105``  ``repro.obs`` metric/span name breaking the dotted
          ``lower_snake.case`` convention
``L106``  one metric name used with conflicting instrument kinds
          (e.g. both ``counter`` and ``gauge``)
``L107``  per-element Python-loop stamping (``for el in ...:
          el.stamp(...)``) — the hot solver paths should go through a
          compiled :class:`repro.spice.stampplan.StampPlan` instead
``L108``  structured-event kind (``obs.event(...)`` / ``.emit(...)``)
          breaking the dotted ``lower_snake.case`` convention, or one
          kind emitted with conflicting payload-key signatures across
          the codebase
``L109``  direct dense-solver call (``np.linalg.solve`` /
          ``np.linalg.lu`` and friends) outside ``spice/linalg.py`` —
          every solve must route through the shared kernel layer so
          LAPACK/fallback selection, batching and the sparse backend
          stay in one place

Suppression: a trailing ``# noqa`` comment suppresses every rule on
that line; ``# noqa: L101,L102`` suppresses only those rules.  Findings
accepted wholesale live in the baseline file (see
:class:`~repro.analysis.diagnostics.Baseline`).
"""

from __future__ import annotations

import ast
import pathlib
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import (Diagnostic, Severity,
                                        register_rules)

LINT_RULES: Dict[str, str] = register_rules("lint", {
    "L100": "source file does not parse",
    "L101": "bare physical-magnitude literal; use a repro.units multiplier",
    "L102": "float equality comparison; use a tolerance",
    "L103": "physical parameter without documented units",
    "L104": "mutable default argument",
    "L105": "obs metric/span name violates the naming convention",
    "L106": "metric name used with conflicting instrument kinds",
    "L107": "per-element Python-loop stamping; compile a StampPlan instead",
    "L108": "event kind violates naming or payload-schema discipline",
    "L109": "direct linalg solve outside spice/linalg.py; use the "
            "shared kernel layer",
})

# Keyword arguments whose values are solver/algorithm knobs, not
# physical quantities — scientific notation is idiomatic there.
_TOLERANCE_KWARGS = {
    "tol", "xtol", "rtol", "atol", "tolerance", "abs_tol", "rel_tol",
    "gmin", "eps", "target_failure",
}

#: Assignment / loop targets whose bound values are numerical knobs
#: (solver tolerances, gmin ladders), not physical magnitudes.
_TOLERANCE_NAME_RE = re.compile(r"(tol|eps|gmin)", re.IGNORECASE)

#: Solver entry points of the ``numpy.linalg`` / ``scipy.linalg``
#: namespaces.  Calling them directly bypasses the shared kernel layer
#: (:mod:`repro.spice.linalg`), which owns LAPACK-vs-fallback routing,
#: the batched variants and the sparse backend.
_LINALG_SOLVE_NAMES = {
    "solve", "lstsq", "inv", "pinv", "cholesky", "lu", "lu_factor",
    "lu_solve", "solve_triangular",
}
_LINALG_ROOTS = {"np", "numpy", "scipy"}

_METRIC_KINDS = {"counter", "gauge", "histogram"}
_OBS_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")
_OBS_PREFIX_RE = re.compile(r"^[a-z0-9_.]*$")
_SCI_NOTATION_RE = re.compile(r"[0-9.][eE][-+]?[0-9]+$")
_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<rules>[A-Z0-9, ]+))?",
                      re.IGNORECASE)

# Parameter-suffix -> (unit family name, docstring evidence pattern).
_UNIT_FAMILIES: List[Tuple[str, str, re.Pattern]] = [
    ("_cap", "farads",
     re.compile(r"farad|\b[afpnu]?F\b")),
    ("_time", "seconds",
     re.compile(r"second|\b[pnum]?s\b")),
    ("_voltage", "volts",
     re.compile(r"volt|\bm?V\b")),
    ("_energy", "joules",
     re.compile(r"joule|\b[fpnum]?J\b")),
    ("_power", "watts",
     re.compile(r"watt|\b[pnum]?W\b")),
]


class MetricNames:
    """Cross-file registry of statically-known obs metric names."""

    def __init__(self) -> None:
        # name -> kind -> first (path, line) seen
        self.uses: Dict[str, Dict[str, Tuple[str, int]]] = {}

    def record(self, name: str, kind: str, path: str, line: int) -> None:
        kinds = self.uses.setdefault(name, {})
        kinds.setdefault(kind, (path, line))

    def collisions(self) -> List[Diagnostic]:
        found = []
        for name, kinds in sorted(self.uses.items()):
            if len(kinds) < 2:
                continue
            ordered = sorted(kinds.items(), key=lambda kv: kv[1])
            first_kind, (first_path, first_line) = ordered[0]
            for kind, (path, line) in ordered[1:]:
                found.append(Diagnostic(
                    rule="L106", severity=Severity.ERROR,
                    message=(f"metric {name!r} used as {kind} but already "
                             f"registered as {first_kind} at "
                             f"{first_path}:{first_line}"),
                    path=path, line=line,
                    hint="one metric name must map to one instrument kind",
                ))
        return found


class EventKinds:
    """Cross-file registry of statically-known structured-event kinds.

    An event kind is a contract: every emit site must ship the same
    payload keys, or downstream consumers (the Chrome-trace exporter,
    JSONL readers) see a schema that changes per line.  Only emits with
    statically-known keyword payloads are recorded; ``**payload``
    forwarding sites are skipped, not guessed.
    """

    def __init__(self) -> None:
        # kind -> payload-key signature -> first (path, line) seen
        self.uses: Dict[str, Dict[Tuple[str, ...], Tuple[str, int]]] = {}

    def record(self, kind: str, keys: Tuple[str, ...], path: str,
               line: int) -> None:
        signatures = self.uses.setdefault(kind, {})
        signatures.setdefault(keys, (path, line))

    def conflicts(self) -> List[Diagnostic]:
        found = []
        for kind, signatures in sorted(self.uses.items()):
            if len(signatures) < 2:
                continue
            ordered = sorted(signatures.items(), key=lambda kv: kv[1])
            first_keys, (first_path, first_line) = ordered[0]
            for keys, (path, line) in ordered[1:]:
                found.append(Diagnostic(
                    rule="L108", severity=Severity.ERROR,
                    message=(f"event kind {kind!r} emitted with payload "
                             f"keys ({', '.join(keys) or 'none'}) but "
                             f"first emitted with "
                             f"({', '.join(first_keys) or 'none'}) at "
                             f"{first_path}:{first_line}"),
                    path=path, line=line,
                    hint="one event kind must carry one payload schema",
                ))
        return found


def _noqa_rules(line: str) -> Optional[Set[str]]:
    """Rules suppressed on ``line``: empty set = all, None = none."""
    match = _NOQA_RE.search(line)
    if not match:
        return None
    rules = match.group("rules")
    if not rules:
        return set()
    return {r.strip().upper() for r in rules.split(",") if r.strip()}


def _apply_noqa(diagnostics: List[Diagnostic],
                lines: Sequence[str]) -> List[Diagnostic]:
    kept = []
    for diag in diagnostics:
        if diag.line is not None and 1 <= diag.line <= len(lines):
            suppressed = _noqa_rules(lines[diag.line - 1])
            if suppressed is not None and (
                    not suppressed or diag.rule in suppressed):
                continue
        kept.append(diag)
    return kept


def _unit_suggestions(value: float, limit: int = 3) -> Optional[str]:
    """Suggest ``repro.units`` rewrites of a bare magnitude."""
    import repro.units as units
    candidates = []
    for name in dir(units):
        if name.startswith("_") or name in ("bit", "kb", "Mb"):
            continue
        mult = getattr(units, name)
        # Exact sentinel match against module constants is intended here,
        # and the 1e-9 is a ratio-roundness test, not a physical quantity.
        if not isinstance(mult, float) or mult == 1.0 or mult == 0.0:  # noqa: L102
            continue
        ratio = value / mult
        if 1.0 <= abs(ratio) < 1000.0 and abs(ratio - round(ratio, 6)) < 1e-9:  # noqa: L101
            candidates.append(f"{round(ratio, 6):g} * {name}")
    if not candidates:
        return None
    candidates.sort(key=len)
    return "write e.g. " + " or ".join(candidates[:limit])


class _LintVisitor(ast.NodeVisitor):
    """Single-pass visitor collecting findings for one source file."""

    def __init__(self, path: str, lines: Sequence[str],
                 registry: Optional[MetricNames],
                 event_registry: Optional[EventKinds] = None) -> None:
        self.path = path
        self.lines = lines
        self.registry = registry
        self.event_registry = event_registry
        self.diagnostics: List[Diagnostic] = []
        self.is_units_module = pathlib.Path(path).name == "units.py"
        self.is_linalg_module = pathlib.Path(path).name == "linalg.py"
        # Scope stacks for type-aware float-equality checking.
        self._float_names: List[Set[str]] = [set()]
        self._float_fields: List[Set[str]] = [set()]
        self._tolerance_values: Set[int] = set()  # id() of exempt nodes

    # -- helpers --------------------------------------------------------------

    def _emit(self, rule: str, severity: Severity, message: str,
              node: ast.AST, hint: Optional[str] = None) -> None:
        self.diagnostics.append(Diagnostic(
            rule=rule, severity=severity, message=message, path=self.path,
            line=getattr(node, "lineno", None),
            column=getattr(node, "col_offset", None), hint=hint))

    def _source_text(self, node: ast.AST) -> str:
        line = getattr(node, "lineno", None)
        col = getattr(node, "col_offset", None)
        end_line = getattr(node, "end_lineno", None)
        end_col = getattr(node, "end_col_offset", None)
        if (line is None or col is None or end_line != line
                or end_col is None or not 1 <= line <= len(self.lines)):
            return ""
        return self.lines[line - 1][col:end_col]

    # -- L101: bare physical-magnitude literals -------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg in _TOLERANCE_KWARGS:
                for child in ast.walk(keyword.value):
                    self._tolerance_values.add(id(child))
        self._check_obs_call(node)
        self._check_event_call(node)
        self._check_linalg_call(node)
        self.generic_visit(node)

    # -- L109: direct linalg solves ---------------------------------------------

    def _check_linalg_call(self, node: ast.Call) -> None:
        """Flag ``np.linalg.solve(...)``-style calls outside the shared
        kernel module ``spice/linalg.py``."""
        if self.is_linalg_module:
            return
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _LINALG_SOLVE_NAMES):
            return
        inner = func.value
        if (isinstance(inner, ast.Attribute) and inner.attr == "linalg"
                and isinstance(inner.value, ast.Name)
                and inner.value.id in _LINALG_ROOTS):
            root = f"{inner.value.id}.linalg"
        elif (isinstance(inner, ast.Name)
                and inner.id == "linalg"
                and func.attr in ("lu", "lu_factor", "lu_solve",
                                  "solve_triangular")):
            # ``from scipy import linalg`` spelling of the same calls
            # (the repro.spice.linalg wrappers have distinct names).
            root = "linalg"
        else:
            return
        self._emit(
            "L109", Severity.ERROR,
            f"direct {root}.{func.attr}() call; dense solves must "
            "route through repro.spice.linalg",
            node,
            hint="use lu_factorize/lu_backsolve or lu_solve_dense from "
                 "repro.spice.linalg (batched variants included)")

    def _exempt_tolerance_targets(self, targets, value) -> None:
        """Values bound to tolerance-named targets are numerical knobs."""
        names = [t for t in targets if isinstance(t, ast.Name)]
        if (value is not None and names and len(names) == len(targets)
                and all(_TOLERANCE_NAME_RE.search(n.id) for n in names)):
            for child in ast.walk(value):
                self._tolerance_values.add(id(child))

    def visit_Assign(self, node: ast.Assign) -> None:
        self._exempt_tolerance_targets(node.targets, node.value)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._exempt_tolerance_targets([node.target], node.iter)
        self._check_stamp_loop(node)
        self.generic_visit(node)

    # -- L107: per-element stamping loops ---------------------------------------

    def _check_stamp_loop(self, node: ast.For) -> None:
        """Flag ``for el in ...: el.stamp(...)`` — the pattern the
        compiled stamp plan replaces on the solver hot paths."""
        if not isinstance(node.target, ast.Name):
            return
        target = node.target.id
        for child in ast.walk(node):
            if (isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "stamp"
                    and isinstance(child.func.value, ast.Name)
                    and child.func.value.id == target):
                self._emit(
                    "L107", Severity.WARNING,
                    f"per-element stamping loop over {target!r}; each "
                    "Newton iterate pays a Python call per element",
                    node,
                    hint="compile the circuit into a "
                         "repro.spice.stampplan.StampPlan and replay it")
                return

    def visit_Constant(self, node: ast.Constant) -> None:
        if (not self.is_units_module
                and isinstance(node.value, float)
                and id(node) not in self._tolerance_values
                and _SCI_NOTATION_RE.search(self._source_text(node))):
            self._emit(
                "L101", Severity.ERROR,
                f"bare magnitude {self._source_text(node)}; "
                "physical quantities should use repro.units multipliers",
                node, hint=_unit_suggestions(node.value))
        self.generic_visit(node)

    # -- L102: float equality --------------------------------------------------

    @staticmethod
    def _annotation_is_float(annotation: Optional[ast.AST]) -> bool:
        if annotation is None:
            return False
        if isinstance(annotation, ast.Name):
            return annotation.id == "float"
        if isinstance(annotation, ast.Constant):
            return annotation.value == "float"
        return False

    def _is_float_operand(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._float_names)
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return any(node.attr in scope for scope in self._float_fields)
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "float"):
            return True
        return False

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            offender = next((o for o in (left, right)
                             if self._is_float_operand(o)), None)
            if offender is not None:
                text = self._source_text(offender) or "operand"
                self._emit(
                    "L102", Severity.ERROR,
                    f"float equality against {text!r}; "
                    "floats accumulate rounding error",
                    node, hint="use math.isclose() or an explicit tolerance")
        self.generic_visit(node)

    # -- L103/L104 + scope management ------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        fields = {
            stmt.target.id for stmt in node.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and self._annotation_is_float(stmt.annotation)
        }
        self._float_fields.append(fields)
        self.generic_visit(node)
        self._float_fields.pop()

    def _visit_function(self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
                        ) -> None:
        all_args = [*node.args.posonlyargs, *node.args.args,
                    *node.args.kwonlyargs]
        self._float_names.append({
            arg.arg for arg in all_args
            if self._annotation_is_float(arg.annotation)
        })
        self._check_unit_docs(node, all_args)
        self._check_mutable_defaults(node)
        self._exempt_tolerance_defaults(node)
        self.generic_visit(node)
        self._float_names.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (isinstance(node.target, ast.Name)
                and self._annotation_is_float(node.annotation)):
            self._float_names[-1].add(node.target.id)
        self._exempt_tolerance_targets([node.target], node.value)
        self.generic_visit(node)

    def _check_unit_docs(self, node, all_args) -> None:
        physical = [
            (arg, family, pattern)
            for arg in all_args if arg.arg not in ("self", "cls")
            for suffix, family, pattern in _UNIT_FAMILIES
            if arg.arg.endswith(suffix)
        ]
        if not physical:
            return
        docstring = ast.get_docstring(node) or ""
        for arg, family, pattern in physical:
            if not pattern.search(docstring):
                self._emit(
                    "L103", Severity.WARNING,
                    f"parameter {arg.arg!r} of {node.name!r} carries a "
                    f"physical magnitude but the docstring never states "
                    f"its units ({family}?)",
                    arg, hint=f"document the unit, e.g. '{arg.arg}: "
                              f"..., {family}'")

    def _exempt_tolerance_defaults(self, node) -> None:
        """Defaults of tolerance-named params are not physical magnitudes."""
        pairs = []
        positional = [*node.args.posonlyargs, *node.args.args]
        if node.args.defaults:
            pairs.extend(zip(positional[-len(node.args.defaults):],
                             node.args.defaults))
        pairs.extend(zip(node.args.kwonlyargs, node.args.kw_defaults))
        for arg, default in pairs:
            if default is not None and arg.arg in _TOLERANCE_KWARGS:
                for child in ast.walk(default):
                    self._tolerance_values.add(id(child))

    def _check_mutable_defaults(self, node) -> None:
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is None:
                continue
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set"))
            if mutable:
                self._emit(
                    "L104", Severity.ERROR,
                    f"mutable default argument in {node.name!r} is shared "
                    "across calls",
                    default, hint="default to None and create inside")

    # -- L105/L106: obs naming discipline ---------------------------------------

    def _check_obs_call(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute) or not node.args:
            return
        attr = node.func.attr
        is_metric = attr in _METRIC_KINDS
        is_span = (attr == "span"
                   and isinstance(node.func.value, ast.Name)
                   and node.func.value.id in ("obs", "tracer", "self"))
        if not is_metric and not is_span:
            return
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            name = first.value
            if not _OBS_NAME_RE.match(name):
                self._emit(
                    "L105", Severity.ERROR,
                    f"obs {attr} name {name!r} is not dotted lower_snake",
                    first, hint="use names like 'refresh.stall_cycles'")
            elif is_metric and self.registry is not None:
                self.registry.record(name, attr, self.path,
                                     first.lineno)
        elif isinstance(first, ast.JoinedStr):
            prefix = "".join(
                part.value for part in first.values
                if isinstance(part, ast.Constant)
                and isinstance(part.value, str))
            if not _OBS_PREFIX_RE.match(prefix):
                self._emit(
                    "L105", Severity.ERROR,
                    f"obs {attr} f-string name has non-conforming literal "
                    f"part {prefix!r}",
                    first, hint="keep literal parts dotted lower_snake")


    # -- L108: structured-event kind discipline ---------------------------------

    def _check_event_call(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute) or not node.args:
            return
        attr = node.func.attr
        is_event = (attr == "event"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "obs")
        if not is_event and attr != "emit":
            return
        first = node.args[0]
        if not (isinstance(first, ast.Constant)
                and isinstance(first.value, str)):
            return
        kind = first.value
        if not _OBS_NAME_RE.match(kind) or "." not in kind:
            self._emit(
                "L108", Severity.ERROR,
                f"event kind {kind!r} is not dotted lower_snake",
                first, hint="use kinds like 'refresh.dropped'")
            return
        if self.event_registry is not None:
            keywords = [kw.arg for kw in node.keywords]
            if None in keywords:  # **payload forwarding: unknown schema
                return
            self.event_registry.record(kind, tuple(sorted(keywords)),
                                       self.path, first.lineno)


def lint_source(source: str, path: str = "<string>",
                registry: Optional[MetricNames] = None,
                event_registry: Optional[EventKinds] = None
                ) -> List[Diagnostic]:
    """Lint one source text; returns findings after ``# noqa`` filtering."""
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Diagnostic(
            rule="L100", severity=Severity.ERROR,
            message=f"syntax error: {exc.msg}", path=path,
            line=exc.lineno, column=exc.offset)]
    visitor = _LintVisitor(path, lines, registry, event_registry)
    visitor.visit(tree)
    return _apply_noqa(visitor.diagnostics, lines)


def iter_python_files(paths: Iterable["str | pathlib.Path"]
                      ) -> List[pathlib.Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            found.extend(p for p in sorted(path.rglob("*.py"))
                         if "egg-info" not in str(p)
                         and not any(part.startswith(".")
                                     for part in p.parts))
        else:
            found.append(path)
    return found


def lint_paths(paths: Iterable["str | pathlib.Path"]) -> List[Diagnostic]:
    """Lint files and directories; includes cross-file collision checks."""
    registry = MetricNames()
    event_registry = EventKinds()
    diagnostics: List[Diagnostic] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text()
        except OSError as exc:
            diagnostics.append(Diagnostic(
                rule="L100", severity=Severity.ERROR,
                message=f"cannot read file: {exc}", path=str(path)))
            continue
        diagnostics.extend(lint_source(source, str(path), registry,
                                       event_registry))
    diagnostics.extend(registry.collisions())
    diagnostics.extend(event_registry.conflicts())
    return diagnostics
