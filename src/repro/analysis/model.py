"""Pre-solve static analyzer for circuits and model configs (``repro check``).

The MNA solver only discovers a malformed circuit at solve time, as a
singular matrix; macro/refresh/tech misconfigurations surface even
later, as silently wrong figures.  This module checks the *structure*
before anything is solved:

``M201``  circuit has no elements
``M202``  circuit has no ground connection
``M203``  floating node: no element stamps a constraint, conductance or
          capacitance onto it (guaranteed singular matrix)
``M204``  dangling node: exactly one connection (probable netlist typo)
``M205``  loop of voltage sources (singular matrix)
``M206``  undamped dynamic node: conductive paths only through nonlinear
          devices, no capacitance — goes near-singular when devices cut off
``M207``  dangling subcircuit port (declared but unused, or mapped to a
          node absent from the circuit)
``M208``  macro/organization out of physical range (retention,
          power-of-two geometry, voltages vs node limits)
``M209``  refresh policy saturates (or nearly saturates) its victim scope
``M210``  technology-node parameter outside its plausible envelope
``M211``  check target failed to load
``M212``  fault/resilience config physically inconsistent (fault plan
          coordinates outside the matrix, duplicate faults, repair or
          budget parameters out of range)

:func:`check_circuit` is also the engine behind
:meth:`repro.spice.netlist.Circuit.validate`.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analysis.diagnostics import (Diagnostic, Severity,
                                        register_rules)

MODEL_RULES: Dict[str, str] = register_rules("check", {
    "M201": "circuit has no elements",
    "M202": "circuit has no ground connection",
    "M203": "floating node (nothing stamps it; singular matrix)",
    "M204": "dangling node (single connection)",
    "M205": "voltage-source loop (singular matrix)",
    "M206": "undamped dynamic node (nonlinear-only paths, no capacitance)",
    "M207": "dangling subcircuit port",
    "M208": "macro/organization parameter out of physical range",
    "M209": "refresh policy saturates its victim scope",
    "M210": "technology-node parameter outside plausible envelope",
    "M211": "check target failed to load",
    "M212": "fault/resilience configuration physically inconsistent",
})

# The rules Circuit.validate() has always enforced by raising; kept as
# the non-strict raise set so legacy callers see unchanged behaviour.
LEGACY_VALIDATE_RULES = ("M201", "M202")


def _diag(rule: str, severity: Severity, message: str, path: str,
          hint: Optional[str] = None) -> Diagnostic:
    return Diagnostic(rule=rule, severity=severity, message=message,
                      path=path, hint=hint)


# ---------------------------------------------------------------------------
# Circuit graph checks
# ---------------------------------------------------------------------------

def check_circuit(circuit) -> List[Diagnostic]:
    """Structural checks of a :class:`repro.spice.netlist.Circuit`."""
    from repro.spice.netlist import GROUND

    path = f"circuit:{circuit.name}"
    elements = circuit.elements
    if not elements:
        return [_diag("M201", Severity.ERROR,
                      f"circuit {circuit.name!r} has no elements", path)]
    diagnostics: List[Diagnostic] = []

    # node -> [(element, role)] over every terminal connection.
    connections: Dict[str, List[Tuple[Any, str]]] = {}
    for element in elements:
        for node, role in element.terminal_roles():
            connections.setdefault(node, []).append((element, role))

    if GROUND not in connections:
        diagnostics.append(_diag(
            "M202", Severity.ERROR,
            f"circuit {circuit.name!r} has no ground connection", path,
            hint="tie at least one terminal to node '0'"))

    for node, conns in connections.items():
        if node == GROUND:
            continue
        roles = {role for _el, role in conns}
        names = sorted({el.name for el, _role in conns})
        if not roles & {"conductive", "capacitive", "constraint"}:
            diagnostics.append(_diag(
                "M203", Severity.ERROR,
                f"node {node!r} is floating: only sensed or driven by "
                f"current sources ({', '.join(names)}); the MNA matrix "
                "is singular", path,
                hint="add a conductive path, capacitor or voltage source"))
            continue
        if len(conns) == 1 and conns[0][1] != "capacitive":
            diagnostics.append(_diag(
                "M204", Severity.WARNING,
                f"node {node!r} has a single connection "
                f"({names[0]}); probable netlist typo", path,
                hint="check the node name for a misspelling"))
        conductive = [(el, role) for el, role in conns
                      if role == "conductive"]
        if ("constraint" not in roles and "capacitive" not in roles
                and conductive
                and all(el.is_nonlinear() for el, _role in conductive)):
            diagnostics.append(_diag(
                "M206", Severity.WARNING,
                f"node {node!r} has zero capacitance and only nonlinear "
                f"conductive paths ({', '.join(names)}); the matrix goes "
                "near-singular when the devices cut off", path,
                hint="add the node's parasitic capacitance explicitly"))

    diagnostics.extend(_voltage_source_loops(circuit, path))
    return diagnostics


def _voltage_source_loops(circuit, path: str) -> List[Diagnostic]:
    """Union-find over voltage-source edges; a closing edge is a loop."""
    parent: Dict[str, str] = {}

    def find(node: str) -> str:
        parent.setdefault(node, node)
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    found = []
    for element in circuit.elements:
        constrained = [node for node, role in element.terminal_roles()
                       if role == "constraint"]
        if len(constrained) != 2:
            continue
        root_a, root_b = find(constrained[0]), find(constrained[1])
        if root_a == root_b:
            found.append(_diag(
                "M205", Severity.ERROR,
                f"voltage source {element.name!r} closes a loop of "
                f"voltage sources through nodes "
                f"{constrained[0]!r}-{constrained[1]!r}; the MNA matrix "
                "is singular", path,
                hint="break the loop with a series resistance"))
            continue
        parent[root_a] = root_b
    return found


def check_scope(scope) -> List[Diagnostic]:
    """Port-discipline checks of a :class:`repro.spice.subckt.Scope`."""
    from repro.spice.netlist import GROUND

    path = f"subckt:{scope.instance}"
    diagnostics = []
    for local in sorted(scope.unresolved_ports()):
        diagnostics.append(_diag(
            "M207", Severity.WARNING,
            f"port {local!r} of instance {scope.instance!r} was declared "
            "but never used by the subcircuit builder", path,
            hint="drop the port or check the local node name"))
    circuit_nodes = set(scope.circuit.nodes())
    for local, target in sorted(scope.ports.items()):
        if target != GROUND and target not in circuit_nodes:
            diagnostics.append(_diag(
                "M207", Severity.ERROR,
                f"port {local!r} of instance {scope.instance!r} maps to "
                f"node {target!r} which does not exist in circuit "
                f"{scope.circuit.name!r}", path,
                hint="connect the port target or fix its spelling"))
    return diagnostics


# ---------------------------------------------------------------------------
# Configuration checks
# ---------------------------------------------------------------------------

def _is_power_of_two(value: int) -> bool:
    return value >= 1 and value & (value - 1) == 0


def check_organization(org) -> List[Diagnostic]:
    """Physical-range checks of an ``ArrayOrganization``."""
    path = f"organization:{org.total_bits}b"
    diagnostics = []
    if not _is_power_of_two(org.cells_per_lbl):
        diagnostics.append(_diag(
            "M208", Severity.WARNING,
            f"cells_per_lbl={org.cells_per_lbl} is not a power of two; "
            "the row decoder wastes address space", path,
            hint="use 8, 16, 32, ... cells per local bitline"))
    if not _is_power_of_two(org.word_bits):
        diagnostics.append(_diag(
            "M208", Severity.WARNING,
            f"word_bits={org.word_bits} is not a power of two", path))
    node, cell = org.node, org.cell
    if cell.wordline_voltage > node.vdd_max:
        diagnostics.append(_diag(
            "M208", Severity.ERROR,
            f"cell word-line voltage {cell.wordline_voltage:.2f} V exceeds "
            f"the node reliability limit vdd_max={node.vdd_max:.2f} V",
            path, hint="lower the overdrive or use a node that allows it"))
    elif (cell.wordline_voltage > node.vdd
          and not node.allows_wordline_overdrive):
        diagnostics.append(_diag(
            "M208", Severity.ERROR,
            f"cell word-line voltage {cell.wordline_voltage:.2f} V "
            f"overdrives vdd={node.vdd:.2f} V but node {node.name!r} "
            "forbids word-line overdrive", path))
    if cell.stored_high > node.vdd_max:
        diagnostics.append(_diag(
            "M208", Severity.ERROR,
            f"stored-high level {cell.stored_high:.2f} V exceeds "
            f"vdd_max={node.vdd_max:.2f} V", path))
    return diagnostics


def check_macro(macro) -> List[Diagnostic]:
    """Checks of an assembled ``MacroDesign`` (organization + retention)."""
    diagnostics = check_organization(macro.organization)
    path = f"macro:{macro.organization.total_bits}b"
    override = macro.retention_override
    if override is not None and override <= 0:
        diagnostics.append(_diag(
            "M208", Severity.ERROR,
            f"retention_override={override!r} s must be positive", path,
            hint="pass the worst-case retention in seconds, e.g. 1e-3"))
    return diagnostics


def check_refresh_policy(policy) -> List[Diagnostic]:
    """Saturation checks of a ``RefreshPolicy``."""
    path = f"refresh:{type(policy).__name__}"
    utilisation = policy.utilisation()
    if utilisation >= 1.0:
        return [_diag(
            "M209", Severity.ERROR,
            f"refresh period {policy.refresh_period_cycles} cycles cannot "
            f"cover {policy.total_rows} rows x "
            f"{policy.refresh_duration_cycles} cycles: the victim scope "
            "refreshes back-to-back and never serves accesses", path,
            hint="raise the refresh period or shrink the organization")]
    if utilisation > 0.5:
        return [_diag(
            "M209", Severity.WARNING,
            f"refresh occupies {100 * utilisation:.0f}% of the victim "
            "scope; access latency degrades sharply", path)]
    return []


def check_tech_node(node) -> List[Diagnostic]:
    """Plausibility checks of a ``TechnologyNode``."""
    path = f"tech:{node.name}"
    diagnostics = []
    if not 200.0 <= node.temperature <= 450.0:
        diagnostics.append(_diag(
            "M210", Severity.WARNING,
            f"temperature {node.temperature:.0f} K is outside the "
            "calibrated 200-450 K envelope", path))
    if not 0.4 <= node.vdd <= 2.5:
        diagnostics.append(_diag(
            "M210", Severity.WARNING,
            f"vdd={node.vdd:.2f} V is outside the 0.4-2.5 V envelope the "
            "device cards were calibrated for", path))
    for (polarity, flavor), params in sorted(
            node.transistors.items(),
            key=lambda item: (item[0][0].value, item[0][1].value)):
        if params.vth >= node.vdd:
            diagnostics.append(_diag(
                "M210", Severity.WARNING,
                f"{polarity.value}/{flavor.value} vth={params.vth:.2f} V "
                f">= vdd={node.vdd:.2f} V: the device never turns on "
                "in strong inversion", path))
    return diagnostics


def check_fault_plan(plan) -> List[Diagnostic]:
    """Physical-consistency checks of a ``FaultPlan`` (rule M212).

    The plan dataclass validates only types and signs so a questionable
    config can be loaded and linted; this rule owns the physics.
    """
    path = f"faults:seed={plan.seed}"
    diagnostics = []
    if len(plan.weak_cells) > plan.total_rows:
        diagnostics.append(_diag(
            "M212", Severity.ERROR,
            f"{len(plan.weak_cells)} weak cells exceed the matrix's "
            f"{plan.total_rows} rows (weak-cell fraction "
            f"{plan.weak_cell_fraction:.2f} > 1)", path,
            hint="a row hosts at most one weakest cell; shrink the plan"))

    seen_weak = set()
    for cell in plan.weak_cells:
        where = f"weak cell ({cell.block}, {cell.row})"
        if not (0 <= cell.block < plan.n_blocks
                and 0 <= cell.row < plan.rows_per_block):
            diagnostics.append(_diag(
                "M212", Severity.ERROR,
                f"{where} lies outside the {plan.n_blocks} x "
                f"{plan.rows_per_block} matrix", path))
        if cell.retention_time <= 0:
            diagnostics.append(_diag(
                "M212", Severity.ERROR,
                f"{where} has non-positive retention "
                f"{cell.retention_time!r} s", path))
        if (cell.block, cell.row) in seen_weak:
            diagnostics.append(_diag(
                "M212", Severity.WARNING,
                f"duplicate {where}; only the weakest matters", path))
        seen_weak.add((cell.block, cell.row))

    seen_stuck = set()
    for stuck in plan.stuck_bits:
        where = f"stuck bit ({stuck.block}, {stuck.row}, {stuck.bit})"
        if not (0 <= stuck.block < plan.n_blocks
                and 0 <= stuck.row < plan.rows_per_block):
            diagnostics.append(_diag(
                "M212", Severity.ERROR,
                f"{where} lies outside the matrix", path))
        if not 0 <= stuck.bit < plan.word_bits:
            diagnostics.append(_diag(
                "M212", Severity.ERROR,
                f"{where} exceeds the {plan.word_bits}-bit word", path))
        if stuck.stuck_value not in (0, 1):
            diagnostics.append(_diag(
                "M212", Severity.ERROR,
                f"{where} sticks to {stuck.stuck_value!r}, not 0/1", path))
        key = (stuck.block, stuck.row, stuck.bit)
        if key in seen_stuck:
            diagnostics.append(_diag(
                "M212", Severity.WARNING,
                f"duplicate {where}", path))
        seen_stuck.add(key)

    for outlier in plan.sa_outliers:
        if not 0 <= outlier.block < plan.n_blocks:
            diagnostics.append(_diag(
                "M212", Severity.ERROR,
                f"SA outlier block {outlier.block} outside the matrix",
                path))
        if outlier.offset_multiplier < 1.0:
            diagnostics.append(_diag(
                "M212", Severity.ERROR,
                f"SA outlier on block {outlier.block} has multiplier "
                f"{outlier.offset_multiplier:.3g} < 1: an outlier cannot "
                "shrink the required differential", path,
                hint="offset multipliers are >= 1 in any physical plan"))

    seen_rows = set()
    for fault in plan.refresh_faults:
        if not 0 <= fault.row < plan.total_rows:
            diagnostics.append(_diag(
                "M212", Severity.ERROR,
                f"refresh fault on row {fault.row} outside the "
                f"{plan.total_rows}-row schedule", path))
        if fault.kind == "late" and fault.delay_cycles <= 0:
            diagnostics.append(_diag(
                "M212", Severity.ERROR,
                f"late refresh on row {fault.row} with delay "
                f"{fault.delay_cycles} cycles; a late refresh needs a "
                "positive delay", path))
        if fault.row in seen_rows:
            diagnostics.append(_diag(
                "M212", Severity.WARNING,
                f"row {fault.row} carries more than one refresh fault",
                path, hint="a dead driver cannot also be late"))
        seen_rows.add(fault.row)
    return diagnostics


def check_repair_model(repair, plan=None) -> List[Diagnostic]:
    """Range checks of a ``RepairModel`` (rule M212).

    With a ``plan``, also flags repair capacity exceeding the spare
    rows the plan's blocks can physically hold.
    """
    path = "faults:repair"
    diagnostics = []
    if repair.spare_rows_per_block < 0:
        diagnostics.append(_diag(
            "M212", Severity.ERROR,
            f"spare_rows_per_block={repair.spare_rows_per_block} is "
            "negative", path))
    if repair.correctable_bits < 0:
        diagnostics.append(_diag(
            "M212", Severity.ERROR,
            f"correctable_bits={repair.correctable_bits} is negative",
            path))
    if repair.retention_guard < 1.0:
        diagnostics.append(_diag(
            "M212", Severity.ERROR,
            f"retention_guard={repair.retention_guard:.3g} < 1 refreshes "
            "slower than the weakest cell retains", path,
            hint="the guard must be >= 1 (refresh faster than decay)"))
    if plan is not None and repair.spare_rows_per_block > plan.rows_per_block:
        diagnostics.append(_diag(
            "M212", Severity.ERROR,
            f"spare_rows_per_block={repair.spare_rows_per_block} exceeds "
            f"the block's {plan.rows_per_block} rows: the repair capacity "
            "is larger than the rows it could replace", path))
    return diagnostics


def check_run_budget(budget) -> List[Diagnostic]:
    """Range checks of a sweep ``RunBudget`` (rule M212)."""
    path = "checkpoint:budget"
    diagnostics = []
    if budget.max_seconds is not None and budget.max_seconds <= 0:
        diagnostics.append(_diag(
            "M212", Severity.WARNING,
            f"max_seconds={budget.max_seconds!r} stops the sweep before "
            "the first item", path,
            hint="use None for unlimited, a positive ceiling otherwise"))
    if budget.max_failures is not None and budget.max_failures <= 0:
        diagnostics.append(_diag(
            "M212", Severity.WARNING,
            f"max_failures={budget.max_failures!r} aborts on the first "
            "failure it was meant to tolerate", path))
    return diagnostics


# ---------------------------------------------------------------------------
# Target dispatch and discovery
# ---------------------------------------------------------------------------

def check_object(obj, label: str = "") -> List[Diagnostic]:
    """Dispatch one model object to its checker; [] for unknown types."""
    from repro.array.macro import MacroDesign
    from repro.array.organization import ArrayOrganization
    from repro.checkpoint import RunBudget
    from repro.faults.plan import FaultPlan
    from repro.faults.repair import RepairModel
    from repro.refresh.controller import RefreshPolicy
    from repro.spice.netlist import Circuit
    from repro.spice.subckt import Scope
    from repro.tech.node import TechnologyNode

    if isinstance(obj, FaultPlan):
        return check_fault_plan(obj)
    if isinstance(obj, RepairModel):
        return check_repair_model(obj)
    if isinstance(obj, RunBudget):
        return check_run_budget(obj)
    if isinstance(obj, Circuit):
        return check_circuit(obj)
    if isinstance(obj, Scope):
        return check_scope(obj)
    if isinstance(obj, MacroDesign):
        return check_macro(obj)
    if isinstance(obj, ArrayOrganization):
        return check_organization(obj)
    if isinstance(obj, RefreshPolicy):
        return check_refresh_policy(obj)
    if isinstance(obj, TechnologyNode):
        return check_tech_node(obj)
    return []


_CHECK_HOOK = "repro_check_targets"


def check_python_file(path: "str | pathlib.Path") -> List[Diagnostic]:
    """Import a Python file and check every model object it exposes.

    Discovers module-level :class:`Circuit` / organization / macro /
    refresh-policy / tech-node instances, plus everything returned by an
    optional module-level ``repro_check_targets()`` hook.  A file that
    fails to import is itself a finding (``M211``), not a crash.
    """
    path = pathlib.Path(path)
    module_name = f"_repro_check_{path.stem}_{abs(hash(str(path))) % 10**8}"
    try:
        spec = importlib.util.spec_from_file_location(module_name, path)
        if spec is None or spec.loader is None:
            raise ImportError(f"cannot build an import spec for {path}")
        module = importlib.util.module_from_spec(spec)
        sys.modules[module_name] = module
        try:
            spec.loader.exec_module(module)
        finally:
            sys.modules.pop(module_name, None)
    except BaseException as exc:  # noqa - a check target may raise anything
        return [_diag(
            "M211", Severity.ERROR,
            f"{path}: failed to load: {type(exc).__name__}: {exc}",
            str(path), hint="the file must import cleanly to be checked")]

    diagnostics: List[Diagnostic] = []
    targets: List[Any] = [
        value for name, value in sorted(vars(module).items())
        if not name.startswith("_")
    ]
    hook = getattr(module, _CHECK_HOOK, None)
    if callable(hook):
        try:
            targets.extend(hook())
        except Exception as exc:
            diagnostics.append(_diag(
                "M211", Severity.ERROR,
                f"{path}: {_CHECK_HOOK}() raised "
                f"{type(exc).__name__}: {exc}", str(path)))
    for target in targets:
        diagnostics.extend(check_object(target))
    return diagnostics


def default_targets() -> List[Tuple[str, Any]]:
    """The library's own canonical models, for self-hosted checking."""
    from repro.core.fastdram import FastDramDesign
    from repro.refresh.controller import LocalizedRefresh, MonoblockRefresh
    from repro.sramref.model import SramBaselineDesign
    from repro.tech.node import TechnologyNode
    from repro.units import kb

    targets: List[Tuple[str, Any]] = [
        ("tech:logic", TechnologyNode.logic_90nm()),
        ("tech:dram", TechnologyNode.dram_90nm()),
    ]
    for technology in ("dram", "scratchpad"):
        macro = FastDramDesign(technology=technology).build(128 * kb)
        targets.append((f"macro:fastdram-{technology}", macro))
    targets.append(("macro:sram-baseline",
                    SramBaselineDesign().build(128 * kb)))
    period = int(1e-3 * 500e6)  # noqa: L101 - 1 ms retention at 500 MHz
    for cls in (MonoblockRefresh, LocalizedRefresh):
        targets.append((f"refresh:{cls.__name__}",
                        cls(n_blocks=128, rows_per_block=32,
                            refresh_period_cycles=period)))
    from repro.array.localblock import build_localblock_read_circuit
    from repro.cells.dram1t1c import Dram1t1cCell
    cell = Dram1t1cCell.scratchpad()
    for stored in (0, 1):
        targets.append((f"circuit:localblock-read-{stored}",
                        build_localblock_read_circuit(cell,
                                                      stored_value=stored)))
    targets.append(("circuit:localblock-refresh",
                    build_localblock_read_circuit(cell, refresh_only=True)))
    return targets


def check_targets(paths: Iterable["str | pathlib.Path"] = (),
                  include_defaults: bool = True) -> List[Diagnostic]:
    """Check the builtin registry plus any Python files/directories."""
    from repro.analysis.lint import iter_python_files

    diagnostics: List[Diagnostic] = []
    if include_defaults:
        for _label, target in default_targets():
            diagnostics.extend(check_object(target))
    for path in iter_python_files(paths):
        diagnostics.extend(check_python_file(path))
    # The same model often reaches the checker through several routes
    # (builtin registry, module globals, check hooks); report each
    # structural defect once.
    seen, unique = set(), []
    for diagnostic in diagnostics:
        key = diagnostic.fingerprint()
        if key not in seen:
            seen.add(key)
            unique.append(diagnostic)
    return unique
