"""Determinism & parallel-safety audit (``repro audit``, rules D3xx).

The third analyzer family, beside ``repro lint`` (style, L1xx) and
``repro check`` (model structure, M2xx).  It proves — statically, at
lint time — the runtime contracts the executor and checkpoint layers
promise: seeded Monte-Carlo tails, serial↔parallel bit-identity, and
fingerprint-guarded resume.

The pass builds the interprocedural call graph of every analyzed file
(:mod:`repro.analysis.callgraph`), computes each function's *closure
effect* over the :class:`repro.analysis.effects.Effect` lattice by a
worklist fixpoint (intrinsic effects ∪ callees' closures ∪ inline
children's closures), then reports:

======  ========  =====================================================
rule    severity  finding
======  ========  =====================================================
D300    error     file cannot be parsed, so the audit cannot see it
D301    error     unseeded / module-global RNG reachable from the
                  seeded pipelines (``montecarlo``, ``designspace``,
                  ``optimizer``) or from worker-submitted functions
D302    error     ambient process state (wall clock, ``os.environ``,
                  pid, hostname) flowing into a config fingerprint,
                  checkpoint payload, or run-report field
D303    error     mutation of process-global state inside
                  worker-executed code (fork/spawn loses or races it)
D304    warning   iteration over a ``set`` feeding serialized output,
                  checkpoint writes, or ordered merges with no sort key
D305    info      float accumulation whose reduction order follows
                  executor completion order, not submission order
D306    error     an ``@effects`` annotation contradicts the computed
                  closure effect (annotations are verified, not
                  trusted)
D307    error     ``except Exception`` / ``except BaseException`` /
                  bare ``except`` inside worker or supervision code
                  that swallows — no re-raise, no structured failure
                  recorded — turning real faults into silent sample
                  loss
======  ========  =====================================================

``dict`` iteration is deliberately *not* flagged by D304: insertion
order is guaranteed on every supported interpreter, so only ``set``
(hash-ordered, ``PYTHONHASHSEED``-dependent for strings) iteration is a
reproducibility hazard.

Worker-executed code is over-approximated: inside any function that
calls ``run_parallel_sweep`` or ``<executor>.submit``, every in-graph
function referenced without being called (work-item callables,
``functools.partial`` targets) and every inline lambda is treated as a
worker entry point.  D302 taint tracking is intra-function and
flow-sensitive in source order.  Suppression uses the same ``# noqa``
comments and fingerprint baselines as the other analyzers.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (MODULE_BODY, CallGraph, CallSite,
                                      FunctionNode, ModuleInfo,
                                      build_callgraph, dotted_name)
from repro.analysis.diagnostics import Diagnostic, Severity, register_rules
from repro.analysis.effects import Effect
from repro.analysis.lint import _apply_noqa, iter_python_files

__all__ = ["AUDIT_RULES", "audit_graph", "audit_paths"]

AUDIT_RULES = register_rules("audit", {
    "D300": "file cannot be parsed for the determinism audit",
    "D301": ("unseeded or module-global RNG reachable from seeded "
             "pipelines or parallel workers"),
    "D302": ("ambient process state flows into a fingerprint, "
             "checkpoint payload, or run report"),
    "D303": "process-global state mutated in worker-executed code",
    "D304": "unordered set iteration feeds serialized or merged output",
    "D305": "float accumulation order depends on executor scheduling",
    "D306": "effect annotation contradicts the computed effects",
    "D307": ("broad exception swallowed in worker/supervision code "
             "without re-raise or structured failure record"),
})

_SEVERITY = {
    "D300": Severity.ERROR,
    "D301": Severity.ERROR,
    "D302": Severity.ERROR,
    "D303": Severity.ERROR,
    "D304": Severity.WARNING,
    "D305": Severity.INFO,
    "D306": Severity.ERROR,
    "D307": Severity.ERROR,
}

#: Module basenames whose whole call closure must stay seeded (D301).
_SEEDED_MODULES = ("montecarlo", "designspace", "optimizer")

#: Module basenames whose functions are supervision/worker machinery:
#: a swallowed broad exception there loses samples silently (D307).
_SUPERVISED_MODULES = ("parallel", "supervise", "checkpoint", "chaos")

#: Handler types D307 considers "broad" (catch-everything).
_BROAD_EXCEPTIONS = ("Exception", "BaseException")

#: Call names (last segment) that record a failure in a structured way
#: — a broad handler that reaches one of these is not a swallow.
_FAILURE_RECORDERS = {"event", "emit", "warning", "error", "exception",
                      "critical", "fail", "record", "append", "put"}

#: Call names (last segment) that hand callables to worker processes.
_SUBMIT_NAMES = ("run_parallel_sweep", "submit")

# -- known-impure call tables (matched on alias-expanded dotted names) --------

#: Constructors that are unseeded only when called with no arguments.
_SEEDABLE_CONSTRUCTORS = {
    "numpy.random.default_rng", "numpy.random.SeedSequence",
    "numpy.random.RandomState", "random.Random",
}

#: Always-unseeded entropy sources.
_OS_ENTROPY = {
    "os.urandom", "uuid.uuid4", "secrets.token_bytes",
    "secrets.token_hex", "secrets.randbelow", "secrets.choice",
}

#: ``numpy.random.<fn>`` names that use the module-global stream.
_NP_GLOBAL_RNG = {
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "normal", "uniform", "standard_normal", "choice", "shuffle",
    "permutation", "exponential", "poisson", "binomial", "lognormal",
}

#: stdlib ``random.<fn>`` names that use the module-global stream.
_STDLIB_GLOBAL_RNG = {
    "seed", "random", "randint", "randrange", "uniform", "gauss",
    "normalvariate", "lognormvariate", "expovariate", "triangular",
    "betavariate", "choice", "choices", "sample", "shuffle",
    "getrandbits",
}

#: Ambient process-state reads (D302 sources; AMBIENT intrinsic effect).
_AMBIENT_CALLS = {
    "time.time": "wall-clock time.time()",
    "time.time_ns": "wall-clock time.time_ns()",
    "time.monotonic": "process clock time.monotonic()",
    "time.monotonic_ns": "process clock time.monotonic_ns()",
    "time.perf_counter": "process clock time.perf_counter()",
    "time.perf_counter_ns": "process clock time.perf_counter_ns()",
    "time.ctime": "wall-clock time.ctime()",
    "datetime.datetime.now": "wall-clock datetime.now()",
    "datetime.datetime.utcnow": "wall-clock datetime.utcnow()",
    "datetime.datetime.today": "wall-clock datetime.today()",
    "datetime.date.today": "wall-clock date.today()",
    "os.getpid": "process id os.getpid()",
    "os.getppid": "process id os.getppid()",
    "os.getenv": "environment os.getenv()",
    "os.uname": "host identity os.uname()",
    "os.getcwd": "working directory os.getcwd()",
    "socket.gethostname": "host identity socket.gethostname()",
    "platform.node": "host identity platform.node()",
    "uuid.uuid1": "host+clock uuid.uuid1()",
}

#: Method names whose call mutates the receiver in place (D303).
_MUTATORS = {
    "append", "extend", "add", "update", "insert", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "sort", "reverse", "reset",
}

#: Call names (last segment) that persist or fingerprint data (D302 sinks).
_TAINT_SINKS = {"config_fingerprint", "build_run_report",
                "write_run_report"}

#: Call names in a loop body that make iteration order observable (D304).
_ORDER_SINKS = {"append", "extend", "appendleft", "write", "writerow",
                "emit", "dump", "dumps", "save", "put", "send"}

#: Wrappers that preserve the order of their iterable argument.
_ORDER_PRESERVING = ("enumerate", "list", "tuple", "reversed", "iter")


@dataclasses.dataclass
class _Evidence:
    """One intrinsic-effect observation inside a function body."""

    effect: Effect
    lineno: int
    description: str


@dataclasses.dataclass
class _Facts:
    """Per-function intrinsic effects plus purely local findings."""

    effects: Effect = Effect.NONE
    evidence: List[_Evidence] = dataclasses.field(default_factory=list)
    local: List[Diagnostic] = dataclasses.field(default_factory=list)
    _seen: Set[Tuple[Effect, int]] = dataclasses.field(default_factory=set)

    def add(self, effect: Effect, lineno: int, description: str) -> None:
        if (effect, lineno) in self._seen:
            return
        self._seen.add((effect, lineno))
        self.effects |= effect
        self.evidence.append(_Evidence(effect, lineno, description))


def _diag(rule: str, message: str, path: str, line: Optional[int],
          hint: Optional[str] = None) -> Diagnostic:
    return Diagnostic(rule=rule, severity=_SEVERITY[rule], message=message,
                      path=path, line=line, hint=hint)


# -- call-site classification --------------------------------------------------


def _rng_call_evidence(site: CallSite) -> Optional[str]:
    """Unseeded-RNG description for one call site, if it is one."""
    name = site.expanded
    last = name.rsplit(".", 1)[-1]
    if name in _SEEDABLE_CONSTRUCTORS:
        if not site.node.args and not site.node.keywords:
            return f"{site.raw}() called without a seed"
        return None
    if name in _OS_ENTROPY:
        return f"{site.raw}() draws OS entropy"
    if name.startswith("numpy.random.") and last in _NP_GLOBAL_RNG:
        return f"module-global numpy RNG {site.raw}()"
    if (name.startswith("random.") and name.count(".") == 1
            and last in _STDLIB_GLOBAL_RNG):
        return f"module-global stdlib RNG {site.raw}()"
    return None


def _ambient_call_evidence(site: CallSite) -> Optional[str]:
    """Ambient-state description for one call site, if it is one."""
    name = site.expanded
    if name in _AMBIENT_CALLS:
        return _AMBIENT_CALLS[name]
    if name.startswith("os.environ."):
        return f"environment read {site.raw}()"
    return None


# -- own-body traversal (never descends into nested defs/lambdas) -------------


def _iter_own(node: ast.AST) -> Iterable[ast.AST]:
    """Every node of a function's own body, excluding nested functions."""
    if isinstance(node, ast.Lambda):
        stack: List[ast.AST] = [node.body]
    else:
        stack = list(getattr(node, "body", []))
        for extra in ("orelse", "finalbody", "handlers"):
            stack.extend(getattr(node, extra, []))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _own_statements(body: Sequence[ast.stmt]) -> Iterable[ast.stmt]:
    """Statements of a block in source order, recursing into compound
    statements but never into nested function definitions."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for field in ("body", "orelse", "finalbody"):
            yield from _own_statements(getattr(stmt, field, []))
        for handler in getattr(stmt, "handlers", []):
            yield from _own_statements(handler.body)


def _calls_in(node: ast.AST) -> Iterable[ast.Call]:
    """Call expressions inside one statement's own expressions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))


# -- intrinsic-effect scan -----------------------------------------------------


def _class_attribute_target(target: ast.AST, info: ModuleInfo,
                            fn: FunctionNode) -> Optional[str]:
    """Name of the class whose attribute ``target`` stores into, if any."""
    if not isinstance(target, ast.Attribute):
        return None
    root = target.value
    if isinstance(root, ast.Name):
        if root.id == "cls":
            return fn.class_name or "cls"
        if root.id in info.classes and root.id not in fn.local_bindings:
            return root.id
    return None


def _global_root(target: ast.AST, info: ModuleInfo,
                 fn: FunctionNode) -> Optional[str]:
    """Module-global name a subscript/attribute store mutates, if any."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if (isinstance(node, ast.Name) and node.id in info.global_names
            and node.id not in fn.local_bindings
            and node.id not in info.classes
            and node.id not in ("self", "cls")):
        return node.id
    return None


def _scan_function(graph: CallGraph, info: ModuleInfo,
                   fn: FunctionNode) -> _Facts:
    """Intrinsic effects and local findings of one function body."""
    facts = _Facts()
    for site in fn.calls:
        head = site.raw.split(".", 1)[0]
        if head in fn.local_bindings and head not in ("self", "cls"):
            continue  # a local shadows the module/alias name
        rng = _rng_call_evidence(site)
        if rng is not None:
            facts.add(Effect.UNSEEDED_RNG, site.lineno, rng)
        ambient = _ambient_call_evidence(site)
        if ambient is not None:
            facts.add(Effect.AMBIENT, site.lineno, ambient)
        last = site.raw.rsplit(".", 1)[-1]
        if ("." in site.raw and last in _MUTATORS
                and site.resolved is None):
            root = site.raw.split(".", 1)[0]
            if (root in info.global_names and root not in fn.local_bindings
                    and root not in info.classes
                    and root not in ("self", "cls")):
                facts.add(Effect.GLOBAL_WRITE, site.lineno,
                          f"in-place mutation of module global "
                          f"'{root}' via .{last}()")
    if fn.node is None:  # module body: import-time code, definitionally
        return facts     # parent-process-only, so no body scans apply
    declared_globals: Set[str] = set()
    for node in _iter_own(fn.node):
        if isinstance(node, ast.Global):
            declared_globals.update(node.names)
        elif isinstance(node, ast.Attribute):
            raw = dotted_name(node)
            if raw is not None:
                expanded = CallGraph._expand_for(info, raw)
                if expanded == "os.environ":
                    facts.add(Effect.AMBIENT, node.lineno,
                              "environment read os.environ")
    for node in _iter_own(fn.node):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if (isinstance(target, ast.Name)
                    and target.id in declared_globals):
                facts.add(Effect.GLOBAL_WRITE, node.lineno,
                          f"rebinds module global '{target.id}' "
                          f"(global statement)")
            cls_name = _class_attribute_target(target, info, fn)
            if cls_name is not None:
                attr = target.attr if isinstance(target, ast.Attribute) else "?"
                facts.add(Effect.GLOBAL_WRITE, node.lineno,
                          f"assigns class attribute {cls_name}.{attr}")
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                root = _global_root(target, info, fn)
                if root is not None:
                    facts.add(Effect.GLOBAL_WRITE, node.lineno,
                              f"stores into module global '{root}'")
    body = ([fn.node.body] if isinstance(fn.node, ast.Lambda)
            else list(fn.node.body))
    if not isinstance(fn.node, ast.Lambda):
        _LocalScan(info, fn, facts).run(body)
    return facts


# -- flow-sensitive local scan: D302 taint, D304 set order, D305 reduction ----


class _LocalScan:
    """Source-order walk of one function body tracking tainted names
    (ambient data, D302) and set-typed names (order hazards, D304/305)."""

    def __init__(self, info: ModuleInfo, fn: FunctionNode,
                 facts: _Facts) -> None:
        self.info = info
        self.fn = fn
        self.facts = facts
        self.tainted: Dict[str, str] = {}  # name -> source description
        self.set_names: Set[str] = set()

    # taint sources / propagation ---------------------------------------------

    def _call_names(self, call: ast.Call) -> Tuple[str, str]:
        raw = dotted_name(call.func) or ""
        return raw, CallGraph._expand_for(self.info, raw) if raw else ""

    def _source_of(self, node: ast.AST) -> Optional[str]:
        """Ambient/entropy source description for one expression node."""
        if isinstance(node, ast.Call):
            raw, expanded = self._call_names(node)
            if not raw:
                return None
            head = raw.split(".", 1)[0]
            if head in self.fn.local_bindings and head not in ("self", "cls"):
                return None
            if expanded in _AMBIENT_CALLS:
                return _AMBIENT_CALLS[expanded]
            if expanded.startswith("os.environ."):
                return f"environment read {raw}()"
            if expanded in _OS_ENTROPY:
                return f"OS entropy {raw}()"
        if isinstance(node, ast.Attribute):
            raw = dotted_name(node)
            if raw and CallGraph._expand_for(self.info, raw) == "os.environ":
                return "environment read os.environ"
        return None

    def _expr_taint(self, node: Optional[ast.AST]) -> Optional[str]:
        """Description of the ambient source ``node`` carries, if any."""
        if node is None or isinstance(node, (ast.Lambda, ast.Constant)):
            return None
        direct = self._source_of(node)
        if direct is not None:
            return direct
        if isinstance(node, ast.Name):
            return self.tainted.get(node.id)
        if isinstance(node, ast.Attribute):
            raw = dotted_name(node)
            if raw is not None:
                return self.tainted.get(raw)
            return self._expr_taint(node.value)
        for child in ast.iter_child_nodes(node):
            found = self._expr_taint(child)
            if found is not None:
                return found
        return None

    def _bind(self, target: ast.AST, source: Optional[str]) -> None:
        if isinstance(target, ast.Name):
            if source is not None:
                self.tainted[target.id] = source
            else:
                self.tainted.pop(target.id, None)
            self.set_names.discard(target.id)
        elif isinstance(target, ast.Attribute):
            raw = dotted_name(target)
            if raw is not None:
                if source is not None:
                    self.tainted[raw] = source
                else:
                    self.tainted.pop(raw, None)
        elif isinstance(target, ast.Subscript):
            # A store through a subscript taints the container (weak
            # update: ``payload["t"] = time.time()``).
            root = target.value
            if source is not None and isinstance(root, ast.Name):
                self.tainted[root.id] = source
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, source)

    # set-typed expression tracking -------------------------------------------

    def _strip_wrappers(self, node: ast.AST) -> ast.AST:
        while (isinstance(node, ast.Call)
               and isinstance(node.func, ast.Name)
               and node.func.id in _ORDER_PRESERVING and node.args):
            node = node.args[0]
        return node

    def _is_sorted(self, node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sorted")

    def _is_set_expr(self, node: ast.AST) -> bool:
        node = self._strip_wrappers(node)
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return (self._is_set_expr(node.left)
                    or self._is_set_expr(node.right))
        if isinstance(node, ast.Call):
            raw = dotted_name(node.func) or ""
            if raw in ("set", "frozenset"):
                return True
            head, _, method = raw.rpartition(".")
            if (method in ("union", "intersection", "difference",
                           "symmetric_difference", "copy")
                    and head in self.set_names):
                return True
        return False

    def _set_desc(self, node: ast.AST) -> str:
        node = self._strip_wrappers(node)
        raw = dotted_name(node) if not isinstance(node, ast.Call) else None
        return f"set '{raw}'" if raw else "a set expression"

    # sinks --------------------------------------------------------------------

    def _check_sinks(self, stmt: ast.stmt) -> None:
        for call in _calls_in(stmt):
            raw = dotted_name(call.func)
            if raw is None:
                continue
            last = raw.rsplit(".", 1)[-1]
            is_sink = last in _TAINT_SINKS or ("." in raw and last == "save")
            if not is_sink:
                continue
            for value in [*call.args, *[k.value for k in call.keywords]]:
                source = self._expr_taint(value)
                if source is not None:
                    self.facts.local.append(_diag(
                        "D302",
                        f"{source} flows into {raw}() in "
                        f"{self.fn.display}; fingerprints, checkpoints "
                        f"and run reports must be derived from explicit "
                        f"config only",
                        self.fn.path, call.lineno,
                        hint=("drop the ambient value or move it to the "
                              "report's non-fingerprinted metadata")))
                    break

    def _loop_has_order_sink(self, loop: ast.For) -> bool:
        for node in self._loop_own(loop):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Subscript) for t in node.targets):
                return True
            if isinstance(node, ast.Call):
                raw = dotted_name(node.func)
                if raw is not None and "." in raw:
                    if raw.rsplit(".", 1)[-1] in _ORDER_SINKS:
                        return True
        return False

    @staticmethod
    def _loop_own(loop: ast.For) -> Iterable[ast.AST]:
        stack: List[ast.AST] = list(loop.body)
        while stack:
            current = stack.pop()
            yield current
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(current))

    # rule bodies --------------------------------------------------------------

    def _check_set_iteration(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.For) and not self._is_sorted(stmt.iter):
            if self._is_set_expr(stmt.iter):
                if self._loop_has_order_sink(stmt):
                    self.facts.local.append(_diag(
                        "D304",
                        f"iteration over {self._set_desc(stmt.iter)} in "
                        f"{self.fn.display} feeds ordered output; set "
                        f"order is hash-dependent",
                        self.fn.path, stmt.lineno,
                        hint="iterate sorted(...) with an explicit key"))
                self._bind_loop_target(stmt)
        for expr in self._own_exprs(stmt):
            if isinstance(expr, (ast.ListComp, ast.DictComp)):
                gen = expr.generators[0]
                if (not self._is_sorted(gen.iter)
                        and self._is_set_expr(gen.iter)):
                    self.facts.local.append(_diag(
                        "D304",
                        f"comprehension over {self._set_desc(gen.iter)} "
                        f"in {self.fn.display} builds an ordered "
                        f"container; set order is hash-dependent",
                        self.fn.path, expr.lineno,
                        hint="iterate sorted(...) with an explicit key"))

    def _bind_loop_target(self, stmt: ast.For) -> None:
        # ``for x in some_set`` makes ``x`` a plain element, not a set.
        for child in ast.walk(stmt.target):
            if isinstance(child, ast.Name):
                self.set_names.discard(child.id)
                self.tainted.pop(child.id, None)

    def _check_reduction_order(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.For):
            iter_node = self._strip_wrappers(stmt.iter)
            unordered = self._is_unordered_iter(iter_node)
            if unordered is not None:
                for node in self._loop_own(stmt):
                    if (isinstance(node, ast.AugAssign)
                            and isinstance(node.op, ast.Add)):
                        self.facts.local.append(_diag(
                            "D305",
                            f"accumulation in {self.fn.display} follows "
                            f"{unordered}; float reduction order changes "
                            f"the low bits run to run",
                            self.fn.path, node.lineno,
                            hint=("accumulate in submission order, or "
                                  "math.fsum over a sorted sequence")))
        for expr in self._own_exprs(stmt):
            if (isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Name)
                    and expr.func.id == "sum" and expr.args):
                inner = expr.args[0]
                if isinstance(inner, (ast.GeneratorExp, ast.ListComp)):
                    gen = inner.generators[0].iter
                    unordered = self._is_unordered_iter(
                        self._strip_wrappers(gen))
                    if unordered is not None:
                        self.facts.local.append(_diag(
                            "D305",
                            f"sum() in {self.fn.display} reduces over "
                            f"{unordered}; float reduction order changes "
                            f"the low bits run to run",
                            self.fn.path, expr.lineno,
                            hint=("accumulate in submission order, or "
                                  "math.fsum over a sorted sequence")))

    def _is_unordered_iter(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Call):
            raw = dotted_name(node.func) or ""
            if raw.rsplit(".", 1)[-1] == "as_completed":
                return "as_completed() completion order"
        if self._is_set_expr(node) and not self._is_sorted(node):
            return f"iteration order of {self._set_desc(node)}"
        return None

    @staticmethod
    def _own_exprs(stmt: ast.stmt) -> Iterable[ast.AST]:
        stack: List[ast.AST] = list(ast.iter_child_nodes(stmt))
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda)) or isinstance(
                                        current, ast.stmt):
                continue
            yield current
            stack.extend(ast.iter_child_nodes(current))

    # driver -------------------------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> None:
        for stmt in _own_statements(body):
            self._check_sinks(stmt)
            self._check_set_iteration(stmt)
            self._check_reduction_order(stmt)
            if isinstance(stmt, ast.Assign):
                source = self._expr_taint(stmt.value)
                is_set = self._is_set_expr(stmt.value)
                for target in stmt.targets:
                    self._bind(target, source)
                    if is_set and isinstance(target, ast.Name):
                        self.set_names.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                source = self._expr_taint(stmt.value)
                self._bind(stmt.target, source)
                if (self._is_set_expr(stmt.value)
                        and isinstance(stmt.target, ast.Name)):
                    self.set_names.add(stmt.target.id)
            elif isinstance(stmt, ast.AugAssign):
                source = (self._expr_taint(stmt.value)
                          or self._expr_taint(stmt.target))
                if source is not None:
                    self._bind(stmt.target, source)
            elif isinstance(stmt, ast.For):
                source = self._expr_taint(stmt.iter)
                if source is not None:
                    self._bind(stmt.target, source)
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        self._bind(item.optional_vars,
                                   self._expr_taint(item.context_expr))


# -- D307: broad-exception swallows in worker/supervision code ----------------


def _broad_handler(handler: ast.ExceptHandler) -> Optional[str]:
    """Description of the handler if it catches everything, else None."""
    node = handler.type
    if node is None:
        return "bare except:"
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for item in candidates:
        name = dotted_name(item)
        if (name is not None
                and name.rsplit(".", 1)[-1] in _BROAD_EXCEPTIONS):
            return f"except {name}"
    return None


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body neither re-raises nor records the
    failure through a structured channel (event/log/budget/queue)."""
    for node in _iter_own(handler):
        if isinstance(node, ast.Raise):
            return False
        if isinstance(node, ast.Call):
            raw = dotted_name(node.func)
            if (raw is not None
                    and raw.rsplit(".", 1)[-1] in _FAILURE_RECORDERS):
                return False
    return True


# -- graph-wide analysis -------------------------------------------------------


def _worker_roots(graph: CallGraph) -> Set[str]:
    """Functions that escape into worker processes (over-approximated)."""
    roots: Set[str] = set()
    for fn in graph.functions.values():
        submits = any(
            site.raw.rsplit(".", 1)[-1] in _SUBMIT_NAMES
            for site in fn.calls)
        if not submits:
            continue
        roots.update(fn.references)
        for child in fn.children:
            if graph.functions[child].name.startswith("<lambda"):
                roots.add(child)
    return roots


def _seeded_roots(graph: CallGraph) -> List[str]:
    return sorted(
        qualname for qualname, fn in graph.functions.items()
        if fn.module.rsplit(".", 1)[-1].split("@")[0] in _SEEDED_MODULES)


def _closure_effects(graph: CallGraph,
                     facts: Dict[str, _Facts]) -> Dict[str, Effect]:
    """Worklist fixpoint of closure effects over the call graph."""
    closure = {q: facts[q].effects for q in graph.functions}
    changed = True
    while changed:
        changed = False
        for qualname, fn in graph.functions.items():
            combined = facts[qualname].effects
            for child in fn.children:
                combined |= closure[child]
            for callee in graph.callees(qualname):
                target = graph.functions[callee]
                if target.annotation == "observational":
                    continue  # telemetry: effects never reach results
                if target.annotation == "mutates_global_state":
                    combined |= Effect.GLOBAL_WRITE
                combined |= closure[callee]
            if combined != closure[qualname]:
                closure[qualname] = combined
                changed = True
    return closure


def _chain_text(graph: CallGraph, parent: Dict[str, Optional[str]],
                qualname: str) -> str:
    names = [graph.functions[q].display if q != "..." else "..."
             for q in graph.chain(parent, qualname)]
    return " -> ".join(names)


def _witness(graph: CallGraph, facts: Dict[str, _Facts], start: str,
             bad: Effect) -> Optional[Tuple[FunctionNode, _Evidence]]:
    """Nearest function (BFS) whose intrinsic evidence matches ``bad``."""
    seen = {start}
    queue = [start]
    while queue:
        current = queue.pop(0)
        for ev in facts[current].evidence:
            if ev.effect & bad:
                return graph.functions[current], ev
        fn = graph.functions[current]
        neighbours = list(fn.children)
        for callee in graph.callees(current):
            if graph.functions[callee].annotation != "observational":
                neighbours.append(callee)
        for nxt in neighbours:
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return None


_ANNOTATION_FORBIDS: Dict[str, Effect] = {
    "pure": (Effect.UNSEEDED_RNG | Effect.AMBIENT | Effect.GLOBAL_WRITE),
    "deterministic_under_seed": Effect.UNSEEDED_RNG | Effect.AMBIENT,
    "observational": Effect.UNSEEDED_RNG,
}


def audit_graph(graph: CallGraph) -> List[Diagnostic]:
    """Run every D3xx rule over a resolved call graph."""
    diagnostics: List[Diagnostic] = []
    for path, lineno, message in graph.parse_failures:
        diagnostics.append(_diag("D300", message, path, lineno))

    facts: Dict[str, _Facts] = {}
    for qualname, fn in graph.functions.items():
        facts[qualname] = _scan_function(graph, graph.modules[fn.module], fn)
        diagnostics.extend(facts[qualname].local)

    worker_reach = graph.reachable_from(sorted(_worker_roots(graph)))
    seeded_reach = graph.reachable_from(_seeded_roots(graph))

    # D301: unseeded RNG in the seeded pipelines or worker closures.
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        in_seeded = qualname in seeded_reach
        in_worker = qualname in worker_reach
        if not (in_seeded or in_worker):
            continue
        for ev in facts[qualname].evidence:
            if not (ev.effect & Effect.UNSEEDED_RNG):
                continue
            if in_seeded:
                base = fn.module.rsplit(".", 1)[-1].split("@")[0]
                if base in _SEEDED_MODULES:
                    context = f"the seeded {base} pipeline"
                else:
                    context = ("the seeded pipeline via "
                               + _chain_text(graph, seeded_reach, qualname))
            else:
                context = ("worker-executed code via "
                           + _chain_text(graph, worker_reach, qualname))
            diagnostics.append(_diag(
                "D301",
                f"{ev.description} in {fn.display}, reachable from "
                f"{context}; every draw must come from a caller-supplied "
                f"seed or SeedSequence child",
                fn.path, ev.lineno,
                hint=("thread an np.random.Generator / SeedSequence "
                      "parameter down from the pipeline entry point")))

    # D303: global mutation in worker-executed code.
    for qualname in sorted(worker_reach):
        fn = graph.functions.get(qualname)
        if fn is None:
            continue
        if fn.annotation != "mutates_global_state":
            for ev in facts[qualname].evidence:
                if ev.effect & Effect.GLOBAL_WRITE:
                    diagnostics.append(_diag(
                        "D303",
                        f"{ev.description} in worker-executed "
                        f"{fn.display} (via "
                        f"{_chain_text(graph, worker_reach, qualname)}); "
                        f"fork/spawn loses or races the mutation",
                        fn.path, ev.lineno,
                        hint=("return the data to the parent through the "
                              "work item result instead")))
        for site in fn.calls:
            if site.resolved is None:
                continue
            target = graph.functions[site.resolved]
            if target.annotation == "mutates_global_state":
                diagnostics.append(_diag(
                    "D303",
                    f"worker-executed {fn.display} calls "
                    f"{target.display}, declared mutates_global_state; "
                    f"the mutation stays in the worker process",
                    fn.path, site.lineno,
                    hint=("snapshot in the worker and merge in the "
                          "parent, as the executor's telemetry "
                          "forwarding does")))

    # D307: broad exception swallows in worker/supervision code.  A
    # worker that eats an arbitrary exception without re-raising or
    # recording it converts a real fault into a silently lost sample —
    # the exact failure mode the supervision layer exists to prevent.
    supervised = {
        qualname for qualname, fn in graph.functions.items()
        if fn.module.rsplit(".", 1)[-1].split("@")[0]
        in _SUPERVISED_MODULES}
    for qualname in sorted(set(worker_reach) | supervised):
        fn = graph.functions.get(qualname)
        if fn is None or fn.node is None:
            continue
        for node in _iter_own(fn.node):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_handler(node)
            if broad is None or not _handler_swallows(node):
                continue
            where = ("supervision code"
                     if qualname in supervised else "worker-executed code")
            diagnostics.append(_diag(
                "D307",
                f"{broad} in {fn.display} ({where}) swallows the error: "
                f"no re-raise, no structured failure recorded — a fault "
                f"here becomes a silently lost sample",
                fn.path, node.lineno,
                hint=("re-raise, narrow the except, or record through "
                      "obs.event/log/clock.fail; append '# noqa: D307' "
                      "only where the swallow is the sanctioned design")))

    # D306: verify every annotation against the computed closure.
    closure = _closure_effects(graph, facts)
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        forbidden = _ANNOTATION_FORBIDS.get(fn.annotation or "")
        if forbidden is None:
            continue
        bad = closure[qualname] & forbidden
        if not bad:
            continue
        witness = _witness(graph, facts, qualname, bad)
        detail = ""
        if witness is not None:
            wfn, wev = witness
            where = ("" if wfn.qualname == qualname
                     else f" (via {wfn.display}, line {wev.lineno})")
            detail = f": {wev.description}{where}"
        diagnostics.append(_diag(
            "D306",
            f"{fn.display} is declared {fn.annotation} but its closure "
            f"has effects [{bad.describe()}]{detail}",
            fn.path, fn.lineno,
            hint=("fix the effect or weaken the annotation; "
                  "annotations are verified, never trusted")))

    # noqa suppression, then a stable order.
    by_path: Dict[str, List[str]] = {}
    for info in graph.modules.values():
        by_path[info.path] = info.source_lines
    kept: List[Diagnostic] = []
    seen: Set[Tuple[str, str, Optional[int], str]] = set()
    for diag in diagnostics:
        key = (diag.rule, diag.path, diag.line, diag.message)
        if key in seen:
            continue
        seen.add(key)
        lines = by_path.get(diag.path)
        if lines is not None and _apply_noqa([diag], lines) == []:
            continue
        kept.append(diag)
    kept.sort(key=lambda d: (d.path, d.line or 0, d.rule, d.message))
    return kept


def audit_paths(paths: Iterable["str | pathlib.Path"]) -> List[Diagnostic]:
    """Audit files and directories; the ``repro audit`` entry point."""
    return audit_graph(build_callgraph(iter_python_files(paths)))
