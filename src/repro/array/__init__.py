"""Hierarchical memory-array model — the paper's architecture.

The model follows paper Fig. 1 exactly:

* the matrix is divided into *local blocks* of ``cells_per_lbl`` rows by
  ``word_bits`` columns; each local word line (LWL) opens exactly one
  word;
* every local bitline (LBL) carries only ``cells_per_lbl`` cells and is
  sensed by a *local sense amplifier* that restores the cell in place
  (write-after-read at local level, paper Fig. 4) and drives a
  low-swing *global bitline* (GBL);
* global word lines (GWL) select the block, a GBL mux and global SA
  recover the data.

The same skeleton is instantiated with an SRAM 6T cell (the baseline
[10]) or the paper's 1T1C cells, which is what makes every figure a
controlled comparison.
"""

from repro.array.organization import ArrayOrganization
from repro.array.floorplan import Floorplan, FloorplanBreakdown
from repro.array.senseamp import SenseAmplifier
from repro.array.decoder import DecoderModel
from repro.array.timing import AccessTiming, TimingModel
from repro.array.energy import AccessEnergy, EnergyModel
from repro.array.static_power import StaticPowerModel, StaticPowerReport
from repro.array.scaling import scale_organization
from repro.array.banking import BankedMemory, compare_banking_options
from repro.array.margins import MarginPoint, ReadMarginAnalysis
from repro.array.macro import MacroDesign
from repro.array.localblock import (
    build_localblock_read_circuit,
    simulate_localblock_read,
    LocalBlockWaveforms,
)
from repro.array.globalbitline import (
    build_globalbitline_read_circuit,
    simulate_globalbitline_read,
    GlobalBitlineWaveforms,
)

__all__ = [
    "ArrayOrganization",
    "Floorplan",
    "FloorplanBreakdown",
    "SenseAmplifier",
    "DecoderModel",
    "AccessTiming",
    "TimingModel",
    "AccessEnergy",
    "EnergyModel",
    "StaticPowerModel",
    "StaticPowerReport",
    "scale_organization",
    "BankedMemory",
    "MarginPoint",
    "ReadMarginAnalysis",
    "compare_banking_options",
    "MacroDesign",
    "build_localblock_read_circuit",
    "simulate_localblock_read",
    "LocalBlockWaveforms",
    "build_globalbitline_read_circuit",
    "simulate_globalbitline_read",
    "GlobalBitlineWaveforms",
]
