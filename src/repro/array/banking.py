"""Multi-bank memory composition.

A single macro tops out where its global wires do; larger memories are
built from multiple banks with an address interleaver in front.  This
module composes :class:`~repro.array.macro.MacroDesign` banks into one
memory, pricing the extra bank-select fabric — which lets the library
answer "should a 2 Mb memory be one macro or four 512 kb banks?"
(a question the paper's single-macro extension leaves open).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict

from repro.array.macro import MacroDesign
from repro.errors import ConfigurationError
from repro.tech.wire import GLOBAL_LAYER, Wire
from repro.units import ms, ps


@dataclasses.dataclass(frozen=True)
class BankedMemory:
    """``n_banks`` identical macros behind an address interleaver.

    Only one bank activates per access (low-order interleaving); the
    shared fabric adds a bank decoder plus a data/address spine crossing
    the bank row.
    """

    bank: MacroDesign
    n_banks: int

    def __post_init__(self) -> None:
        if self.n_banks < 1:
            raise ConfigurationError("need at least one bank")
        if self.n_banks & (self.n_banks - 1):
            raise ConfigurationError("bank count must be a power of two")

    # -- capacity ----------------------------------------------------------

    @property
    def total_bits(self) -> int:
        return self.n_banks * self.bank.organization.total_bits

    # -- shared fabric ------------------------------------------------------

    def _spine(self) -> Wire:
        """The address/data spine crossing all banks side by side."""
        org = self.bank.organization
        width = self.n_banks * org.matrix_width
        return Wire(GLOBAL_LAYER, width)

    def fabric_delay(self) -> float:
        """Bank decode + spine propagation, seconds."""
        if self.n_banks == 1:
            return 0.0
        spine = self._spine()
        distributed = 0.38 * spine.resistance * spine.capacitance
        decode_levels = math.log2(self.n_banks)
        gate = 15 * ps * decode_levels  # ~1 gate per level at LP 90 nm
        return distributed + gate

    def fabric_energy(self) -> float:
        """Per-access energy of the shared fabric, joules.

        The spine carries the word plus address to the selected bank:
        on average half its length toggles.
        """
        if self.n_banks == 1:
            return 0.0
        org = self.bank.organization
        lines = org.word_bits + math.ceil(math.log2(self.total_bits))
        spine = self._spine()
        return 0.5 * lines * spine.capacitance * org.node.vdd ** 2 * 0.5

    # -- composed figures --------------------------------------------------------

    def access_time(self) -> float:
        return self.bank.access_time() + self.fabric_delay()

    def read_energy(self) -> float:
        return self.bank.read_energy().total + self.fabric_energy()

    def write_energy(self) -> float:
        return self.bank.write_energy().total + self.fabric_energy()

    def area(self) -> float:
        """Total area: banks plus a 5 % assembly overhead for the spine."""
        return self.n_banks * self.bank.area() * 1.05

    def static_power(self) -> float:
        """Static power scales with the bank count (every bank keeps its
        cells alive whether selected or not)."""
        return self.n_banks * self.bank.static_power().power

    def summary(self) -> Dict[str, float]:
        return {
            "total_bits": float(self.total_bits),
            "n_banks": float(self.n_banks),
            "access_time_s": self.access_time(),
            "read_energy_j": self.read_energy(),
            "write_energy_j": self.write_energy(),
            "area_m2": self.area(),
            "static_power_w": self.static_power(),
        }


def compare_banking_options(design, total_bits: int,
                            bank_counts=(1, 2, 4, 8),
                            retention_override: float | None = 1 * ms
                            ) -> Dict[int, BankedMemory]:
    """Build the same capacity as 1, 2, 4, ... banks.

    ``design`` is any factory with a ``build(total_bits, ...)`` method
    (:class:`~repro.core.fastdram.FastDramDesign` or the SRAM baseline).
    """
    if total_bits <= 0:
        raise ConfigurationError("total_bits must be positive")
    options = {}
    for count in bank_counts:
        if total_bits % count:
            continue
        try:
            bank = design.build(total_bits // count,
                                retention_override=retention_override)
        except TypeError:
            bank = design.build(total_bits // count)
        options[count] = BankedMemory(bank=bank, n_banks=count)
    if not options:
        raise ConfigurationError("no feasible banking option")
    return options
