"""Logical-effort decoder model.

Row decoding (predecode + global word line + local word line select) is
modelled with the method of logical effort: the delay of an N-stage path
with total path effort F is minimised at N* = log4 F, giving
``t = N * (F^(1/N) * tau_fo1 + p * tau_inv)``.  The energy is the
switched capacitance of the active decode path plus the address
predecode fabric.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigurationError
from repro.tech.node import Polarity, TechnologyNode, VtFlavor
from repro.tech.transistor import Mosfet
from repro.units import fF


@dataclasses.dataclass(frozen=True)
class DecoderModel:
    """Decoder of ``n_address_bits`` driving ``load_cap`` on the selected line.

    Parameters
    ----------
    node:
        Technology node.
    n_address_bits:
        Bits decoded by this stage of the hierarchy.
    load_cap:
        Capacitance of the selected output line (a GWL, an LWL, ...).
    activity_cap:
        Extra capacitance switched per decode regardless of which output
        fires (predecoder wires, clocking); defaults to a per-bit charge.
    """

    node: TechnologyNode
    n_address_bits: int
    load_cap: float
    activity_cap: float | None = None

    def __post_init__(self) -> None:
        if self.n_address_bits < 1:
            raise ConfigurationError("decoder needs at least one address bit")
        if self.load_cap <= 0:
            raise ConfigurationError("decoder load must be positive")

    # -- reference inverter ----------------------------------------------------

    def _unit_inverter(self) -> tuple[float, float]:
        """(input capacitance, switching resistance) of the unit inverter."""
        nmos = Mosfet(self.node, Polarity.NMOS, VtFlavor.SVT,
                      width=self.node.width_units(2.0))
        pmos = Mosfet(self.node, Polarity.PMOS, VtFlavor.SVT,
                      width=self.node.width_units(4.0))
        c_in = nmos.gate_capacitance() + pmos.gate_capacitance()
        r_eff = 0.5 * (nmos.on_resistance() + pmos.on_resistance())
        return c_in, r_eff

    @property
    def fo1_delay(self) -> float:
        """Fanout-of-1 inverter delay, the logical-effort tau, seconds."""
        c_in, r_eff = self._unit_inverter()
        return 0.69 * r_eff * c_in

    # -- path metrics ----------------------------------------------------------------

    def path_effort(self) -> float:
        """Total logical-effort path effort F = G * B * H."""
        c_in, _ = self._unit_inverter()
        electrical = self.load_cap / c_in
        # NAND-based decode: logical effort ~ (4/3) per 2-input stage;
        # branching: each address bit doubles the fanned tree.
        logical = (4.0 / 3.0) ** math.ceil(self.n_address_bits / 2)
        branching = 2.0 ** self.n_address_bits / 2.0 ** (self.n_address_bits / 2.0)
        return max(1.0, logical * branching * electrical)

    def stage_count(self) -> int:
        """Delay-optimal number of stages (>= 2)."""
        f = self.path_effort()
        return max(2, round(math.log(f, 4.0)))

    def delay(self) -> float:
        """Decode delay address-valid to output-line rising, seconds."""
        f = self.path_effort()
        n = self.stage_count()
        stage_effort = f ** (1.0 / n)
        parasitic = 1.0  # per-stage self-loading in tau units
        return n * (stage_effort + parasitic) * self.fo1_delay

    # -- energy -----------------------------------------------------------------------

    def energy(self, voltage: float | None = None) -> float:
        """Energy of one decode, joules.

        Switched capacitance: the staged drivers of the selected path
        (geometric series dominated by the last stage ~ load/2) plus the
        always-switching predecode fabric.
        """
        voltage = self.node.vdd if voltage is None else voltage
        c_in, _ = self._unit_inverter()
        driver_chain = self.load_cap * (1.0 / 2.0)  # sum of staged drivers
        predecode = self.activity_cap
        if predecode is None:
            predecode = self.n_address_bits * 12.0 * c_in + 2.0 * fF
        return (self.load_cap + driver_chain + predecode) * voltage ** 2
