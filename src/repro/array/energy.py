"""Per-access dynamic energy model (paper Fig. 7b and Fig. 8).

Energy is priced as switched capacitance per access, grouped into the
four categories of paper Fig. 8:

* ``decode``   — predecode fabric, address bus, GWL, block select; for
  writes also the data bus and write drivers (the paper folds the write
  datapath into its "decoder" bar, which is why the write decoder bar is
  1.6 pJ against 1.0 pJ for reads).
* ``cell``     — the (possibly overdriven) LWL plus charging the storage
  caps during restore/write.  This is where DRAM pays for the 1.7 V
  word line and the destructive-read restore.
* ``localblock`` — LBL swings, local sense amplifiers, write-after-read
  loop and block-internal control. ``LOCALBLOCK_OVERHEAD`` covers the
  precharge/timing circuits of the block that are not modelled
  individually (calibrated against Fig. 8's 1.1 pJ localblock bar).
* ``global_path`` — low-swing GBL, mux, global SA (read) or GBL write
  drive (write).
* ``io``       — output drivers / input latches.

Random data (half the bits carry the swinging level) is assumed
throughout, matching the paper's "random access pattern with as much
read as write accesses".
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.errors import ConfigurationError
from repro.tech.node import Polarity, VtFlavor
from repro.tech.transistor import Mosfet
from repro.tech.wire import INTERMEDIATE_LAYER, Wire
from repro.array.organization import ArrayOrganization
from repro.array.senseamp import SenseAmplifier
from repro.array.timing import GBL_SUPPLY, GBL_SWING
from repro.units import fF

DATA_ACTIVITY = 0.5
LOCALBLOCK_OVERHEAD = 1.9
# After predecoding, the address bus along the matrix is one-hot per
# group: a new access toggles ~2 lines per group regardless of the
# address width.
PREDECODE_TOGGLE_LINES = 6.0
SRAM_LBL_SWING = 0.2  # volts: low-power SRAMs limit the read BL swing
WRITE_CELL_FACTOR = 1.24  # full-rail write margin vs read restore (Fig. 8)
IO_LOAD_PER_BIT = 10 * fF


@dataclasses.dataclass(frozen=True)
class AccessEnergy:
    """Per-access energy breakdown, joules (paper Fig. 8 categories)."""

    decode: float
    cell: float
    localblock: float
    global_path: float
    io: float

    @property
    def total(self) -> float:
        return self.decode + self.cell + self.localblock + self.global_path + self.io

    def breakdown(self) -> Dict[str, float]:
        return dataclasses.asdict(self)

    def per_bit(self, word_bits: int) -> float:
        if word_bits <= 0:
            raise ConfigurationError("word width must be positive")
        return self.total / word_bits


@dataclasses.dataclass(frozen=True)
class EnergyModel:
    """Dynamic-energy estimator for one array organization."""

    organization: ArrayOrganization
    local_sa: SenseAmplifier
    global_sa: SenseAmplifier

    # -- shared ingredients ------------------------------------------------

    @property
    def _node(self):
        return self.organization.node

    def _unit_gate_cap(self) -> float:
        nmos = Mosfet(self._node, Polarity.NMOS, VtFlavor.SVT,
                      width=self._node.width_units(2.0))
        pmos = Mosfet(self._node, Polarity.PMOS, VtFlavor.SVT,
                      width=self._node.width_units(4.0))
        return nmos.gate_capacitance() + pmos.gate_capacitance()

    def _address_bits(self) -> int:
        import math
        return max(1, int(math.log2(self.organization.n_words)))

    # -- decode ------------------------------------------------------------------

    def decode_energy(self, write: bool = False) -> float:
        org = self.organization
        vdd = self._node.vdd
        c_unit = self._unit_gate_cap()
        bits = self._address_bits()
        # Predecode fabric: gates plus short wires per address bit.
        predecode = bits * (12.0 * c_unit + 2 * fF)
        # Predecoded one-hot lines run the matrix height to reach every
        # block row; only a handful toggle per access.
        address_bus = PREDECODE_TOGGLE_LINES * Wire(
            INTERMEDIATE_LAYER, org.matrix_height).capacitance
        # Selected GWL plus its staged drivers, and the block-select line.
        gwl = org.gwl_capacitance() * 1.5
        block_select = org.gwl_capacitance() * 0.5
        energy = (predecode + address_bus + gwl + block_select) * vdd ** 2
        if write:
            # Data bus to the selected block row + write drivers + WE line.
            data_bus = org.word_bits * Wire(
                INTERMEDIATE_LAYER, org.matrix_height).capacitance * DATA_ACTIVITY
            write_drivers = org.word_bits * 4.0 * c_unit
            we_line = org.gwl_capacitance() * 0.5
            energy += (data_bus + write_drivers + we_line) * vdd ** 2
        return energy

    # -- cell --------------------------------------------------------------------

    def cell_energy(self, write: bool = False) -> float:
        org = self.organization
        # LWL is driven to the cell's required WL level (1.7 V when
        # overdriven) — quadratic in the boosted voltage.
        lwl = org.lwl_capacitance() * org.cell.wordline_voltage ** 2
        if not org.cell.is_dynamic:
            return lwl
        # Destructive read: every stored '1' is recharged through the
        # local SA from the LBL rail; writes pay a full-rail margin.
        restore = (DATA_ACTIVITY * org.word_bits * org.cell.charge_sharing_cap
                   * org.cell.stored_high * 1.0)
        if write:
            restore *= WRITE_CELL_FACTOR
        return lwl + restore

    # -- localblock -----------------------------------------------------------------

    def localblock_energy(self, write: bool = False) -> float:
        org = self.organization
        vdd = self._node.vdd
        c_lbl = org.lbl_capacitance()
        if org.cell.is_dynamic:
            # Reading a '0' discharges and recharges the full LBL; a '1'
            # leaves it at the precharge level (paper Fig. 3).
            precharge = 1.0
            lbl = DATA_ACTIVITY * org.word_bits * c_lbl * precharge * precharge
            if write:
                # Writing drives every LBL to the data value.
                lbl = org.word_bits * c_lbl * precharge * precharge * 0.75
        else:
            # Differential pair with limited swing, both lines precharged
            # to vdd: reads swing one line by SRAM_LBL_SWING; writes
            # drive one line rail-to-rail.
            swing = vdd if write else SRAM_LBL_SWING
            lbl = org.word_bits * 2.0 * c_lbl * swing * vdd * 0.5
        sense = org.word_bits * self.local_sa.energy_per_operation()
        # Read-buffer / loop-cut gate loads (paper Fig. 4 devices).
        buffers = org.word_bits * 18.0 * (
            self._node.gate_cap_per_width * self._node.min_width) * vdd ** 2
        control = 3.0 * org.local_wordline().capacitance * vdd ** 2
        return (lbl * 1.0 + sense + buffers + control) * LOCALBLOCK_OVERHEAD

    # -- global path -----------------------------------------------------------------

    def global_path_energy(self, write: bool = False) -> float:
        org = self.organization
        c_gbl = org.gbl_capacitance()
        vdd = self._node.vdd
        if write:
            # Write drivers toggle the GBLs over the full low-swing rail.
            gbl = org.word_bits * c_gbl * GBL_SUPPLY * GBL_SUPPLY
            sense = 0.0
        else:
            gbl = org.word_bits * c_gbl * GBL_SWING * GBL_SUPPLY
            sense = org.word_bits * self.global_sa.energy_per_operation()
        mux = org.word_bits * 3.0 * (
            self._node.gate_cap_per_width * self._node.min_width * 4.0) * vdd ** 2
        return gbl + sense + mux

    # -- io -------------------------------------------------------------------------

    def io_energy(self, write: bool = False) -> float:
        org = self.organization
        vdd = self._node.vdd
        if write:
            latches = org.word_bits * 2.0 * self._unit_gate_cap() * vdd ** 2
            return latches * DATA_ACTIVITY
        drivers = org.word_bits * IO_LOAD_PER_BIT * vdd ** 2
        return drivers * DATA_ACTIVITY

    # -- assembly ----------------------------------------------------------------------

    def access(self, write: bool = False) -> AccessEnergy:
        """Energy breakdown of one read or write access."""
        return AccessEnergy(
            decode=self.decode_energy(write),
            cell=self.cell_energy(write),
            localblock=self.localblock_energy(write),
            global_path=self.global_path_energy(write),
            io=self.io_energy(write),
        )

    def read_energy(self) -> float:
        return self.access(write=False).total

    def write_energy(self) -> float:
        return self.access(write=True).total

    def refresh_row_energy(self) -> float:
        """Energy of refreshing one row (one LWL) — paper Fig. 4 scheme.

        The refresh is entirely local: LWL + cell restore + localblock,
        with the GBL ground node left floating so *no* global wires or
        sense amplifiers switch.  This is the quantity behind the
        static-power win of Fig. 7c.
        """
        org = self.organization
        if not org.cell.is_dynamic:
            return 0.0
        return (self.cell_energy(write=False)
                + self.localblock_energy(write=False))
