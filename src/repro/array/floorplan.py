"""Area model (paper Fig. 7d and Table I).

Total macro area = cell matrix (cells + local-SA strips, captured by the
block geometry of :class:`ArrayOrganization`) + global peripherals.  The
paper's peripherals were "originally designed for an SRAM" and kept
constant when swapping the cell, which the model mirrors: peripheral
area is derived from the matrix *perimeter* in SRAM-generation units and
from the fixed global circuitry (decoders, global SAs, IO, control).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict

from repro.array.organization import ArrayOrganization
from repro.units import mm2, um, um2


@dataclasses.dataclass(frozen=True)
class FloorplanBreakdown:
    """Area components of one macro, m^2."""

    cells: float
    local_periphery: float
    row_periphery: float
    column_periphery: float
    corner_control: float

    @property
    def total(self) -> float:
        return (self.cells + self.local_periphery + self.row_periphery
                + self.column_periphery + self.corner_control)

    @property
    def array_efficiency(self) -> float:
        """Fraction of the macro covered by storage cells."""
        return self.cells / self.total

    def breakdown(self) -> Dict[str, float]:
        return dataclasses.asdict(self)


#: Shrink factor of DRAM-dedicated peripheral strips vs the reused SRAM
#: generation (the paper's future work: "further gain should be possible
#: by designing peripherals dedicated to a DRAM matrix").  Dedicated
#: peripherals drop the differential-SRAM column circuitry and pitch-match
#: to the smaller cell.
DEDICATED_PERIPHERY_FACTOR = 0.65


@dataclasses.dataclass(frozen=True)
class Floorplan:
    """Area estimator for one organization.

    ``row_periphery_width`` / ``column_periphery_height`` are the strips
    of decoders/drivers along the matrix edges; ``corner_area`` holds
    control, timing chains and IO.  All three are sized in the SRAM
    design generation's dimensions (constant when the cell changes) —
    unless ``dedicated_periphery`` is set, which models the paper's
    future-work option of DRAM-specific peripherals.
    """

    organization: ArrayOrganization
    row_periphery_width: float = 45.0 * um
    column_periphery_height: float = 60.0 * um
    corner_area: float = 2700.0 * um2
    dedicated_periphery: bool = False

    def _periphery_scale(self) -> float:
        if not self.dedicated_periphery:
            return 1.0
        if not self.organization.cell.is_dynamic:
            # Dedicated *DRAM* peripherals do nothing for an SRAM matrix.
            return 1.0
        return DEDICATED_PERIPHERY_FACTOR

    def breakdown(self) -> FloorplanBreakdown:
        org = self.organization
        scale = self._periphery_scale()
        cells = org.total_bits * org.cell.area
        strips = (org.n_localblocks * org.block_width
                  * org.local_sa_strip_height) * scale
        row = org.matrix_height * self.row_periphery_width * scale
        column = org.matrix_width * self.column_periphery_height * scale
        return FloorplanBreakdown(
            cells=cells,
            local_periphery=strips,
            row_periphery=row,
            column_periphery=column,
            corner_control=self.corner_area * scale,
        )

    def total_area(self) -> float:
        """Macro area, m^2."""
        return self.breakdown().total

    def describe(self) -> str:
        b = self.breakdown()
        return (
            f"{self.organization.describe()}: "
            f"{b.total / mm2:.4f} mm^2 "
            f"(cells {100 * b.array_efficiency:.0f} %)"
        )
