"""Transistor-level hierarchical-bitline simulation (paper Fig. 1).

Where :mod:`repro.array.localblock` simulates one short local-bitline
column in isolation, this module builds the *hierarchy* the paper's
architecture is actually about: ``blocks`` local bitlines, each loaded
with ``cells_per_lbl`` one-transistor cells, hanging off a single
shared global bitline through per-block select devices, sensed by one
global cross-coupled latch against a dummy-cell reference.

Only the selected block's select switch closes, so the accessed cell
charge-shares into the *series* LBL + GBL capacitance while every idle
block contributes nothing but subthreshold leakage through its dormant
access devices — the leakage-versus-hierarchy interaction the paper's
area/energy trade-off rests on.  The circuit is parameterized in both
axes, which makes it the canonical scaling workload for the sparse MNA
backend: unknown count grows as ``blocks * (cells_per_lbl + 1)`` while
the matrix stays >95 % structurally zero.

The sense stage reuses the local-block idiom (cross-coupled SVT latch,
footer/header switches); :class:`repro.array.senseamp.SenseAmplifier`
remains the analytic counterpart for timing/energy models.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import SimulationError
from repro.cells.dram1t1c import Dram1t1cCell
from repro.spice import (
    Capacitor,
    Circuit,
    MosfetElement,
    Switch,
    VoltageSource,
    dc,
    pulse,
    simulate_transient,
    TransientResult,
)
from repro.tech.node import Polarity, VtFlavor
from repro.tech.transistor import Mosfet
from repro.tech.wire import GLOBAL_LAYER, LOCAL_LAYER, Wire
from repro.units import fF, kohm, ns, ps, um

# Simulation schedule (seconds).  The global read is a single-phase
# charge share (no local regeneration stage), so the SA fires earlier
# than in the local-block schedule.
_T_PRECHARGE_OFF = 0.10 * ns
_T_SELECT = 0.20 * ns
_T_WL_RISE = 0.20 * ns
_T_SA_ENABLE = 0.55 * ns
_T_STOP = 1.2 * ns
_DT = 1.0 * ps


@dataclasses.dataclass(frozen=True)
class GlobalBitlineWaveforms:
    """Measured quantities of one hierarchical-bitline read."""

    result: TransientResult
    stored_value: int
    charge_sharing_signal: float  # GBL-vs-reference step before SA, V
    gbl_final: float  # GBL level after regeneration, V
    selected_lbl_final: float  # selected block's LBL, V
    idle_lbl_drift: float  # max |drift| of the idle LBLs, V


def build_globalbitline_read_circuit(cell: Dram1t1cCell,
                                     blocks: int = 16,
                                     cells_per_lbl: int = 16,
                                     stored_value: int = 1,
                                     selected_block: int = 0,
                                     idle_value: int = 1) -> Circuit:
    """Netlist of ``blocks`` local bitlines sharing one global bitline.

    Block ``selected_block`` closes its select switch and raises the
    word line of its first cell (storing ``stored_value``); every other
    cell in the array idles at ``idle_value`` behind a grounded gate,
    so the only paths it offers are subthreshold leakage.  The global
    sense latch compares the GBL against a half-capacitance dummy-cell
    reference bitline, exactly as the local-block column does.
    """
    if stored_value not in (0, 1):
        raise SimulationError("stored_value must be 0 or 1")
    if idle_value not in (0, 1):
        raise SimulationError("idle_value must be 0 or 1")
    if blocks < 2:
        raise SimulationError("need at least 2 local blocks")
    if cells_per_lbl < 2:
        raise SimulationError("need at least 2 cells per LBL")
    if not 0 <= selected_block < blocks:
        raise SimulationError(
            f"selected_block {selected_block} out of range 0..{blocks - 1}")
    node = cell.node
    circuit = Circuit(
        f"globalbitline-read-{blocks}x{cells_per_lbl}-{stored_value}")

    precharge = cell.bitline_precharge
    v_stored = cell.stored_high if stored_value else 0.0
    v_idle = cell.stored_high if idle_value else 0.0

    # --- supplies and control -------------------------------------------------
    circuit.add(VoltageSource("vpre_rail", "pre_rail", "0", dc(precharge)))
    circuit.add(VoltageSource("vsa_rail", "sa_rail", "0", dc(precharge)))
    circuit.add(VoltageSource(
        "vwl", "wl", "0",
        pulse(0.0, cell.wordline_voltage, delay=_T_WL_RISE,
              rise=30 * ps, width=_T_STOP)))
    circuit.add(VoltageSource(
        "vsel", "sel_en", "0",
        pulse(0.0, 1.2, delay=_T_SELECT, rise=20 * ps, width=_T_STOP)))
    circuit.add(VoltageSource(
        "vprech_n", "prech_ctl", "0",
        pulse(1.2, 0.0, delay=_T_PRECHARGE_OFF, rise=20 * ps, width=_T_STOP)))
    circuit.add(VoltageSource(
        "vsa_en", "sa_en", "0",
        pulse(0.0, 1.2, delay=_T_SA_ENABLE, rise=20 * ps, width=_T_STOP)))

    # The WL driver sees the access gates of one word plus wire.
    lwl_load = (32 * cell.access.gate_capacitance()
                + Wire(LOCAL_LAYER, 32 * 0.6 * um).capacitance)
    circuit.add(Capacitor("c_lwl", "wl", "0", lwl_load))

    # --- local blocks ---------------------------------------------------------
    lbl_wire = Wire(LOCAL_LAYER, cells_per_lbl * 0.6 * um)
    c_lbl = (cells_per_lbl * cell.access.junction_capacitance()
             + lbl_wire.capacitance + 0.3 * fF)
    for b in range(blocks):
        lbl = f"lbl{b}"
        circuit.add(Capacitor(f"c_lbl{b}", lbl, "0", c_lbl,
                              initial_voltage=precharge))
        circuit.add(Switch(f"sw_pre{b}", lbl, "pre_rail", "prech_ctl", "0",
                           threshold=0.6, r_on=2 * kohm))
        # Per-block select device onto the shared GBL; idle blocks keep
        # a grounded control node, so their switch never closes.
        sel_ctl = "sel_en" if b == selected_block else "0"
        circuit.add(Switch(f"sw_sel{b}", lbl, "gbl", sel_ctl, "0",
                           threshold=0.6, r_on=2 * kohm))
        for i in range(cells_per_lbl):
            accessed = b == selected_block and i == 0
            gate = "wl" if accessed else "0"
            cell_node = f"cell{b}_{i}"
            circuit.add(MosfetElement(f"m_acc{b}_{i}", lbl, gate, cell_node,
                                      cell.access))
            circuit.add(Capacitor(
                f"c_cell{b}_{i}", cell_node, "0",
                cell.capacitor.capacitance,
                initial_voltage=v_stored if accessed else v_idle))

    # --- shared global bitline ------------------------------------------------
    gbl_wire = Wire(GLOBAL_LAYER, blocks * cells_per_lbl * 0.6 * um)
    c_gbl = (gbl_wire.capacitance
             + blocks * cell.access.junction_capacitance() + 1.0 * fF)
    circuit.add(Capacitor("c_gbl", "gbl", "0", c_gbl,
                          initial_voltage=precharge))
    circuit.add(Switch("sw_pre_gbl", "gbl", "pre_rail", "prech_ctl", "0",
                       threshold=0.6, r_on=2 * kohm))

    # --- reference bitline with half-capacitance dummy cell -------------------
    circuit.add(Capacitor("c_gbl_ref", "gbl_ref", "0", c_gbl + c_lbl,
                          initial_voltage=precharge))
    circuit.add(Switch("sw_pre_ref", "gbl_ref", "pre_rail", "prech_ctl", "0",
                       threshold=0.6, r_on=2 * kohm))
    dummy = Mosfet(node, Polarity.NMOS, VtFlavor.HVT,
                   width=cell.access.width,
                   length_factor=cell.access.length_factor)
    circuit.add(MosfetElement("m_dummy", "gbl_ref", "wl", "dummy_cell",
                              dummy))
    circuit.add(Capacitor("c_dummy", "dummy_cell", "0",
                          cell.capacitor.capacitance / 2.0,
                          initial_voltage=0.0))

    # --- global cross-coupled latch SA ----------------------------------------
    sa_n = Mosfet(node, Polarity.NMOS, VtFlavor.SVT,
                  width=node.width_units(4.0))
    sa_p = Mosfet(node, Polarity.PMOS, VtFlavor.SVT,
                  width=node.width_units(6.0))
    circuit.add(MosfetElement("m_sa_n1", "gbl", "gbl_ref", "sa_tail", sa_n))
    circuit.add(MosfetElement("m_sa_n2", "gbl_ref", "gbl", "sa_tail", sa_n))
    circuit.add(MosfetElement("m_sa_p1", "gbl", "gbl_ref", "sa_top", sa_p))
    circuit.add(MosfetElement("m_sa_p2", "gbl_ref", "gbl", "sa_top", sa_p))
    circuit.add(Switch("sw_sa_foot", "sa_tail", "0", "sa_en", "0",
                       threshold=0.6, r_on=500.0))
    circuit.add(Switch("sw_sa_head", "sa_top", "sa_rail", "sa_en", "0",
                       threshold=0.6, r_on=500.0))
    return circuit


def globalbitline_initial_voltages(cell: Dram1t1cCell) -> dict:
    """The precharged-state initial guess shared by every GBL run."""
    return {
        "pre_rail": cell.bitline_precharge,
        "sa_rail": cell.bitline_precharge,
        "prech_ctl": 1.2,
    }


def simulate_globalbitline_read(cell: Dram1t1cCell,
                                blocks: int = 16,
                                cells_per_lbl: int = 16,
                                stored_value: int = 1,
                                selected_block: int = 0,
                                backend: str = "auto"
                                ) -> GlobalBitlineWaveforms:
    """Run the hierarchical read and measure the sense-margin
    quantities.  ``backend`` selects the linear kernel exactly as in
    :func:`repro.spice.transient.simulate_transient`."""
    circuit = build_globalbitline_read_circuit(
        cell, blocks=blocks, cells_per_lbl=cells_per_lbl,
        stored_value=stored_value, selected_block=selected_block)
    result = simulate_transient(
        circuit, t_stop=_T_STOP, dt=_DT,
        initial_voltages=globalbitline_initial_voltages(cell),
        backend=backend)
    gbl = result.voltage("gbl")
    ref = result.voltage("gbl_ref")
    idx = int(_T_SA_ENABLE / _DT) - 2
    signal = float(abs(gbl[idx] - ref[idx]))
    precharge = cell.bitline_precharge
    idle_drift = max(
        float(np.abs(result.voltage(f"lbl{b}") - precharge).max())
        for b in range(blocks) if b != selected_block)
    return GlobalBitlineWaveforms(
        result=result,
        stored_value=stored_value,
        charge_sharing_signal=signal,
        gbl_final=float(gbl[-1]),
        selected_lbl_final=float(
            result.final_voltage(f"lbl{selected_block}")),
        idle_lbl_drift=idle_drift,
    )
