"""Transistor-level local-block simulation (paper Fig. 3 and Fig. 4).

This module builds a SPICE netlist of one local-block column and
reproduces the paper's waveforms:

* charge sharing of the cell onto the short LBL,
* a dummy-cell reference bitline (half-capacitance dummy: the classic
  DRAM mid-signal reference),
* a cross-coupled latch local SA that regenerates the LBL rail-to-rail
  — thereby *restoring the cell in place* (write-after-read at local
  level) while…
* …a read buffer develops the low-swing GBL step (0.4 V -> 0.3 V)
  towards the ``GBL gnd`` rail.  During refresh the buffer stays
  disabled and the GBL-side circuitry never moves — the paper's
  low-energy localized refresh.

The analytic models in :mod:`repro.array.timing` / ``energy`` are the
workhorses; this simulation is the validation step of the methodology
flow (paper Fig. 6's "SPICE" box).
"""

from __future__ import annotations

import dataclasses

from repro.errors import SimulationError
from repro.cells.dram1t1c import Dram1t1cCell
from repro.spice import (
    Capacitor,
    Circuit,
    MosfetElement,
    Switch,
    VoltageSource,
    dc,
    pulse,
    simulate_transient,
    source_energy,
    TransientResult,
)
from repro.tech.node import Polarity, VtFlavor
from repro.tech.transistor import Mosfet
from repro.tech.wire import LOCAL_LAYER, Wire
from repro.units import fF, kohm, ns, ps, um

# Simulation schedule (seconds).
_T_PRECHARGE_OFF = 0.10 * ns
_T_WL_RISE = 0.20 * ns
_T_SA_ENABLE = 0.70 * ns
_T_BUFFER_ENABLE = 0.90 * ns
_T_STOP = 2.5 * ns
_DT = 1.0 * ps


@dataclasses.dataclass(frozen=True)
class LocalBlockWaveforms:
    """Measured quantities of one local-block read/refresh simulation."""

    result: TransientResult
    stored_value: int
    charge_sharing_signal: float  # LBL step right before SA enable, V
    lbl_final: float  # LBL level after regeneration, V
    cell_final: float  # restored cell level, V
    gbl_swing: float  # GBL excursion, V (0 during refresh)
    wordline_energy: float  # J drawn from the WL driver
    sense_energy: float  # J drawn from the SA rail

    @property
    def restored_correctly(self) -> bool:
        """Did the write-after-read loop restore the stored value?"""
        if self.stored_value == 0:
            return self.cell_final < 0.15
        return self.cell_final > 0.6


def build_localblock_read_circuit(cell: Dram1t1cCell,
                                  cells_per_lbl: int = 16,
                                  stored_value: int = 0,
                                  gbl_cap: float = 40 * fF,
                                  refresh_only: bool = False) -> Circuit:
    """Netlist of one local-block column (paper Fig. 4).

    ``gbl_cap`` is the global-bitline load seen by the read buffer, in
    farads.  ``refresh_only`` disables the read buffer: the GBL side
    floats, as in the paper's localized refresh ("the GBL gnd node is
    left floating during this operation").
    """
    if stored_value not in (0, 1):
        raise SimulationError("stored_value must be 0 or 1")
    if cells_per_lbl < 2:
        raise SimulationError("need at least 2 cells per LBL")
    node = cell.node
    circuit = Circuit(f"localblock-read-{stored_value}")

    precharge = cell.bitline_precharge
    v_cell0 = cell.stored_high if stored_value else 0.0

    # --- supplies and control -------------------------------------------------
    circuit.add(VoltageSource("vpre_rail", "pre_rail", "0", dc(precharge)))
    circuit.add(VoltageSource("vsa_rail", "sa_rail", "0", dc(precharge)))
    circuit.add(VoltageSource("vgblgnd", "gbl_gnd", "0", dc(0.3)))
    circuit.add(VoltageSource(
        "vwl", "wl", "0",
        pulse(0.0, cell.wordline_voltage, delay=_T_WL_RISE,
              rise=30 * ps, width=_T_STOP)))
    circuit.add(VoltageSource(
        "vprech_n", "prech_ctl", "0",
        pulse(1.2, 0.0, delay=_T_PRECHARGE_OFF, rise=20 * ps, width=_T_STOP)))
    circuit.add(VoltageSource(
        "vsa_en", "sa_en", "0",
        pulse(0.0, 1.2, delay=_T_SA_ENABLE, rise=20 * ps, width=_T_STOP)))
    if not refresh_only:
        circuit.add(VoltageSource(
            "vrb_en", "rb_en", "0",
            pulse(0.0, 1.2, delay=_T_BUFFER_ENABLE, rise=20 * ps,
                  width=_T_STOP)))

    # --- storage cell and bitline ------------------------------------------------
    # The MOSFET element has an ideal (currentless) gate, so the word
    # line's real load — the access gates of the word plus wire — is an
    # explicit capacitor; the WL driver energy is measured through it.
    lwl_load = (32 * cell.access.gate_capacitance()
                + Wire(LOCAL_LAYER, 32 * 0.6 * um).capacitance)
    circuit.add(Capacitor("c_lwl", "wl", "0", lwl_load))
    circuit.add(MosfetElement("m_access", "lbl", "wl", "cell", cell.access))
    circuit.add(Capacitor("c_cell", "cell", "0", cell.capacitor.capacitance,
                          initial_voltage=v_cell0))
    lbl_wire = Wire(LOCAL_LAYER, cells_per_lbl * 0.6 * um)
    c_lbl = (cells_per_lbl * cell.access.junction_capacitance()
             + lbl_wire.capacitance + 0.3 * fF)
    circuit.add(Capacitor("c_lbl", "lbl", "0", c_lbl,
                          initial_voltage=precharge))

    # --- reference bitline with half-capacitance dummy cell -----------------------
    circuit.add(Capacitor("c_ref", "ref", "0", c_lbl,
                          initial_voltage=precharge))
    dummy = Mosfet(node, Polarity.NMOS, VtFlavor.HVT,
                   width=cell.access.width,
                   length_factor=cell.access.length_factor)
    circuit.add(MosfetElement("m_dummy", "ref", "wl", "dummy_cell", dummy))
    circuit.add(Capacitor("c_dummy", "dummy_cell", "0",
                          cell.capacitor.capacitance / 2.0,
                          initial_voltage=0.0))

    # --- precharge devices ------------------------------------------------------------
    circuit.add(Switch("sw_pre_lbl", "lbl", "pre_rail", "prech_ctl", "0",
                       threshold=0.6, r_on=2 * kohm))
    circuit.add(Switch("sw_pre_ref", "ref", "pre_rail", "prech_ctl", "0",
                       threshold=0.6, r_on=2 * kohm))

    # --- cross-coupled latch local SA ----------------------------------------------------
    sa_n = Mosfet(node, Polarity.NMOS, VtFlavor.SVT,
                  width=node.width_units(4.0))
    sa_p = Mosfet(node, Polarity.PMOS, VtFlavor.SVT,
                  width=node.width_units(6.0))
    circuit.add(MosfetElement("m_sa_n1", "lbl", "ref", "sa_tail", sa_n))
    circuit.add(MosfetElement("m_sa_n2", "ref", "lbl", "sa_tail", sa_n))
    circuit.add(MosfetElement("m_sa_p1", "lbl", "ref", "sa_top", sa_p))
    circuit.add(MosfetElement("m_sa_p2", "ref", "lbl", "sa_top", sa_p))
    circuit.add(Switch("sw_sa_foot", "sa_tail", "0", "sa_en", "0",
                       threshold=0.6, r_on=500.0))
    circuit.add(Switch("sw_sa_head", "sa_top", "sa_rail", "sa_en", "0",
                       threshold=0.6, r_on=500.0))

    # --- read buffer driving the low-swing GBL --------------------------------------------
    circuit.add(Capacitor("c_gbl", "gbl", "0", gbl_cap, initial_voltage=0.4))
    if not refresh_only:
        rb_in = Mosfet(node, Polarity.NMOS, VtFlavor.HVT,
                       width=node.width_units(6.0))
        rb_out = Mosfet(node, Polarity.NMOS, VtFlavor.LVT,
                        width=node.width_units(6.0))
        # Stack: GBL -> (gate: ref) -> mid -> (gate: rb_en) -> GBL gnd.
        circuit.add(MosfetElement("m_rb_in", "gbl", "ref", "rb_mid", rb_in))
        circuit.add(MosfetElement("m_rb_en", "rb_mid", "rb_en", "gbl_gnd",
                                  rb_out))
    return circuit


def simulate_localblock_read(cell: Dram1t1cCell,
                             cells_per_lbl: int = 16,
                             stored_value: int = 0,
                             gbl_cap: float = 40 * fF,
                             refresh_only: bool = False
                             ) -> LocalBlockWaveforms:
    """Run the local-block read (or refresh) and measure the paper's
    Fig. 3 quantities.  ``gbl_cap`` is the global-bitline load in
    farads."""
    circuit = build_localblock_read_circuit(
        cell, cells_per_lbl=cells_per_lbl, stored_value=stored_value,
        gbl_cap=gbl_cap, refresh_only=refresh_only)
    initial = {
        "pre_rail": cell.bitline_precharge,
        "sa_rail": cell.bitline_precharge,
        "gbl_gnd": 0.3,
        "prech_ctl": 1.2,
    }
    result = simulate_transient(circuit, t_stop=_T_STOP, dt=_DT,
                                initial_voltages=initial)
    time = result.time
    lbl = result.voltage("lbl")
    ref = result.voltage("ref")
    # Signal right before SA enable.
    idx = int(_T_SA_ENABLE / _DT) - 2
    signal = float(abs(lbl[idx] - ref[idx]))
    gbl = result.voltage("gbl")
    gbl_swing = float(abs(gbl[0] - gbl.min()))
    del time
    return LocalBlockWaveforms(
        result=result,
        stored_value=stored_value,
        charge_sharing_signal=signal,
        lbl_final=float(lbl[-1]),
        cell_final=float(result.final_voltage("cell")),
        gbl_swing=gbl_swing,
        wordline_energy=source_energy(result, "vwl"),
        sense_energy=source_energy(result, "vsa_rail"),
    )
