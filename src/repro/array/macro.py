"""Macro assembly: one organization + its sense amplifiers + all models.

:class:`MacroDesign` bundles everything needed to quote the paper's
figures for one memory macro.  The DRAM design (:mod:`repro.core`) and
the SRAM baseline (:mod:`repro.sramref`) both instantiate it — same
skeleton, different cell, which is the paper's comparison methodology.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro import obs
from repro.array.energy import AccessEnergy, EnergyModel
from repro.array.floorplan import Floorplan
from repro.array.organization import ArrayOrganization
from repro.array.senseamp import SenseAmplifier
from repro.array.static_power import StaticPowerModel, StaticPowerReport
from repro.array.timing import AccessTiming, TimingModel
from repro.units import mm2, si_format


@dataclasses.dataclass(frozen=True)
class MacroDesign:
    """A fully assembled memory macro.

    ``retention_override`` pins the refresh period used for static-power
    accounting; by default the cell's 6-sigma worst-case retention is
    used (dynamic cells only).
    """

    organization: ArrayOrganization
    local_sa: SenseAmplifier
    global_sa: SenseAmplifier
    retention_override: float | None = None

    # -- model factories -----------------------------------------------------

    @property
    def timing_model(self) -> TimingModel:
        return TimingModel(self.organization, self.local_sa, self.global_sa)

    @property
    def energy_model(self) -> EnergyModel:
        return EnergyModel(self.organization, self.local_sa, self.global_sa)

    @property
    def floorplan(self) -> Floorplan:
        return Floorplan(self.organization)

    @property
    def static_power_model(self) -> StaticPowerModel:
        return StaticPowerModel(
            self.organization, self.energy_model,
            retention_time=self.retention_override,
        )

    # -- headline figures --------------------------------------------------------

    def access_timing(self) -> AccessTiming:
        return self.timing_model.access()

    def access_time(self) -> float:
        """Worst-case read access time, seconds."""
        return self.timing_model.access_time()

    def read_energy(self) -> AccessEnergy:
        return self.energy_model.access(write=False)

    def write_energy(self) -> AccessEnergy:
        return self.energy_model.access(write=True)

    def energy_per_bit(self, write: bool = False) -> float:
        """Dynamic energy per accessed bit, joules."""
        access = self.energy_model.access(write=write)
        return access.per_bit(self.organization.word_bits)

    def area(self) -> float:
        """Total macro area, m^2."""
        return self.floorplan.total_area()

    def static_power(self) -> StaticPowerReport:
        """Cell-array static power (leakage or refresh, by cell kind)."""
        return self.static_power_model.report()

    # -- resilience ------------------------------------------------------------

    def fault_assessment(self, plan, repair=None):
        """Degraded-mode accounting of this macro under a fault plan.

        Applies ECC + spare-row repair (``repair`` defaults to
        :class:`~repro.faults.repair.RepairModel`'s standard
        provisioning) and returns a
        :class:`~repro.faults.repair.DegradedMacroReport`: corrected
        errors, capacity loss and refresh-rate uplift instead of a
        pass/fail margin check.
        """
        import math

        from repro.errors import ConfigurationError
        from repro.faults.repair import RepairModel, assess_plan

        org = self.organization
        org_rows = org.n_localblocks * org.cells_per_lbl
        if plan.total_rows != org_rows:
            raise ConfigurationError(
                f"fault plan covers {plan.total_rows} rows but the macro "
                f"has {org_rows} ({org.n_localblocks} blocks x "
                f"{org.cells_per_lbl} rows)")
        if repair is None:
            repair = RepairModel()
        if self.organization.cell.is_dynamic:
            base_period = self.static_power_model.refresh_period()
        else:
            base_period = math.inf  # static cells never refresh
        return assess_plan(plan, repair, base_refresh_period=base_period)

    # -- reporting ------------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """The paper's headline quantities as a flat dict (SI units)."""
        with obs.span("macro.summary",
                      total_bits=self.organization.total_bits):
            with obs.span("macro.timing"):
                access_time = self.access_time()
            with obs.span("macro.energy"):
                read_energy = self.read_energy().total
                write_energy = self.write_energy().total
                per_bit = self.energy_per_bit(write=False)
            with obs.span("macro.floorplan"):
                area = self.area()
            with obs.span("macro.static"):
                static = self.static_power()
        figures = {
            "total_bits": float(self.organization.total_bits),
            "access_time_s": access_time,
            "read_energy_j": read_energy,
            "write_energy_j": write_energy,
            "read_energy_per_bit_j": per_bit,
            "area_m2": area,
            "static_power_w": static.power,
        }
        m = obs.metrics()
        for name, value in figures.items():
            m.gauge(f"macro.{name}").set(value)
        return figures

    def describe(self) -> str:
        """Multi-line human-readable report."""
        s = self.summary()
        static = self.static_power()
        lines = [
            self.organization.describe(),
            f"  access time      : {si_format(s['access_time_s'], 's')}",
            f"  read energy      : {si_format(s['read_energy_j'], 'J')}"
            f" ({si_format(s['read_energy_per_bit_j'], 'J')}/bit)",
            f"  write energy     : {si_format(s['write_energy_j'], 'J')}",
            f"  area             : {s['area_m2'] / mm2:.4f} mm^2",
            f"  cell static power: {si_format(s['static_power_w'], 'W')}"
            f" ({static.mechanism})",
        ]
        if static.retention_time is not None:
            lines.append(
                f"  retention used   : {si_format(static.retention_time, 's')}")
        return "\n".join(lines)
