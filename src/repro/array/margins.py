"""Read-margin analysis: sensing yield vs refresh interval.

The retention model answers "when has the cell lost its charge?"; this
module answers the sharper question the sense path actually poses:
*when does a read start failing?*  A read succeeds while the decayed
charge-sharing differential still clears the local SA's offset:

    margin(t) = signal(t) / 2 - n_sigma * sigma_offset

where the stored level decays exponentially with the cell's leakage
time constant and the factor 2 is the half-step dummy-cell reference.
Because leakage varies cell to cell (Pelgrom + lognormal junction), the
margin at a given refresh interval is a distribution; the analysis
reports the failure probability and the maximum refresh interval at a
target yield — a tighter, sensing-aware version of the paper's
retention criterion.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List

import numpy as np

from repro.array.organization import ArrayOrganization
from repro.array.senseamp import SenseAmplifier
from repro.errors import ConfigurationError
from repro.variability.retention import RetentionModel
from repro.units import us


@dataclasses.dataclass(frozen=True)
class MarginPoint:
    """Read-margin statistics at one refresh interval."""

    refresh_interval: float
    mean_margin: float
    worst_margin: float  # at the sampled population's weakest cell
    failure_fraction: float  # fraction of cells with margin <= 0


@dataclasses.dataclass(frozen=True)
class ReadMarginAnalysis:
    """Sensing-aware retention analysis for one organization.

    Parameters
    ----------
    organization:
        The (dynamic-cell) array under analysis.
    local_sa:
        The sense amplifier whose offset the signal must clear.
    retention:
        Cell retention model (supplies the leakage distribution).
    samples:
        Cell population size per evaluated interval.
    seed:
        RNG seed for the cell population.
    """

    organization: ArrayOrganization
    local_sa: SenseAmplifier
    retention: RetentionModel
    samples: int = 4000
    seed: int = 0
    #: Scales the SA's required differential; a fault plan's worst
    #: sense-amp outlier (``FaultPlan.worst_sa_multiplier``) plugs in
    #: here to evaluate the margin of the unluckiest block.
    offset_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if not self.organization.cell.is_dynamic:
            raise ConfigurationError(
                "read-margin analysis applies to dynamic cells")
        if self.samples < 100:
            raise ConfigurationError("need at least 100 sampled cells")
        if self.offset_multiplier < 1.0:
            raise ConfigurationError(
                "offset multiplier must be >= 1 (1.0 = nominal SA)")

    # -- ingredients -----------------------------------------------------------

    def fresh_signal(self) -> float:
        """Charge-sharing LBL step right after a restore, volts."""
        return self.organization.read_signal()

    def required_differential(self) -> float:
        """Differential the SA needs (offset at the design margin)."""
        return self.local_sa.required_input_signal() * self.offset_multiplier

    def _decay_time_constants(self, rng: np.random.Generator) -> np.ndarray:
        """Per-cell exponential decay constants, seconds.

        The retention sample is the time to lose ``readable_margin``;
        for an exponential decay from the stored level V0, the time
        constant follows as tau = t_ret / ln(V0 / (V0 - margin)).
        """
        t_ret = self.retention.sample_many(rng, self.samples)
        v0 = self.organization.cell.stored_high
        margin = self.retention.readable_margin
        if margin >= v0:
            raise ConfigurationError(
                "readable margin exceeds the stored level")
        return t_ret / math.log(v0 / (v0 - margin))

    # -- the analysis ---------------------------------------------------------------

    def evaluate(self, refresh_interval: float) -> MarginPoint:
        """Margin statistics when cells are read ``refresh_interval``
        after their last restore (the worst-phase read)."""
        if refresh_interval <= 0:
            raise ConfigurationError("refresh interval must be positive")
        rng = np.random.default_rng(self.seed)
        taus = self._decay_time_constants(rng)
        v0 = self.organization.cell.stored_high
        decayed = v0 * np.exp(-refresh_interval / taus)
        # The signal scales with the remaining stored level; the dummy
        # reference sits at half the *fresh* step.
        fresh = self.fresh_signal()
        signal = fresh * decayed / v0
        margin = signal - fresh / 2.0 - self.required_differential()
        return MarginPoint(
            refresh_interval=refresh_interval,
            mean_margin=float(np.mean(margin)),
            worst_margin=float(np.min(margin)),
            failure_fraction=float(np.mean(margin <= 0.0)),
        )

    def sweep(self, intervals) -> List[MarginPoint]:
        """Evaluate a list of refresh intervals."""
        return [self.evaluate(t) for t in intervals]

    def max_interval_at_yield(self, target_failure: float = 1e-3,
                              t_lo: float = 1 * us,
                              t_hi: float = 1.0) -> float:
        """Longest refresh interval keeping the failure fraction at or
        below ``target_failure`` (bisection over the interval axis)."""
        if not 0.0 <= target_failure < 1.0:
            raise ConfigurationError("target failure must lie in [0, 1)")
        if self.evaluate(t_lo).failure_fraction > target_failure:
            raise ConfigurationError(
                "failure target unreachable even at the shortest interval")
        if self.evaluate(t_hi).failure_fraction <= target_failure:
            return t_hi
        lo, hi = t_lo, t_hi
        for _ in range(60):
            mid = math.sqrt(lo * hi)  # bisect in log space
            if self.evaluate(mid).failure_fraction <= target_failure:
                lo = mid
            else:
                hi = mid
        return lo
