"""Array organization: the divided word-line / divided bit-line geometry.

An :class:`ArrayOrganization` fixes the logical and physical structure
of the matrix; every model (timing, energy, area, refresh) reads its
geometry from here, so the single object keeps them consistent.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigurationError
from repro.cells.cellspec import CellSpec
from repro.tech.node import TechnologyNode
from repro.tech.wire import (
    GLOBAL_LAYER,
    INTERMEDIATE_LAYER,
    LOCAL_LAYER,
    Wire,
)
from repro.units import fF, kb


@dataclasses.dataclass(frozen=True)
class ArrayOrganization:
    """Geometry of a hierarchically divided memory matrix.

    Parameters
    ----------
    node:
        Technology node.
    cell:
        The bit cell populating the matrix.
    total_bits:
        Matrix capacity in bits (128 kb and 2 Mb in the paper).
    word_bits:
        Word width; one LWL opens exactly one word (paper Fig. 1).
    cells_per_lbl:
        Rows per local block = cells on one local bitline (16 for the
        scratch-pad cell, 32 with the overdriven DRAM cell).
    block_columns:
        Number of local-block columns in the floorplan.  ``None`` picks
        the split that makes the overall matrix closest to square.
    cell_aspect_ratio:
        Cell width / height (6T SRAM cells are wide, DRAM cells squarer).
    """

    node: TechnologyNode
    cell: CellSpec
    total_bits: int = 128 * kb
    word_bits: int = 32
    cells_per_lbl: int = 16
    block_columns: int | None = None
    cell_aspect_ratio: float = 2.0

    def __post_init__(self) -> None:
        if self.total_bits <= 0 or self.word_bits <= 0 or self.cells_per_lbl <= 0:
            raise ConfigurationError("sizes must be positive")
        if self.total_bits % (self.word_bits * self.cells_per_lbl):
            raise ConfigurationError(
                f"{self.total_bits} bits do not divide into "
                f"{self.word_bits}-bit words x {self.cells_per_lbl} rows"
            )
        if self.cell_aspect_ratio <= 0:
            raise ConfigurationError("cell aspect ratio must be positive")
        if self.block_columns is not None and (
            self.block_columns <= 0 or self.n_localblocks % self.block_columns
        ):
            raise ConfigurationError(
                f"{self.n_localblocks} blocks do not arrange into "
                f"{self.block_columns} columns"
            )

    # -- logical structure ---------------------------------------------------

    @property
    def bits_per_localblock(self) -> int:
        return self.word_bits * self.cells_per_lbl

    @property
    def n_localblocks(self) -> int:
        return self.total_bits // self.bits_per_localblock

    @property
    def n_words(self) -> int:
        """Total words = total LWLs = rows to refresh."""
        return self.total_bits // self.word_bits

    @property
    def n_block_columns(self) -> int:
        if self.block_columns is not None:
            return self.block_columns
        return _squarest_columns(self.n_localblocks, self.block_width,
                                 self.block_height)

    @property
    def n_block_rows(self) -> int:
        return self.n_localblocks // self.n_block_columns

    # -- physical dimensions -----------------------------------------------------

    @property
    def cell_width(self) -> float:
        return math.sqrt(self.cell.area * self.cell_aspect_ratio)

    @property
    def cell_height(self) -> float:
        return self.cell.area / self.cell_width

    @property
    def block_width(self) -> float:
        return self.word_bits * self.cell_width

    @property
    def block_height(self) -> float:
        """Cells plus the local sense-amplifier strip (paper Fig. 4)."""
        return self.cells_per_lbl * self.cell_height + self.local_sa_strip_height

    @property
    def local_sa_strip_height(self) -> float:
        """Height of the local SA / write-after-read strip in one block.

        The strip holds, per column: the local SA, the read buffer, the
        loop-cut switch and the LWL receiver share, sized in the *SRAM*
        generation's row heights (the paper keeps peripherals constant
        between the two matrices).  The dynamic-cell strip is taller:
        paper Fig. 4 adds the write-after-read loop cut and refresh
        support to the plain SRAM local SA.
        """
        rows = 6.0 if self.cell.is_dynamic else 4.0
        return rows * math.sqrt(self.node.sram6t_cell_area / 2.0)

    @property
    def matrix_width(self) -> float:
        return self.n_block_columns * self.block_width

    @property
    def matrix_height(self) -> float:
        return self.n_block_rows * self.block_height

    # -- wires ---------------------------------------------------------------------

    def local_bitline(self) -> Wire:
        """One LBL: spans the cells of one block column."""
        return Wire(LOCAL_LAYER, self.cells_per_lbl * self.cell_height)

    def local_wordline(self) -> Wire:
        """One LWL: spans one word inside the block."""
        return Wire(LOCAL_LAYER, self.block_width)

    def global_bitline(self) -> Wire:
        """One GBL: spans the full matrix height."""
        return Wire(INTERMEDIATE_LAYER, self.matrix_height)

    def global_wordline(self) -> Wire:
        """One GWL: spans the full matrix width."""
        return Wire(GLOBAL_LAYER, self.matrix_width)

    # -- electrical loads -------------------------------------------------------------

    def lbl_capacitance(self) -> float:
        """Total LBL capacitance: cell junctions + wire + local SA input."""
        cells = self.cells_per_lbl * self.cell.bitline_cap_per_cell
        sa_input = 0.3 * fF  # local SA input device
        return cells + self.local_bitline().capacitance + sa_input

    def lwl_capacitance(self) -> float:
        """Total LWL capacitance: access gates of one word + wire."""
        gates = self.word_bits * self.cell.wordline_cap_per_cell
        return gates + self.local_wordline().capacitance

    def gbl_capacitance(self) -> float:
        """Total GBL capacitance: wire + one read-buffer drain per block row."""
        drains = self.n_block_rows * 0.4 * fF
        return self.global_bitline().capacitance + drains

    def gwl_capacitance(self) -> float:
        """Total GWL capacitance: wire + one LWL-receiver gate per block col."""
        receivers = self.n_block_columns * 1.0 * fF
        return self.global_wordline().capacitance + receivers

    def read_signal(self) -> float:
        """LBL read signal, volts.

        Charge-sharing step for dynamic cells; for static cells the
        differential the cell develops in the sensing window (approx
        150 mV by construction of the timing model).
        """
        if self.cell.is_dynamic:
            return self.cell.bitline_voltage_step(
                bitline_cap=self.lbl_capacitance(),
                precharge_voltage=1.0,
            )
        return 0.15

    def with_cell(self, cell: CellSpec, cells_per_lbl: int | None = None
                  ) -> "ArrayOrganization":
        """Same organization populated with another cell."""
        return dataclasses.replace(
            self,
            cell=cell,
            cells_per_lbl=self.cells_per_lbl if cells_per_lbl is None
            else cells_per_lbl,
            block_columns=None,
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.total_bits // 1024} kb, {self.word_bits}-bit words, "
            f"{self.cells_per_lbl} cells/LBL, "
            f"{self.n_localblocks} localblocks "
            f"({self.n_block_rows} x {self.n_block_columns}), "
            f"cell {self.cell.name}"
        )


def _squarest_columns(n_blocks: int, block_width: float,
                      block_height: float) -> int:
    """Block-column count whose floorplan is closest to square."""
    best_cols, best_badness = 1, float("inf")
    for cols in range(1, n_blocks + 1):
        if n_blocks % cols:
            continue
        rows = n_blocks // cols
        width = cols * block_width
        height = rows * block_height
        badness = max(width / height, height / width)
        if badness < best_badness:
            best_cols, best_badness = cols, badness
    return best_cols
