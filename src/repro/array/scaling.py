"""Extension to larger memories (paper Sec. III last paragraph).

The paper extrapolates the 128 kb design point to 2 Mb by growing the
GBL/GWL fabric ("using GBL/GWL larger capacitance estimation, with a
timing penalty due to larger buffers needed on this signal").  Here the
organization model recomputes geometry exactly, and this module adds the
repeatered-wire delay penalty for the long global lines of big arrays.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.array.organization import ArrayOrganization
from repro.tech.node import Polarity, VtFlavor
from repro.tech.transistor import Mosfet
from repro.tech.wire import repeater_stage_delay
from repro.units import kb


def scale_organization(base: ArrayOrganization,
                       total_bits: int) -> ArrayOrganization:
    """Rebuild ``base`` at another capacity, keeping cell and structure."""
    if total_bits <= 0:
        raise ConfigurationError("total_bits must be positive")
    return dataclasses.replace(base, total_bits=total_bits, block_columns=None)


def standard_sizes() -> list[int]:
    """The memory sizes swept by the paper's figures (Fig. 7, Fig. 9)."""
    return [128 * kb, 256 * kb, 512 * kb, 1024 * kb, 2048 * kb]


def global_wire_penalty(org: ArrayOrganization) -> float:
    """Delay of the global fabric (GWL + GBL) at this size, seconds.

    For each global wire the best of direct drive and an optimally
    repeated chain is taken — exactly the "larger buffers needed on this
    signal" the paper prices into the 2 Mb extension.  Monotone in the
    matrix dimensions, so the size sweep exposes the growing global-wire
    cost.
    """
    driver = Mosfet(org.node, Polarity.NMOS, VtFlavor.SVT,
                    width=org.node.width_units(8.0))
    r_drv = driver.on_resistance()
    c_drv = driver.gate_capacitance() * 3.0  # inverter pair input
    total = 0.0
    for wire in (org.global_wordline(), org.global_bitline()):
        repeated = repeater_stage_delay(wire, r_drv, c_drv)
        direct = wire.elmore_delay(r_drv)
        total += min(repeated, direct)
    return total
