"""Latch-type sense amplifier model.

Both the local SA (senses the LBL charge-sharing step, restores the
cell) and the global SA (senses the low-swing GBL) are regenerative
latches.  The model covers the three quantities the architecture needs:

* *offset*: input-referred mismatch of the cross-coupled pair (Pelgrom).
  The underlying SRAM design [10] uses **tunable** sense amplifiers to
  cope with variability; tuning cancels a calibrated fraction of the
  offset at a small delay/energy cost, modelled by ``tuning_factor``.
* *regeneration delay*: exponential amplification from the input signal
  to a full logic level, ``t = tau * ln(v_out / v_in)``.
* *energy* per sense operation.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigurationError
from repro.tech.node import Polarity, TechnologyNode, VtFlavor
from repro.tech.transistor import Mosfet
from repro.units import fF
from repro.variability.pelgrom import PelgromModel


@dataclasses.dataclass(frozen=True)
class SenseAmplifier:
    """A regenerative latch sense amplifier.

    Parameters
    ----------
    node:
        Technology node.
    input_units:
        Width of the cross-coupled input devices, 120 nm units.
    internal_cap:
        Total internal node capacitance switched per operation, farads.
    supply:
        Rail the SA regenerates to, volts.
    tunable:
        Whether offset-tuning DACs are fitted ([10]'s technique).
    tuning_factor:
        Fraction of the raw offset that remains after tuning.
    margin_sigma:
        How many sigma of residual offset the input signal must clear.
    """

    node: TechnologyNode
    input_units: float = 4.0
    internal_cap: float = 4.0 * fF
    supply: float = 1.2
    tunable: bool = True
    tuning_factor: float = 0.35
    margin_sigma: float = 6.0

    def __post_init__(self) -> None:
        if self.input_units <= 0 or self.internal_cap <= 0 or self.supply <= 0:
            raise ConfigurationError("SA sizes and supply must be positive")
        if not 0.0 < self.tuning_factor <= 1.0:
            raise ConfigurationError("tuning factor must lie in (0, 1]")
        if self.margin_sigma <= 0:
            raise ConfigurationError("margin sigma must be positive")

    @property
    def input_device(self) -> Mosfet:
        return Mosfet(self.node, Polarity.NMOS, VtFlavor.SVT,
                      width=self.node.width_units(self.input_units))

    # -- offset ------------------------------------------------------------------

    def raw_offset_sigma(self, mismatch: PelgromModel | None = None) -> float:
        """Input-referred offset sigma before tuning, volts.

        The cross-coupled pair contributes sqrt(2) of one device's VT
        mismatch.
        """
        mismatch = PelgromModel() if mismatch is None else mismatch
        return math.sqrt(2.0) * mismatch.vth_spec(self.input_device).sigma

    def effective_offset_sigma(self, mismatch: PelgromModel | None = None) -> float:
        """Offset sigma after tuning (if fitted), volts."""
        raw = self.raw_offset_sigma(mismatch)
        return raw * self.tuning_factor if self.tunable else raw

    def required_input_signal(self, mismatch: PelgromModel | None = None) -> float:
        """Smallest input the SA resolves at the design margin, volts."""
        return self.margin_sigma * self.effective_offset_sigma(mismatch)

    # -- dynamics -----------------------------------------------------------------

    def regeneration_tau(self) -> float:
        """Regeneration time constant C/gm, seconds.

        gm is linearised from the input device around half-supply
        overdrive — the operating point right after the latch trips.
        """
        device = self.input_device
        vgs = self.supply * 0.75
        delta = 0.01
        i1 = device.drain_current(vgs - delta, self.supply / 2)
        i2 = device.drain_current(vgs + delta, self.supply / 2)
        gm = (i2 - i1) / (2 * delta)
        if gm <= 0:
            raise ConfigurationError("SA input device has no transconductance")
        return self.internal_cap / gm

    def sense_delay(self, input_signal: float,
                    output_level: float | None = None) -> float:
        """Time to regenerate ``input_signal`` to ``output_level``, seconds."""
        if input_signal <= 0:
            raise ConfigurationError("input signal must be positive")
        output_level = self.supply / 2 if output_level is None else output_level
        if output_level <= input_signal:
            return 0.0
        return self.regeneration_tau() * math.log(output_level / input_signal)

    # -- energy ---------------------------------------------------------------------

    def energy_per_operation(self) -> float:
        """Energy of one sense (fire + restore internal nodes), joules."""
        base = self.internal_cap * self.supply ** 2
        tuning_overhead = 0.15 * base if self.tunable else 0.0
        return base + tuning_overhead
