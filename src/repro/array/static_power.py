"""Cell static power: SRAM leakage vs DRAM refresh power (paper Fig. 7c).

The paper's definition (Sec. IV): "The cell static power consumption is
given as the static leakage for the SRAM, compared to the power consumed
by the refresh operation, when all the cells in the matrix are being
refreshed."  So:

* SRAM:  P = N_cells * I_leak_cell * VDD   (burned continuously)
* DRAM:  P = N_rows * E_refresh_row / t_retention   (burned per restore)

The asymmetry is the paper's core insight: "the static leakage of an
SRAM is directly consumed, while the leakage of a DRAM cell consumes
energy only when the cell is restored."
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.array.energy import EnergyModel
from repro.array.organization import ArrayOrganization

#: Controllers refresh with margin below the worst-case retention; the
#: refresh period is the retention divided by this guard band.
REFRESH_GUARD_FACTOR = 2.0


@dataclasses.dataclass(frozen=True)
class StaticPowerReport:
    """Cell-array static power of one matrix, watts."""

    power: float
    mechanism: str  # "leakage" or "refresh"
    retention_time: float | None = None
    refresh_row_energy: float | None = None

    def __post_init__(self) -> None:
        if self.power < 0:
            raise ConfigurationError("static power must be >= 0")


@dataclasses.dataclass(frozen=True)
class StaticPowerModel:
    """Computes the cell static power of an organization.

    For dynamic cells ``retention_time`` defaults to the cell's 6-sigma
    worst case (the paper's conservative choice: the whole matrix is
    refreshed at the rate its worst cell needs).
    """

    organization: ArrayOrganization
    energy_model: EnergyModel
    retention_time: float | None = None
    retention_sigma: float = 6.0
    retention_samples: int = 2000
    refresh_guard: float = REFRESH_GUARD_FACTOR

    def refresh_period(self) -> float:
        """Actual refresh period: worst-case retention / guard band."""
        if self.refresh_guard < 1.0:
            raise ConfigurationError("refresh guard must be >= 1")
        return self.resolved_retention() / self.refresh_guard

    def resolved_retention(self) -> float:
        """Retention period used for refresh-power accounting, seconds."""
        if self.retention_time is not None:
            if self.retention_time <= 0:
                raise ConfigurationError("retention time must be positive")
            return self.retention_time
        cell = self.organization.cell
        if cell.retention is None:
            raise ConfigurationError("cell has no retention model")
        stats = cell.retention.statistics(
            count=self.retention_samples, n_sigma=self.retention_sigma)
        return stats.worst_case

    def report(self) -> StaticPowerReport:
        """Static power of the cell array."""
        org = self.organization
        if org.cell.is_dynamic:
            period = self.refresh_period()
            row_energy = self.energy_model.refresh_row_energy()
            power = org.n_words * row_energy / period
            return StaticPowerReport(
                power=power,
                mechanism="refresh",
                retention_time=period,
                refresh_row_energy=row_energy,
            )
        power = (org.total_bits * org.cell.standby_leakage
                 * org.node.vdd)
        return StaticPowerReport(power=power, mechanism="leakage")
