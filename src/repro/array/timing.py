"""Access-time model: the read pipeline of paper Fig. 1/Fig. 3.

The access path is::

    address -> decoder -> GWL -> LWL receiver -> LWL
            -> cell signal on LBL -> local SA -> GBL (low swing)
            -> global SA -> mux/output

Each stage is priced from the organization's geometry and the device
model.  Two memory-design realities are modelled explicitly rather than
hidden in the component formulas:

* ``CLOCK_OVERHEAD_FO4`` — address latching, clock distribution and
  output capture; present in any synchronous macro.
* ``SENSE_MARGIN_FACTOR`` — the SA-enable timing chain (the "tunable
  delay lines" of the paper / [10]) must wait for *worst-case* signal
  development across corners and mismatch, not the nominal value; the
  factor stretches the signal-development + sense stages accordingly.
* ``CORNER_FACTOR`` — papers quote worst-case (slow corner, low supply)
  timing; the device cards here are typical, so reported totals carry
  this derating.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict

from repro.errors import ConfigurationError
from repro.tech.node import Polarity, VtFlavor
from repro.tech.transistor import Mosfet
from repro.array.decoder import DecoderModel
from repro.array.organization import ArrayOrganization
from repro.array.senseamp import SenseAmplifier
from repro.units import mV, nA

CLOCK_OVERHEAD_FO4 = 12.0
SENSE_MARGIN_FACTOR = 1.8
CORNER_FACTOR = 1.6
LEVEL_SHIFTER_FO4 = 2.0  # overdriven-WL level shifter (pumped supply)
GBL_SWING = 0.1  # volts, 0.4 V -> 0.3 V (paper Fig. 3)
GBL_SUPPLY = 0.4  # volts, the vddgbl rail of paper Fig. 4


@dataclasses.dataclass(frozen=True)
class AccessTiming:
    """Per-stage read access time breakdown, seconds."""

    decode: float
    wordline: float
    bitline: float
    local_sense: float
    global_bitline: float
    global_sense: float
    output: float
    clocking: float

    @property
    def total(self) -> float:
        return (self.decode + self.wordline + self.bitline + self.local_sense
                + self.global_bitline + self.global_sense + self.output
                + self.clocking)

    def breakdown(self) -> Dict[str, float]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class TimingModel:
    """Access-time estimator for one array organization.

    The local SA restores the cell *while* the GBL/global-SA stages run
    (paper Sec. II: "the write after read operation is performed while
    the GBL signal is sensed"), so the write-back never appears in the
    read access time — one of the two architectural wins.
    """

    organization: ArrayOrganization
    local_sa: SenseAmplifier
    global_sa: SenseAmplifier
    corner_factor: float = CORNER_FACTOR

    def __post_init__(self) -> None:
        if self.corner_factor < 1.0:
            raise ConfigurationError("corner factor must be >= 1")

    # -- helper devices -----------------------------------------------------

    @property
    def _node(self):
        return self.organization.node

    def _fo4(self) -> float:
        """Fanout-of-4 inverter delay of the node, seconds."""
        nmos = Mosfet(self._node, Polarity.NMOS, VtFlavor.SVT,
                      width=self._node.width_units(2.0))
        pmos = Mosfet(self._node, Polarity.PMOS, VtFlavor.SVT,
                      width=self._node.width_units(4.0))
        c_in = nmos.gate_capacitance() + pmos.gate_capacitance()
        r_eff = 0.5 * (nmos.on_resistance() + pmos.on_resistance())
        return 0.69 * r_eff * (4.0 * c_in) + 0.69 * r_eff * c_in

    def _read_buffer(self) -> Mosfet:
        """The 6-unit LVT read-buffer output device of paper Fig. 4."""
        return Mosfet(self._node, Polarity.NMOS, VtFlavor.LVT,
                      width=self._node.width_units(6.0))

    # -- stages --------------------------------------------------------------

    def decode_delay(self) -> float:
        """Address decode + GWL propagation."""
        org = self.organization
        bits = max(1, int(math.log2(org.n_words)))
        decoder = DecoderModel(self._node, n_address_bits=bits,
                               load_cap=org.gwl_capacitance())
        gwl = org.global_wordline()
        distributed = 0.38 * gwl.resistance * gwl.capacitance
        return decoder.delay() + distributed

    def wordline_delay(self) -> float:
        """LWL receiver + LWL rise to the cell gates.

        An overdriven word line (DRAM technology, 1.7 V) pays a level
        shifter into the pumped supply domain and a slower rise — the
        pump rail sources less current and the swing is larger.
        """
        org = self.organization
        receiver = 2.0 * self._fo4()
        driver = Mosfet(self._node, Polarity.PMOS, VtFlavor.SVT,
                        width=self._node.width_units(8.0))
        lwl = org.local_wordline()
        rise = lwl.elmore_delay(
            driver_resistance=driver.on_resistance(),
            load_capacitance=org.lwl_capacitance() - lwl.capacitance,
        )
        overdrive_ratio = org.cell.wordline_voltage / self._node.vdd
        if overdrive_ratio > 1.0:
            receiver += LEVEL_SHIFTER_FO4 * self._fo4()
            rise *= overdrive_ratio
        return receiver + rise

    def bitline_delay(self) -> float:
        """Cell signal development on the LBL up to the SA-enable margin."""
        org = self.organization
        required = self.local_sa.required_input_signal()
        if org.cell.is_dynamic:
            # Single-ended sensing against the half-capacitance dummy
            # reference: only half the step differentiates '0' from '1'.
            required = 2.0 * required
            final = org.read_signal()
            if required >= final:
                raise ConfigurationError(
                    f"charge-sharing signal {final / mV:.0f} mV below the "
                    f"local SA requirement {required / mV:.0f} mV: "
                    "shorten the LBL or enlarge the cell capacitor"
                )
            c_cell = org.cell.charge_sharing_cap
            c_lbl = org.lbl_capacitance()
            c_series = c_cell * c_lbl / (c_cell + c_lbl)
            # Effective access resistance at the operating WL voltage.
            scale = org.cell.wordline_cap_per_cell / (
                self._node.gate_cap_per_width * self._node.width_units(1.0))
            access = Mosfet(self._node, Polarity.NMOS, VtFlavor.HVT,
                            width=self._node.width_units(max(1.0, scale)))
            i_on = access.drain_current(vgs=org.cell.wordline_voltage,
                                        vds=0.5)
            r_on = 0.5 / max(i_on, 1 * nA)
            tau = r_on * c_series
            develop = -tau * math.log(1.0 - required / final)
        else:
            develop = org.lbl_capacitance() * required / org.cell.read_current
        return develop * SENSE_MARGIN_FACTOR

    def local_sense_delay(self) -> float:
        """Local SA regeneration from the enable margin to full swing."""
        required = self.local_sa.required_input_signal()
        return self.local_sa.sense_delay(required) * SENSE_MARGIN_FACTOR

    def global_bitline_delay(self) -> float:
        """Read buffer developing the low-swing GBL step."""
        org = self.organization
        buffer = self._read_buffer()
        i_drive = buffer.drain_current(vgs=self._node.vdd, vds=GBL_SUPPLY - GBL_SWING / 2)
        slew = org.gbl_capacitance() * GBL_SWING / max(i_drive, 1 * nA)
        gbl = org.global_bitline()
        distributed = 0.38 * gbl.resistance * gbl.capacitance
        return slew + distributed

    def global_sense_delay(self) -> float:
        """Global SA resolving the GBL step."""
        return self.global_sa.sense_delay(GBL_SWING) * SENSE_MARGIN_FACTOR

    def output_delay(self) -> float:
        """Column mux + output driver."""
        return 3.0 * self._fo4()

    def clocking_delay(self) -> float:
        """Latching / clock distribution overhead."""
        return CLOCK_OVERHEAD_FO4 * self._fo4()

    # -- assembly ---------------------------------------------------------------

    def access(self) -> AccessTiming:
        """Worst-case read access time breakdown."""
        c = self.corner_factor
        return AccessTiming(
            decode=self.decode_delay() * c,
            wordline=self.wordline_delay() * c,
            bitline=self.bitline_delay() * c,
            local_sense=self.local_sense_delay() * c,
            global_bitline=self.global_bitline_delay() * c,
            global_sense=self.global_sense_delay() * c,
            output=self.output_delay() * c,
            clocking=self.clocking_delay() * c,
        )

    def access_time(self) -> float:
        """Total worst-case read access time, seconds."""
        return self.access().total

    def write_after_read_delay(self) -> float:
        """Local restore time (hidden from the access path).

        The local SA drives the LBL back to full levels and through the
        access device into the cell; bounded by the cell-transfer RC.
        Used by the refresh model to price a refresh slot.
        """
        org = self.organization
        if not org.cell.is_dynamic:
            return 0.0
        c_cell = org.cell.charge_sharing_cap
        scale = org.cell.wordline_cap_per_cell / (
            self._node.gate_cap_per_width * self._node.width_units(1.0))
        access = Mosfet(self._node, Polarity.NMOS, VtFlavor.HVT,
                        width=self._node.width_units(max(1.0, scale)))
        i_on = access.drain_current(vgs=org.cell.wordline_voltage, vds=0.5)
        r_on = 0.5 / max(i_on, 1 * nA)
        # Four time constants to restore within a few percent.
        return 4.0 * r_on * (c_cell + org.lbl_capacitance()) * self.corner_factor
