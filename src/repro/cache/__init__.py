"""Cache substrate: the application level of the paper.

The paper positions the fast DRAM as a replacement for "low memory
hierarchy SRAM" — i.e. cache arrays.  This package provides:

* :mod:`repro.cache.cache` — a set-associative write-back cache model,
* :mod:`repro.cache.workloads` — synthetic address-trace generators,
* :mod:`repro.cache.hierarchy` — the hybrid L1-fast-DRAM / L2-DRAM
  stack of paper Fig. 2 driven by a trace,
* :mod:`repro.cache.activity` — the activity-to-total-power translation
  behind paper Fig. 9.
"""

from repro.cache.cache import Cache, CacheStats, AccessResult
from repro.cache.workloads import (
    uniform_addresses,
    zipf_addresses,
    streaming_addresses,
    looping_addresses,
)
from repro.cache.hierarchy import CacheHierarchy, HierarchyLevel, HierarchyStats
from repro.cache.activity import ActivityPowerModel, PowerPoint
from repro.cache.prefetch import NextLinePrefetcher, PrefetchStats
from repro.cache.tracefile import load_trace, save_trace, trace_from_text, trace_to_text

__all__ = [
    "Cache",
    "CacheStats",
    "AccessResult",
    "uniform_addresses",
    "zipf_addresses",
    "streaming_addresses",
    "looping_addresses",
    "CacheHierarchy",
    "HierarchyLevel",
    "HierarchyStats",
    "ActivityPowerModel",
    "NextLinePrefetcher",
    "PrefetchStats",
    "load_trace",
    "save_trace",
    "trace_from_text",
    "trace_to_text",
    "PowerPoint",
]
