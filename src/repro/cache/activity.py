"""Activity-to-power translation (paper Fig. 9).

Fig. 9 plots total power against *activity* — the fraction of clock
cycles carrying an access, with a random 50/50 read/write mix.  At high
activity dynamic energy dominates; at low activity the macro's static
power floor does, which is where the DRAM's 10x refresh-vs-leakage win
shows.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.array.macro import MacroDesign
from repro.errors import ConfigurationError
from repro.units import MHz


@dataclasses.dataclass(frozen=True)
class PowerPoint:
    """Total power of one macro at one activity level."""

    activity: float
    dynamic_power: float
    static_power: float

    @property
    def total(self) -> float:
        return self.dynamic_power + self.static_power


@dataclasses.dataclass(frozen=True)
class ActivityPowerModel:
    """Total-power curves for one macro.

    Parameters
    ----------
    macro:
        The memory macro under analysis.
    clock_frequency:
        Access clock (the paper's refresh study runs at 500 MHz).
    read_fraction:
        Read share of accesses (0.5 = the paper's random mix).
    """

    macro: MacroDesign
    clock_frequency: float = 500 * MHz
    read_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.clock_frequency <= 0:
            raise ConfigurationError("clock frequency must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read fraction must lie in [0, 1]")

    def average_access_energy(self) -> float:
        """Energy of the average access under the read/write mix."""
        read = self.macro.read_energy().total
        write = self.macro.write_energy().total
        return self.read_fraction * read + (1.0 - self.read_fraction) * write

    def power_at(self, activity: float) -> PowerPoint:
        """Total power at one activity level."""
        if not 0.0 <= activity <= 1.0:
            raise ConfigurationError("activity must lie in [0, 1]")
        dynamic = (activity * self.clock_frequency
                   * self.average_access_energy())
        return PowerPoint(
            activity=activity,
            dynamic_power=dynamic,
            static_power=self.macro.static_power().power,
        )

    def curve(self, activities: Sequence[float]) -> List[PowerPoint]:
        """Full Fig. 9 series for this macro."""
        return [self.power_at(a) for a in activities]

    def static_dominated_below(self) -> float:
        """Activity under which static power exceeds dynamic power.

        The figure-of-merit for cache arrays that idle most of the time
        — exactly the regime the paper targets.
        """
        static = self.macro.static_power().power
        per_activity = self.clock_frequency * self.average_access_energy()
        if per_activity <= 0:
            raise ConfigurationError("macro has no dynamic energy")
        return min(1.0, static / per_activity)
