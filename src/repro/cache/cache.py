"""Set-associative write-back cache model.

A behavioural cache — hits, misses, LRU replacement, dirty write-back —
driven by word addresses.  The hierarchy model combines it with the
macro models to translate a workload into energy and time.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro import obs
from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    write: bool
    evicted_dirty_line: Optional[int] = None  # base address of victim


@dataclasses.dataclass
class CacheStats:
    """Running counters of one cache instance."""

    reads: int = 0
    writes: int = 0
    read_hits: int = 0
    write_hits: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0


class _Line:
    """One cache line's bookkeeping."""

    __slots__ = ("tag", "dirty", "stamp")

    def __init__(self, tag: int, stamp: int) -> None:
        self.tag = tag
        self.dirty = False
        self.stamp = stamp


class Cache:
    """A set-associative cache with configurable write policies.

    Parameters
    ----------
    capacity_words:
        Total data capacity in (32-bit) words.
    ways:
        Associativity.
    line_words:
        Words per cache line.
    write_back:
        True (default): dirty lines written out on eviction.  False:
        write-through — every write also goes to the next level (the
        hierarchy model prices it), and lines are never dirty.
    write_allocate:
        True (default): a write miss allocates the line.  False:
        write-no-allocate — write misses bypass the cache (the usual
        companion of write-through).
    """

    def __init__(self, capacity_words: int, ways: int = 4,
                 line_words: int = 8, write_back: bool = True,
                 write_allocate: bool = True) -> None:
        if capacity_words < 1 or ways < 1 or line_words < 1:
            raise ConfigurationError("cache parameters must be >= 1")
        if capacity_words % (ways * line_words):
            raise ConfigurationError(
                f"{capacity_words} words do not divide into {ways} ways of "
                f"{line_words}-word lines"
            )
        self.capacity_words = capacity_words
        self.ways = ways
        self.line_words = line_words
        self.write_back = write_back
        self.write_allocate = write_allocate
        self.n_sets = capacity_words // (ways * line_words)
        self._sets: List[Dict[int, _Line]] = [dict() for _ in range(self.n_sets)]
        self._clock = 0
        self.stats = CacheStats()

    # -- address helpers ----------------------------------------------------

    def _locate(self, address: int) -> tuple[int, int]:
        if address < 0:
            raise ConfigurationError("addresses must be >= 0")
        line_address = address // self.line_words
        return line_address % self.n_sets, line_address // self.n_sets

    def _line_base(self, set_index: int, tag: int) -> int:
        return (tag * self.n_sets + set_index) * self.line_words

    # -- the access path --------------------------------------------------------

    def access(self, address: int, write: bool = False) -> AccessResult:
        """Access one word; allocate per policy; LRU-evict when full."""
        self._clock += 1
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1

        line = ways.get(tag)
        if line is not None:
            line.stamp = self._clock
            if write:
                line.dirty = self.write_back
                self.stats.write_hits += 1
            else:
                self.stats.read_hits += 1
            return AccessResult(hit=True, write=write)

        # Write miss under no-allocate: bypass the cache entirely.
        if write and not self.write_allocate:
            return AccessResult(hit=False, write=True)

        # Miss: allocate, evicting LRU if the set is full.
        evicted_dirty: Optional[int] = None
        if len(ways) >= self.ways:
            victim_tag = min(ways, key=lambda t: ways[t].stamp)
            victim = ways.pop(victim_tag)
            self.stats.evictions += 1
            obs.event("cache.eviction", set=set_index, tag=victim_tag,
                      dirty=victim.dirty)
            if victim.dirty:
                self.stats.dirty_evictions += 1
                evicted_dirty = self._line_base(set_index, victim_tag)
        new_line = _Line(tag=tag, stamp=self._clock)
        new_line.dirty = write and self.write_back
        ways[tag] = new_line
        return AccessResult(hit=False, write=write,
                            evicted_dirty_line=evicted_dirty)

    # -- introspection -----------------------------------------------------------

    def publish_metrics(self, prefix: str = "cache") -> None:
        """Export the running stats as gauges under ``prefix``.

        Gauges (not counters) because :class:`CacheStats` is already
        cumulative — re-publishing after more accesses overwrites with
        the new totals instead of double counting.
        """
        m = obs.metrics()
        stats = self.stats
        m.gauge(f"{prefix}.reads").set(stats.reads)
        m.gauge(f"{prefix}.writes").set(stats.writes)
        m.gauge(f"{prefix}.hits").set(stats.hits)
        m.gauge(f"{prefix}.misses").set(stats.accesses - stats.hits)
        m.gauge(f"{prefix}.evictions").set(stats.evictions)
        m.gauge(f"{prefix}.dirty_evictions").set(stats.dirty_evictions)
        m.gauge(f"{prefix}.hit_rate").set(stats.hit_rate)

    def contains(self, address: int) -> bool:
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def flush(self) -> int:
        """Drop every line; returns how many were dirty."""
        dirty = sum(
            1 for ways in self._sets for line in ways.values() if line.dirty)
        for ways in self._sets:
            ways.clear()
        return dirty
