"""The hybrid 3D cache hierarchy of paper Fig. 2, driven by a trace.

Level 1 is the paper's fast DRAM, level 2 a dense conventional-
organization DRAM, both on the memory die; misses past L2 go to a
backing store reached through the package.  The model walks an address
trace through the behavioural caches and prices every macro access with
the corresponding :class:`~repro.array.macro.MacroDesign`, yielding
average access time and energy per operation — the system-level payoff
of replacing the SRAM L1.
"""

from __future__ import annotations

import dataclasses
import logging
from typing import List, Optional, Tuple

from repro import obs
from repro.array.macro import MacroDesign
from repro.cache.cache import Cache
from repro.cache.workloads import AddressTrace
from repro.errors import ConfigurationError
from repro.units import ns, pJ

_log = logging.getLogger(__name__)


@dataclasses.dataclass(frozen=True)
class HierarchyLevel:
    """One cache level: behavioural cache + its silicon macro.

    ``faults`` (a :class:`~repro.faults.injector.CacheFaultModel`)
    optionally degrades the level: mapped-out rows shrink the bits the
    cache may claim, and accesses landing on ECC-reliant rows are
    counted as corrected errors in the run's stats.
    """

    name: str
    cache: Cache
    macro: MacroDesign
    faults: Optional[object] = None  # CacheFaultModel, kept duck-typed

    def word_capacity(self) -> int:
        return self.cache.capacity_words

    def usable_bits(self) -> int:
        """Macro bits available after fault-induced capacity loss."""
        total = self.macro.organization.total_bits
        if self.faults is None:
            return total
        return self.faults.usable_bits(total)

    def check_macro_fits(self) -> None:
        """The behavioural capacity must fit in the macro's usable bits."""
        needed = self.cache.capacity_words * 32
        available = self.usable_bits()
        if needed > available:
            total = self.macro.organization.total_bits
            degraded = (f" ({total} before capacity loss)"
                        if available != total else "")
            raise ConfigurationError(
                f"level {self.name!r}: cache needs {needed} bits, macro "
                f"provides {available}{degraded}"
            )


@dataclasses.dataclass(frozen=True)
class HierarchyStats:
    """Aggregate outcome of one trace run."""

    accesses: int
    level_hits: Tuple[int, ...]
    backing_accesses: int
    total_energy: float
    total_time: float
    #: Expected ECC correction events across all levels (0.0 without
    #: fault models attached — the healthy hierarchy is unchanged).
    corrected_errors: float = 0.0

    @property
    def average_energy(self) -> float:
        return self.total_energy / self.accesses if self.accesses else 0.0

    @property
    def average_time(self) -> float:
        return self.total_time / self.accesses if self.accesses else 0.0

    def hit_rate(self, level: int) -> float:
        if self.accesses == 0:
            return 0.0
        return self.level_hits[level] / self.accesses


@dataclasses.dataclass
class CacheHierarchy:
    """An inclusive two-plus-level hierarchy over memory macros.

    ``backing_latency`` / ``backing_energy`` price an access that misses
    every level (off-stack memory through the package).
    """

    levels: List[HierarchyLevel]
    backing_latency: float = 50 * ns
    backing_energy: float = 500 * pJ

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigurationError("hierarchy needs at least one level")
        capacities = [lvl.word_capacity() for lvl in self.levels]
        if any(b <= a for a, b in zip(capacities, capacities[1:])):
            raise ConfigurationError(
                "levels must strictly grow in capacity outwards"
            )
        for level in self.levels:
            level.check_macro_fits()
        # The macro figures are pure functions of the (immutable) design;
        # price each level once instead of re-deriving the full energy
        # and timing models on every one of the trace's accesses.
        self._costs = {}
        for index, level in enumerate(self.levels):
            macro = level.macro
            time = macro.access_time()
            self._costs[index] = {
                False: (macro.read_energy().total, time),
                True: (macro.write_energy().total, time),
            }

    # -- pricing helpers ------------------------------------------------------

    def _access_cost(self, index: int, write: bool) -> Tuple[float, float]:
        return self._costs[index][write]

    # -- the walk -----------------------------------------------------------------

    def run(self, trace: AddressTrace) -> HierarchyStats:
        """Drive the hierarchy with ``trace``; returns aggregate stats.

        A miss at level i probes level i+1 (paying its access), fills
        the line back (one write per level filled), and dirty evictions
        write through to the next level.
        """
        with obs.span("hierarchy.run", levels=len(self.levels),
                      accesses=len(trace)):
            stats = self._walk(trace)
        m = obs.metrics()
        m.counter("hierarchy.accesses").inc(stats.accesses)
        m.counter("hierarchy.backing_accesses").inc(stats.backing_accesses)
        if stats.corrected_errors:
            m.counter("hierarchy.corrected_errors").inc(
                int(round(stats.corrected_errors)))
        for level in self.levels:
            level.cache.publish_metrics(prefix=f"cache.{level.name}")
        _log.debug("hierarchy run: %d accesses, hits per level %s, "
                   "%d to backing", stats.accesses, stats.level_hits,
                   stats.backing_accesses)
        return stats

    def _walk(self, trace: AddressTrace) -> HierarchyStats:
        total_energy = 0.0
        total_time = 0.0
        hits = [0] * len(self.levels)
        backing = 0
        corrected = 0.0

        def touch(index: int) -> None:
            nonlocal corrected
            faults = self.levels[index].faults
            if faults is not None:
                corrected += faults.correction_probability()

        for address, write in zip(trace.addresses, trace.writes):
            address = int(address)
            write = bool(write)
            pending_writeback: Optional[int] = None
            hit_recorded = False
            for index, level in enumerate(self.levels):
                energy, time = self._access_cost(index, write)
                total_energy += energy
                total_time += time
                touch(index)
                result = level.cache.access(address, write=write)
                if result.evicted_dirty_line is not None:
                    pending_writeback = result.evicted_dirty_line
                if result.hit:
                    if not hit_recorded:
                        hits[index] += 1
                        hit_recorded = True
                    if write and not getattr(level.cache, "write_back",
                                             True):
                        # Write-through: the write continues outward.
                        continue
                    break
            else:
                if not (hit_recorded and not write):
                    backing += 1
                    total_energy += self.backing_energy
                    total_time += self.backing_latency
            if pending_writeback is not None and len(self.levels) > 1:
                # Dirty victim written to the outermost level.
                outer = self.levels[-1]
                energy, time = self._access_cost(len(self.levels) - 1,
                                                 write=True)
                total_energy += energy
                total_time += time
                touch(len(self.levels) - 1)
                outer.cache.access(pending_writeback, write=True)

        return HierarchyStats(
            accesses=len(trace),
            level_hits=tuple(hits),
            backing_accesses=backing,
            total_energy=total_energy,
            total_time=total_time,
            corrected_errors=corrected,
        )
