"""Sequential (next-line) prefetching.

Streaming traffic defeats a plain cache (every line is a compulsory
miss); a next-line prefetcher converts most of those misses into hits
at the cost of extra next-level traffic.  The wrapper keeps the
:class:`~repro.cache.cache.Cache` interface so the hierarchy model can
host prefetched and plain levels interchangeably.
"""

from __future__ import annotations

import dataclasses

from repro.cache.cache import AccessResult, Cache, CacheStats
from repro.errors import ConfigurationError


@dataclasses.dataclass
class PrefetchStats:
    """Prefetcher-specific counters."""

    issued: int = 0
    useful: int = 0  # prefetched lines later hit by demand accesses

    @property
    def accuracy(self) -> float:
        if self.issued == 0:
            return 0.0
        return self.useful / self.issued


class NextLinePrefetcher:
    """Tagged next-line prefetcher over a cache.

    On a demand miss of line L the prefetcher brings in L+1 … L+depth.
    Prefetched lines are tagged; the first demand hit on one counts as
    a *useful* prefetch (the standard accuracy metric).
    """

    def __init__(self, cache: Cache, depth: int = 1) -> None:
        if depth < 1:
            raise ConfigurationError("prefetch depth must be >= 1")
        self.cache = cache
        self.depth = depth
        self.prefetch_stats = PrefetchStats()
        self._pending_tags: set[int] = set()

    # -- delegation ---------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats

    @property
    def line_words(self) -> int:
        return self.cache.line_words

    @property
    def capacity_words(self) -> int:
        return self.cache.capacity_words

    @property
    def write_back(self) -> bool:
        return self.cache.write_back

    def contains(self, address: int) -> bool:
        return self.cache.contains(address)

    def publish_metrics(self, prefix: str = "cache") -> None:
        """Demand-cache gauges plus the prefetcher's own counters."""
        from repro import obs
        self.cache.publish_metrics(prefix=prefix)
        m = obs.metrics()
        m.gauge(f"{prefix}.prefetches_issued").set(self.prefetch_stats.issued)
        m.gauge(f"{prefix}.prefetches_useful").set(self.prefetch_stats.useful)
        m.gauge(f"{prefix}.prefetch_accuracy").set(
            self.prefetch_stats.accuracy)

    # -- the access path -------------------------------------------------------

    def access(self, address: int, write: bool = False) -> AccessResult:
        """Demand access; triggers next-line prefetches on read misses."""
        line_address = address // self.cache.line_words
        was_prefetched = line_address in self._pending_tags

        result = self.cache.access(address, write=write)

        if result.hit and was_prefetched:
            self.prefetch_stats.useful += 1
            self._pending_tags.discard(line_address)

        if not result.hit and not write:
            for offset in range(1, self.depth + 1):
                target_line = line_address + offset
                target_word = target_line * self.cache.line_words
                if not self.cache.contains(target_word):
                    # A prefetch is a read fill that bypasses the demand
                    # statistics: issue it directly against the arrays.
                    self._fill(target_word)
                    self.prefetch_stats.issued += 1
                    self._pending_tags.add(target_line)
        return result

    def _fill(self, address: int) -> None:
        """Install a line without touching demand counters."""
        snapshot = dataclasses.replace(self.cache.stats)
        self.cache.access(address, write=False)
        # Restore demand statistics; keep structural counters (evictions)
        # because prefetches genuinely displace lines.
        self.cache.stats.reads = snapshot.reads
        self.cache.stats.read_hits = snapshot.read_hits
        self.cache.stats.writes = snapshot.writes
        self.cache.stats.write_hits = snapshot.write_hits
