"""Address-trace file I/O.

A minimal, line-oriented text format so external traces can drive the
cache models (and synthetic traces can be archived):

    # comment lines start with '#'
    R 0x1a2b
    W 4096

One access per line: ``R``/``W`` followed by a word address (decimal or
``0x`` hex).  Round-trips exactly through :func:`save_trace` /
:func:`load_trace`.
"""

from __future__ import annotations

import io
import pathlib
from typing import Union

import numpy as np

from repro.cache.workloads import AddressTrace
from repro.errors import ConfigurationError


def trace_to_text(trace: AddressTrace) -> str:
    """Serialise a trace to the text format."""
    buffer = io.StringIO()
    buffer.write("# repro address trace: one access per line\n")
    for address, write in zip(trace.addresses, trace.writes):
        kind = "W" if write else "R"
        buffer.write(f"{kind} {int(address)}\n")
    return buffer.getvalue()


def trace_from_text(text: str) -> AddressTrace:
    """Parse the text format back into a trace."""
    addresses = []
    writes = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2 or parts[0] not in ("R", "W"):
            raise ConfigurationError(
                f"trace line {line_number}: expected 'R|W <address>', "
                f"got {raw!r}")
        try:
            address = int(parts[1], 0)  # decimal or 0x-hex
        except ValueError as exc:
            raise ConfigurationError(
                f"trace line {line_number}: bad address {parts[1]!r}"
            ) from exc
        if address < 0:
            raise ConfigurationError(
                f"trace line {line_number}: negative address")
        addresses.append(address)
        writes.append(parts[0] == "W")
    if not addresses:
        raise ConfigurationError("trace file contains no accesses")
    return AddressTrace(
        addresses=np.array(addresses, dtype=np.int64),
        writes=np.array(writes, dtype=bool),
    )


def save_trace(trace: AddressTrace,
               path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write ``trace`` to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.write_text(trace_to_text(trace))
    return path


def load_trace(path: Union[str, pathlib.Path]) -> AddressTrace:
    """Read a trace file."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigurationError(f"no trace file at {path}")
    return trace_from_text(path.read_text())
