"""Synthetic address-trace generators.

Traces are integer numpy arrays of word addresses, paired with a boolean
write mask.  The mixes mirror the traffic classes the paper's intro
motivates: random (cache-unfriendly), zipf (hot working set), streaming
(no reuse) and looping (kernel working set).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class AddressTrace:
    """A word-address trace with per-access read/write flags."""

    addresses: np.ndarray
    writes: np.ndarray

    def __post_init__(self) -> None:
        if self.addresses.shape != self.writes.shape:
            raise ConfigurationError("addresses and writes must align")
        if len(self.addresses) == 0:
            raise ConfigurationError("trace must be non-empty")

    def __len__(self) -> int:
        return len(self.addresses)

    @property
    def write_fraction(self) -> float:
        return float(np.mean(self.writes))


def _writes(n: int, write_fraction: float,
            rng: np.random.Generator) -> np.ndarray:
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError("write fraction must lie in [0, 1]")
    return rng.random(n) < write_fraction


def uniform_addresses(n: int, footprint_words: int,
                      rng: np.random.Generator,
                      write_fraction: float = 0.5) -> AddressTrace:
    """Uniform random over the footprint — the paper's Fig. 9 pattern."""
    if n < 1 or footprint_words < 1:
        raise ConfigurationError("trace and footprint must be >= 1")
    return AddressTrace(
        addresses=rng.integers(0, footprint_words, size=n),
        writes=_writes(n, write_fraction, rng),
    )


def zipf_addresses(n: int, footprint_words: int,
                   rng: np.random.Generator,
                   exponent: float = 1.2,
                   write_fraction: float = 0.3) -> AddressTrace:
    """Zipf-distributed hot set (typical cached working set)."""
    if exponent <= 1.0:
        raise ConfigurationError("zipf exponent must exceed 1")
    raw = rng.zipf(exponent, size=n)
    addresses = (raw - 1) % footprint_words
    return AddressTrace(
        addresses=addresses.astype(np.int64),
        writes=_writes(n, write_fraction, rng),
    )


def streaming_addresses(n: int, footprint_words: int,
                        rng: np.random.Generator,
                        stride: int = 1,
                        write_fraction: float = 0.1) -> AddressTrace:
    """Sequential streaming with a stride — no temporal reuse."""
    if stride < 1:
        raise ConfigurationError("stride must be >= 1")
    addresses = (np.arange(n, dtype=np.int64) * stride) % footprint_words
    return AddressTrace(
        addresses=addresses,
        writes=_writes(n, write_fraction, rng),
    )


def looping_addresses(n: int, loop_words: int,
                      rng: np.random.Generator,
                      write_fraction: float = 0.2) -> AddressTrace:
    """A kernel looping over a fixed working set (high reuse)."""
    if loop_words < 1:
        raise ConfigurationError("loop size must be >= 1")
    addresses = np.arange(n, dtype=np.int64) % loop_words
    return AddressTrace(
        addresses=addresses,
        writes=_writes(n, write_fraction, rng),
    )
