"""Memory cell models: the 6T SRAM baseline cell and the paper's 1T1C cells.

Two DRAM cell builds matter for the paper's methodology (Fig. 6):

* :func:`~repro.cells.dram1t1c.Dram1t1cCell.scratchpad` — the 11 fF CMOS
  gate-capacitance cell of the test memory, 1.2 V limited;
* :func:`~repro.cells.dram1t1c.Dram1t1cCell.dram_technology` — the 30 fF
  deep-trench cell with a 1.7 V overdriven word line.

Every cell exports a :class:`~repro.cells.cellspec.CellSpec`, the
interface consumed by :mod:`repro.array`.
"""

from repro.cells.cellspec import CellSpec, StorageKind
from repro.cells.sram6t import Sram6tCell, static_noise_margin, inverter_vtc
from repro.cells.dram1t1c import Dram1t1cCell

__all__ = [
    "CellSpec",
    "StorageKind",
    "Sram6tCell",
    "Dram1t1cCell",
    "static_noise_margin",
    "inverter_vtc",
]
