"""The cell-to-array interface.

:class:`CellSpec` captures everything the hierarchical array model needs
to know about a bit cell, so the same array machinery prices SRAM and
DRAM matrices (which is exactly how the paper obtains comparable
figures: same peripheral architecture, different cell).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from repro.errors import ConfigurationError
from repro.variability.retention import RetentionModel


class StorageKind(enum.Enum):
    """Static (SRAM-like) vs dynamic (DRAM-like, needs refresh) storage."""

    STATIC = "static"
    DYNAMIC = "dynamic"


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """Array-facing description of one bit cell.

    Attributes
    ----------
    name:
        Human-readable cell name.
    kind:
        Static or dynamic storage.
    area:
        Cell footprint, m^2.
    bitline_cap_per_cell:
        Capacitance one cell adds to its (local) bitline: junction +
        wire share, farads.
    wordline_cap_per_cell:
        Capacitance one cell adds to its word line: access gate(s) +
        wire share, farads.
    read_current:
        Cell drive available to discharge the bitline during a read
        (SRAM) — None for charge-sharing cells that develop a voltage
        step instead.
    charge_sharing_cap:
        Storage capacitance of a dynamic cell — None for static cells.
    stored_high:
        Voltage of a stored '1', volts.
    wordline_voltage:
        Word-line high level required by the cell (may exceed vdd for
        overdriven DRAM word lines).
    standby_leakage:
        Continuous standby leakage of one cell, amperes (the SRAM static
        power term; for DRAM cells this is the storage-node leakage that
        sets retention, *not* a supply current).
    retention:
        Retention model for dynamic cells; None for static.
    """

    name: str
    kind: StorageKind
    area: float
    bitline_cap_per_cell: float
    wordline_cap_per_cell: float
    stored_high: float
    wordline_voltage: float
    standby_leakage: float
    read_current: Optional[float] = None
    charge_sharing_cap: Optional[float] = None
    retention: Optional[RetentionModel] = None

    def __post_init__(self) -> None:
        if self.area <= 0:
            raise ConfigurationError("cell area must be positive")
        if self.bitline_cap_per_cell <= 0 or self.wordline_cap_per_cell <= 0:
            raise ConfigurationError("per-cell line loads must be positive")
        if self.stored_high <= 0 or self.wordline_voltage <= 0:
            raise ConfigurationError("cell voltages must be positive")
        if self.standby_leakage < 0:
            raise ConfigurationError("standby leakage must be >= 0")
        if self.kind is StorageKind.DYNAMIC:
            if self.charge_sharing_cap is None or self.charge_sharing_cap <= 0:
                raise ConfigurationError(
                    "dynamic cells need a positive charge_sharing_cap"
                )
            if self.retention is None:
                raise ConfigurationError("dynamic cells need a retention model")
        else:
            if self.read_current is None or self.read_current <= 0:
                raise ConfigurationError(
                    "static cells need a positive read_current"
                )

    @property
    def is_dynamic(self) -> bool:
        return self.kind is StorageKind.DYNAMIC

    def bitline_voltage_step(self, bitline_cap: float,
                             precharge_voltage: float) -> float:
        """Charge-sharing read signal of a dynamic cell, volts.

        ``bitline_cap`` is the total bitline load in farads;
        ``precharge_voltage`` is in volts.

        The stored '0' develops the full precharge-to-cell difference
        scaled by the capacitive divider — the paper's core limitation
        argument: "the voltage drop is limited by the ratio between the
        DRAM cell capacitance and the bitline capacitance".
        """
        if not self.is_dynamic:
            raise ConfigurationError("voltage step is a dynamic-cell concept")
        if bitline_cap <= 0:
            raise ConfigurationError("bitline cap must be positive")
        c_cell = self.charge_sharing_cap
        return precharge_voltage * c_cell / (c_cell + bitline_cap)
