"""1T1C DRAM cell model — the paper's storage element.

Two builds, matching the methodology of paper Fig. 6:

* :meth:`Dram1t1cCell.scratchpad` — the test-memory cell: an 11 fF CMOS
  gate capacitance in the plain 90 nm logic process, HVT access
  transistor, word line limited to vdd (1.2 V), so the stored '1' is
  degraded by a threshold drop.
* :meth:`Dram1t1cCell.dram_technology` — the estimate cell: 30 fF deep
  trench, word line overdriven to 1.7 V (allowed by DRAM reliability
  rules), full stored '1', 0.3 um^2 footprint.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.tech.capacitor import CapacitorKind, StorageCapacitor
from repro.tech.node import Polarity, TechnologyNode, VtFlavor
from repro.tech.transistor import Mosfet
from repro.units import V, fF
from repro.variability.pelgrom import PelgromModel
from repro.variability.retention import RetentionModel
from repro.cells.cellspec import CellSpec, StorageKind


@dataclasses.dataclass(frozen=True)
class Dram1t1cCell:
    """A 1T1C cell: storage capacitor + access transistor.

    Parameters
    ----------
    node:
        Technology node.
    capacitor:
        Storage capacitor.
    access_units:
        Access transistor width in 120 nm units.
    access_length_factor:
        Access channel length as a multiple of minimum (DRAM array
        devices are drawn long for leakage and mismatch).
    wordline_voltage:
        WL high level.  Checked against ``node.vdd_max``; overdrive
        beyond vdd additionally requires
        ``node.allows_wordline_overdrive`` (the logic process does not).
    bitline_precharge:
        LBL precharge level (1.0 V in the paper's Fig. 3 waveforms).
    """

    node: TechnologyNode
    capacitor: StorageCapacitor
    access_units: float = 2.0
    access_length_factor: float = 1.5
    wordline_voltage: float = 1.2 * V
    wordline_low_voltage: float = 0.0 * V
    bitline_precharge: float = 1.0 * V
    junction_sigma_ln: float = 0.8

    def __post_init__(self) -> None:
        if self.access_units <= 0:
            raise ConfigurationError("access width must be positive")
        if self.wordline_voltage > self.node.vdd_max:
            raise ConfigurationError(
                f"word-line voltage {self.wordline_voltage} V exceeds the "
                f"node's reliability limit {self.node.vdd_max} V"
            )
        if (self.wordline_voltage > self.node.vdd
                and not self.node.allows_wordline_overdrive):
            raise ConfigurationError(
                f"{self.node.name} is a logic process: word-line overdrive "
                "violates its electrical reliability rules (paper Sec. III)"
            )
        if (self.wordline_low_voltage < 0
                and not self.node.allows_wordline_overdrive):
            raise ConfigurationError(
                f"{self.node.name} is a logic process: negative word-line "
                "levels need the DRAM process's dedicated WL supplies"
            )
        if self.wordline_low_voltage > 0:
            raise ConfigurationError("word-line low level must be <= 0")
        if not 0 < self.bitline_precharge <= self.node.vdd:
            raise ConfigurationError("bitline precharge must lie in (0, vdd]")

    # -- construction shortcuts ------------------------------------------------

    @staticmethod
    def _precharge_for(node: TechnologyNode) -> float:
        """LBL precharge level: one precharge-device drop below vdd
        (1.0 V at the nominal 1.2 V supply, paper Fig. 3)."""
        return max(0.4, node.vdd - 0.2)

    @classmethod
    def scratchpad(cls, node: TechnologyNode | None = None) -> "Dram1t1cCell":
        """The CMOS-capacitance test cell (11 fF, no overdrive)."""
        node = TechnologyNode.logic_90nm() if node is None else node
        return cls(
            node=node,
            capacitor=StorageCapacitor.cmos_gate(node, capacitance=11 * fF),
            access_units=2.0,
            access_length_factor=1.5,
            wordline_voltage=node.vdd,
            bitline_precharge=cls._precharge_for(node),
        )

    @classmethod
    def dram_technology(cls, node: TechnologyNode | None = None) -> "Dram1t1cCell":
        """The deep-trench estimate cell (30 fF, 1.7 V word line)."""
        node = TechnologyNode.dram_90nm() if node is None else node
        return cls(
            node=node,
            capacitor=StorageCapacitor.deep_trench(node, capacitance=30 * fF),
            access_units=2.0,
            access_length_factor=1.5,
            wordline_voltage=min(1.7 * V, node.vdd_max),
            wordline_low_voltage=-0.3 * V,  # negative WL low, standard DRAM
            junction_sigma_ln=0.7,  # engineered array junctions spread less
            bitline_precharge=cls._precharge_for(node),
        )

    # -- devices ----------------------------------------------------------------

    @property
    def access(self) -> Mosfet:
        return Mosfet(
            self.node, Polarity.NMOS, VtFlavor.HVT,
            width=self.node.width_units(self.access_units),
            length_factor=self.access_length_factor,
        )

    # -- stored levels -------------------------------------------------------------

    @property
    def stored_high(self) -> float:
        """Voltage of a written '1'.

        Without overdrive the NMOS access device drops a threshold:
        the stored '1' saturates near ``V_WL - vth`` (the scratch-pad
        limitation the 1.7 V overdrive removes).
        """
        vth = self.access.effective_vth(vds=0.0)
        full = self.bitline_precharge
        if self.wordline_voltage - vth >= full:
            return full
        return max(0.1, self.wordline_voltage - vth)

    # -- read behaviour -----------------------------------------------------------

    def read_voltage_step(self, bitline_cap: float) -> float:
        """Charge-sharing LBL signal for the worst (stored '0') level,
        volts, for a bitline load of ``bitline_cap`` farads."""
        if bitline_cap <= 0:
            raise ConfigurationError("bitline cap must be positive")
        c = self.capacitor.capacitance
        return self.bitline_precharge * c / (c + bitline_cap)

    def transfer_time_constant(self) -> float:
        """RC time constant of moving the cell charge through the access
        device at the operating word-line voltage, seconds."""
        i_on = self.access.drain_current(
            vgs=self.wordline_voltage, vds=self.bitline_precharge / 2.0
        )
        if i_on <= 0:
            raise ConfigurationError("access device does not conduct")
        r_eff = self.bitline_precharge / (2.0 * i_on)
        return r_eff * self.capacitor.capacitance

    # -- statistics / spec ----------------------------------------------------------

    def area(self) -> float:
        """Cell footprint, m^2.

        Trench cells use the node's litho-calibrated DRAM cell area; the
        scratch-pad gate-cap cell pays the planar capacitor area plus an
        access-device share.
        """
        if self.capacitor.kind is CapacitorKind.DEEP_TRENCH:
            return self.node.dram_cell_area
        access_area = (
            4.0 * self.access.width
            * self.node.feature_size * self.access_length_factor
        )
        return self.capacitor.area + access_area

    def retention_model(self) -> RetentionModel:
        """Retention statistics of this cell (paper's 6-sigma methodology)."""
        return RetentionModel(
            node=self.node,
            capacitor=self.capacitor,
            access_device=self.access,
            bitline_standby_voltage=self.bitline_precharge,
            readable_margin=0.25 * self.bitline_precharge,
            mismatch=PelgromModel(),
            junction_sigma_ln=self.junction_sigma_ln,
            wordline_low_voltage=self.wordline_low_voltage,
        )

    def spec(self) -> CellSpec:
        """Array-facing description of this cell."""
        return CellSpec(
            name=f"dram1t1c-{self.capacitor.kind.value}",
            kind=StorageKind.DYNAMIC,
            area=self.area(),
            bitline_cap_per_cell=self.access.junction_capacitance(),
            wordline_cap_per_cell=self.access.gate_capacitance(),
            stored_high=self.stored_high,
            wordline_voltage=self.wordline_voltage,
            standby_leakage=self.retention_model().nominal_leakage(),
            charge_sharing_cap=self.capacitor.capacitance,
            retention=self.retention_model(),
        )
