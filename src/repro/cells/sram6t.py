"""6T SRAM cell model.

The comparison cell of every paper figure.  Besides the array-facing
:class:`~repro.cells.cellspec.CellSpec`, this module computes the read
static noise margin with numerically-solved butterfly curves — the
metric whose degradation at scaled nodes motivates the paper's search
for an SRAM alternative (paper Sec. I and refs [1]-[4]).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np
from scipy.optimize import brentq

from repro.errors import ConfigurationError
from repro.tech.leakage import sram_cell_leakage
from repro.tech.node import Polarity, TechnologyNode, VtFlavor
from repro.tech.transistor import Mosfet
from repro.cells.cellspec import CellSpec, StorageKind
from repro.units import uV


@dataclasses.dataclass(frozen=True)
class Sram6tCell:
    """A sized 6T cell on a technology node.

    Default sizing is the classic 2 / 1.5 / 1 width-unit ratio for
    pull-down / access / pull-up, in the node's 120 nm width units.
    """

    node: TechnologyNode
    flavor: VtFlavor = VtFlavor.SVT
    pulldown_units: float = 2.0
    access_units: float = 1.5
    pullup_units: float = 1.0

    def __post_init__(self) -> None:
        if min(self.pulldown_units, self.access_units, self.pullup_units) <= 0:
            raise ConfigurationError("all cell device widths must be positive")

    # -- devices ---------------------------------------------------------------

    @property
    def pulldown(self) -> Mosfet:
        return Mosfet(self.node, Polarity.NMOS, self.flavor,
                      width=self.node.width_units(self.pulldown_units))

    @property
    def access(self) -> Mosfet:
        return Mosfet(self.node, Polarity.NMOS, self.flavor,
                      width=self.node.width_units(self.access_units))

    @property
    def pullup(self) -> Mosfet:
        return Mosfet(self.node, Polarity.PMOS, self.flavor,
                      width=self.node.width_units(self.pullup_units))

    # -- figures of merit --------------------------------------------------------

    @property
    def beta_ratio(self) -> float:
        """Pull-down to access strength ratio (read stability knob)."""
        return self.pulldown_units / self.access_units

    def read_current(self) -> float:
        """Bitline discharge current during a read, amperes.

        Limited by the series access + pull-down path; approximated as
        the weaker device's saturation current.
        """
        return min(self.access.on_current(), self.pulldown.on_current())

    def leakage(self) -> float:
        """Standby leakage of the whole cell, amperes."""
        return sram_cell_leakage(self.node, self.pulldown)

    def area(self) -> float:
        """Cell footprint; the node's litho-calibrated 6T area."""
        return self.node.sram6t_cell_area

    def read_snm(self) -> float:
        """Read static noise margin, volts (butterfly-curve method)."""
        return static_noise_margin(self, during_read=True)

    def hold_snm(self) -> float:
        """Hold static noise margin, volts."""
        return static_noise_margin(self, during_read=False)

    def spec(self) -> CellSpec:
        """Array-facing description of this cell."""
        return CellSpec(
            name=f"sram6t-{self.flavor.value}",
            kind=StorageKind.STATIC,
            area=self.area(),
            bitline_cap_per_cell=self.access.junction_capacitance(),
            # A 6T cell hangs *two* access gates on the word line.
            wordline_cap_per_cell=2.0 * self.access.gate_capacitance(),
            stored_high=self.node.vdd,
            wordline_voltage=self.node.vdd,
            standby_leakage=self.leakage(),
            read_current=self.read_current(),
        )


def inverter_vtc(cell: Sram6tCell, during_read: bool,
                 points: int = 201) -> Callable[[float], float]:
    """Voltage transfer curve of one cell inverter, as a callable.

    During a read the access transistor (bitline held at vdd by the
    precharge) fights the pull-down, lifting the low output level — the
    classic read-disturb mechanism that shrinks the read SNM.
    """
    node = cell.node
    vdd = node.vdd
    pd, pu, ax = cell.pulldown, cell.pullup, cell.access

    def solve_vout(vin: float) -> float:
        def imbalance(vout: float) -> float:
            i_down = pd.drain_current(vgs=vin, vds=vout)
            i_up = pu.drain_current(vgs=vdd - vin, vds=vdd - vout)
            if during_read:
                # Access device injects current from the vdd-precharged
                # bitline into the storage node.
                i_up = i_up + ax.drain_current(vgs=vdd - vout, vds=vdd - vout)
            return i_up - i_down

        lo, hi = 1 * uV, vdd - 1 * uV
        f_lo, f_hi = imbalance(lo), imbalance(hi)
        if f_lo <= 0:
            return 0.0
        if f_hi >= 0:
            return vdd
        return float(brentq(imbalance, lo, hi, xtol=1e-7))

    grid = np.linspace(0.0, vdd, points)
    values = np.array([solve_vout(v) for v in grid])

    def vtc(vin: float) -> float:
        return float(np.interp(vin, grid, values))

    return vtc


def static_noise_margin(cell: Sram6tCell, during_read: bool,
                        points: int = 201) -> float:
    """SNM: side of the largest square nested in each butterfly lobe.

    For monotone (non-increasing) VTCs the maximal axis-aligned square
    in the upper-left lobe has its bottom-left corner on the mirrored
    curve and its top-right corner on the direct curve:

        x1 = f(y1),   y1 + s = f(x1 + s)

    ``s`` is found by bisection for each ``y1`` on a grid and maximised;
    the lower-right lobe is the mirror image.  The cell SNM is the
    smaller lobe's square — with identical inverters the lobes are
    symmetric and the two values coincide.
    """
    vdd = cell.node.vdd
    vtc = inverter_vtc(cell, during_read, points)

    def square_side(y1: float) -> float:
        x1 = vtc(y1)

        def gap(s: float) -> float:
            return vtc(x1 + s) - (y1 + s)

        if gap(0.0) <= 0.0:
            return 0.0
        hi = vdd - max(x1, y1)
        if hi <= 0.0 or gap(hi) >= 0.0:
            return max(0.0, hi)
        return float(brentq(gap, 0.0, hi, xtol=1e-7))

    grid = np.linspace(0.0, vdd, points)
    upper_left = max(square_side(y1) for y1 in grid)
    # Lower-right lobe: reflect the whole picture through y = x, which
    # maps the lobe onto an upper-left lobe of the same (mirrored) pair
    # of curves — with one shared VTC the computation is identical.
    lower_right = upper_left
    return max(0.0, min(upper_left, lower_right))
