"""Atomic JSON checkpoints and run budgets for long sweeps.

Production-scale sweeps (Monte-Carlo populations, design grids) die two
ways: the process is killed mid-run, or a pathological point burns the
whole time budget.  This module gives every long-running engine the
same three defences:

* :class:`Checkpoint` — periodic atomic JSON snapshots keyed by a
  config fingerprint, so ``--resume`` continues exactly where a killed
  run stopped (and refuses to resume a checkpoint written by a run with
  a different configuration);
* :class:`RunBudget` / :class:`BudgetClock` — wall-clock and
  failure-count ceilings checked between work items;
* :func:`run_sweep` — the generic harness: walks keyed work items,
  skips completed ones, records failures instead of dying, and returns
  a :class:`SweepOutcome` with explicit ``completed/attempted``
  accounting rather than an exception.

Checkpoints are written atomically (temp file + ``os.replace``), so a
kill during a save never corrupts the previous snapshot.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import pathlib
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.effects import pure
from repro.errors import ConfigurationError, ReproError

_log = logging.getLogger(__name__)

#: Bumped whenever the checkpoint layout changes incompatibly.
CHECKPOINT_SCHEMA = 1


@dataclasses.dataclass(frozen=True)
class RunBudget:
    """Ceilings a sweep must respect (``None`` = unlimited).

    Deliberately *not* validated at construction: ``repro check`` rule
    M212 flags inconsistent budgets (non-positive ceilings) instead, so
    a config file can be linted without crashing the loader.
    """

    max_seconds: Optional[float] = None
    max_failures: Optional[int] = None

    @property
    @pure
    def unlimited(self) -> bool:
        return self.max_seconds is None and self.max_failures is None


class BudgetClock:
    """Tracks one run against its :class:`RunBudget`."""

    def __init__(self, budget: Optional[RunBudget] = None) -> None:
        self.budget = budget or RunBudget()
        self._started = time.monotonic()
        self.failures = 0

    def elapsed(self) -> float:
        return time.monotonic() - self._started

    def fail(self) -> None:
        self.failures += 1

    def exhausted(self) -> Optional[str]:
        """The ceiling that was hit, or ``None`` while within budget."""
        budget = self.budget
        if (budget.max_seconds is not None
                and self.elapsed() >= budget.max_seconds):
            return "max_seconds"
        if (budget.max_failures is not None
                and self.failures >= budget.max_failures):
            return "max_failures"
        return None


class Checkpoint:
    """One atomic JSON checkpoint file, keyed by a config fingerprint.

    The fingerprint (use :func:`repro.obs.config_fingerprint` over the
    sweep's effective configuration) guards against resuming a
    checkpoint that belongs to a different run: a mismatch raises
    :class:`~repro.errors.ConfigurationError` naming both fingerprints.
    """

    def __init__(self, path: "str | pathlib.Path",
                 fingerprint: str) -> None:
        self.path = pathlib.Path(path)
        self.fingerprint = fingerprint

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> Optional[Dict[str, Any]]:
        """The saved ``done`` mapping, or ``None`` if no file exists."""
        if not self.path.exists():
            return None
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"checkpoint {self.path} is unreadable: {exc}") from exc
        if payload.get("schema") != CHECKPOINT_SCHEMA:
            raise ConfigurationError(
                f"checkpoint {self.path} has schema "
                f"{payload.get('schema')!r}, expected {CHECKPOINT_SCHEMA}")
        saved = payload.get("fingerprint")
        if saved != self.fingerprint:
            raise ConfigurationError(
                f"checkpoint {self.path} was written by a run with "
                f"fingerprint {saved!r}, not {self.fingerprint!r}; "
                "delete it or rerun with the original configuration")
        obs.metrics().counter("checkpoint.resumes").inc()
        done = payload.get("done", {})
        obs.event("checkpoint.resumed", path=str(self.path), items=len(done))
        _log.info("resumed checkpoint %s: %d item(s) already done",
                  self.path, len(done))
        return done

    def save(self, done: Dict[str, Any]) -> None:
        """Atomically snapshot ``done`` (temp file + rename)."""
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "fingerprint": self.fingerprint,
            "done": done,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        obs.metrics().counter("checkpoint.saves").inc()
        obs.event("checkpoint.saved", path=str(self.path), items=len(done))

    def clear(self) -> None:
        """Delete the checkpoint file (a completed run needs no resume)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


@dataclasses.dataclass(frozen=True)
class SweepOutcome:
    """Accounting of one (possibly partial) sweep.

    ``results`` maps item key -> decoded result for every *completed*
    item, in sweep order.  ``attempted`` counts items actually tried
    this process plus those restored from a checkpoint; items skipped
    because the budget ran out are neither attempted nor failed.
    """

    results: Dict[str, Any]
    completed: int
    attempted: int
    failures: Tuple[str, ...]  # item keys whose evaluation raised
    exhausted: Optional[str]  # "max_seconds" | "max_failures" | None

    @property
    @pure
    def complete(self) -> bool:
        """Every item finished and none failed."""
        return self.exhausted is None and not self.failures

    @pure
    def describe(self) -> str:
        parts = [f"{self.completed}/{self.attempted} completed"]
        if self.failures:
            parts.append(f"{len(self.failures)} failed")
        if self.exhausted:
            parts.append(f"stopped on {self.exhausted}")
        return ", ".join(parts)


def run_sweep(items: Sequence[Tuple[str, Callable[[], Any]]],
              checkpoint: Optional[Checkpoint] = None,
              budget: Optional[RunBudget] = None,
              save_every: int = 1,
              encode: Optional[Callable[[Any], Any]] = None,
              decode: Optional[Callable[[Any], Any]] = None,
              progress: Optional[Any] = None
              ) -> SweepOutcome:
    """Walk keyed work items with checkpointing and budget enforcement.

    ``items`` is an ordered sequence of ``(key, thunk)`` pairs; keys
    must be unique strings.  Completed items found in the checkpoint
    are not re-evaluated (their stored value is decoded instead), which
    is what makes a resumed run reproduce the uninterrupted result.
    Evaluation failures (any :class:`~repro.errors.ReproError`) are
    recorded, not raised — the sweep continues until done or out of
    budget.  ``encode``/``decode`` convert results to/from
    JSON-serialisable form for the checkpoint file.  ``progress`` (a
    :class:`~repro.obs.progress.SweepProgress`) receives one
    ``advance`` per evaluated item and ``note_restored`` for items
    skipped via the checkpoint.
    """
    keys = [key for key, _thunk in items]
    if len(set(keys)) != len(keys):
        raise ConfigurationError("sweep item keys must be unique")
    if save_every < 1:
        raise ConfigurationError("save_every must be >= 1")
    encode = encode or (lambda value: value)
    decode = decode or (lambda value: value)

    done: Dict[str, Any] = {}
    if checkpoint is not None:
        done = checkpoint.load() or {}
    if progress is not None and done:
        progress.note_restored(len(done))

    clock = BudgetClock(budget)
    failures: List[str] = []
    exhausted: Optional[str] = None
    dirty = 0
    with obs.span("sweep.run", items=len(items)):
        for key, thunk in items:
            if key in done:
                continue
            exhausted = clock.exhausted()
            if exhausted is not None:
                _log.info("sweep stopped on %s after %d item(s)",
                          exhausted, len(done))
                break
            try:
                result = thunk()
            except ReproError as exc:
                _log.warning("sweep item %r failed: %s", key, exc)
                obs.metrics().counter("sweep.failures").inc()
                failures.append(key)
                clock.fail()
                if progress is not None:
                    progress.advance(failed=1)
                continue
            done[key] = encode(result)
            dirty += 1
            if progress is not None:
                progress.advance(completed=1)
            if checkpoint is not None and dirty >= save_every:
                checkpoint.save(done)
                dirty = 0
    if checkpoint is not None and dirty:
        checkpoint.save(done)

    results = {key: decode(done[key]) for key in keys if key in done}
    return SweepOutcome(
        results=results,
        completed=len(results),
        attempted=len(results) + len(failures),
        failures=tuple(failures),
        exhausted=exhausted,
    )
