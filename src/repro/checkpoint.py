"""Atomic JSON checkpoints and run budgets for long sweeps.

Production-scale sweeps (Monte-Carlo populations, design grids) die two
ways: the process is killed mid-run, or a pathological point burns the
whole time budget.  This module gives every long-running engine the
same three defences:

* :class:`Checkpoint` — periodic atomic JSON snapshots keyed by a
  config fingerprint, so ``--resume`` continues exactly where a killed
  run stopped (and refuses to resume a checkpoint written by a run with
  a different configuration);
* :class:`RunBudget` / :class:`BudgetClock` — wall-clock and
  failure-count ceilings checked between work items;
* :func:`run_sweep` — the generic harness: walks keyed work items,
  skips completed ones, records failures instead of dying, and returns
  a :class:`SweepOutcome` with explicit ``completed/attempted``
  accounting rather than an exception.

Checkpoints are written atomically (temp file + ``os.replace``), so a
kill during a save never corrupts the previous snapshot.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pathlib
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.effects import pure
from repro.errors import ConfigurationError, ReproError

_log = logging.getLogger(__name__)

#: Bumped whenever the checkpoint layout changes incompatibly.
#: Schema 2 added the ``checksum`` content hash; schema-1 files (no
#: checksum) are still readable.
CHECKPOINT_SCHEMA = 2

#: Oldest schema :meth:`Checkpoint.load` still accepts.
_OLDEST_READABLE_SCHEMA = 1


@pure
def _content_checksum(done: Dict[str, Any]) -> str:
    """Hex digest over the canonical JSON rendering of ``done``.

    Canonical means ``sort_keys=True`` with default separators, so the
    digest is independent of insertion order and of how the enclosing
    payload happens to be formatted on disk.
    """
    canonical = json.dumps(done, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


@dataclasses.dataclass(frozen=True)
class RunBudget:
    """Ceilings a sweep must respect (``None`` = unlimited).

    Deliberately *not* validated at construction: ``repro check`` rule
    M212 flags inconsistent budgets (non-positive ceilings) instead, so
    a config file can be linted without crashing the loader.
    """

    max_seconds: Optional[float] = None
    max_failures: Optional[int] = None

    @property
    @pure
    def unlimited(self) -> bool:
        return self.max_seconds is None and self.max_failures is None


class BudgetClock:
    """Tracks one run against its :class:`RunBudget`."""

    def __init__(self, budget: Optional[RunBudget] = None) -> None:
        self.budget = budget or RunBudget()
        self._started = time.monotonic()
        self.failures = 0

    def elapsed(self) -> float:
        return time.monotonic() - self._started

    def fail(self) -> None:
        self.failures += 1

    def exhausted(self) -> Optional[str]:
        """The ceiling that was hit, or ``None`` while within budget."""
        budget = self.budget
        if (budget.max_seconds is not None
                and self.elapsed() >= budget.max_seconds):
            return "max_seconds"
        if (budget.max_failures is not None
                and self.failures >= budget.max_failures):
            return "max_failures"
        return None


class Checkpoint:
    """One atomic JSON checkpoint file, keyed by a config fingerprint.

    The fingerprint (use :func:`repro.obs.config_fingerprint` over the
    sweep's effective configuration) guards against resuming a
    checkpoint that belongs to a different run: a mismatch raises
    :class:`~repro.errors.ConfigurationError` naming both fingerprints.
    """

    def __init__(self, path: "str | pathlib.Path",
                 fingerprint: str) -> None:
        self.path = pathlib.Path(path)
        self.fingerprint = fingerprint

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> Optional[Dict[str, Any]]:
        """The saved ``done`` mapping, or ``None`` if no usable file exists.

        A checkpoint that cannot be trusted — truncated or torn JSON,
        undecodable bytes, a non-object payload, or a content checksum
        that does not match
        the stored ``done`` mapping (schema >= 2) — is **quarantined**,
        not fatal: the file is renamed to a ``.corrupt`` sidecar, a
        one-line warning is logged, and the sweep resumes from the last
        good state (here: empty, since the corrupt file *was* the last
        state).  Genuine configuration conflicts — an unreadable path,
        a schema from a newer library, a fingerprint from a different
        run — still raise :class:`~repro.errors.ConfigurationError`:
        those are operator errors, not media faults.
        """
        if not self.path.exists():
            return None
        try:
            text = self.path.read_text()
        except UnicodeDecodeError as exc:
            return self._quarantine(f"undecodable bytes ({exc})")
        except OSError as exc:
            raise ConfigurationError(
                f"checkpoint {self.path} is unreadable: {exc}") from exc
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            return self._quarantine(f"truncated or torn JSON ({exc})")
        if not isinstance(payload, dict):
            return self._quarantine(
                f"payload is {type(payload).__name__}, not an object")
        schema = payload.get("schema")
        if not (isinstance(schema, int)
                and _OLDEST_READABLE_SCHEMA <= schema <= CHECKPOINT_SCHEMA):
            raise ConfigurationError(
                f"checkpoint {self.path} has schema {schema!r}, "
                f"expected {_OLDEST_READABLE_SCHEMA}..{CHECKPOINT_SCHEMA}")
        saved = payload.get("fingerprint")
        if saved != self.fingerprint:
            raise ConfigurationError(
                f"checkpoint {self.path} was written by a run with "
                f"fingerprint {saved!r}, not {self.fingerprint!r}; "
                "delete it or rerun with the original configuration")
        done = payload.get("done", {})
        if not isinstance(done, dict):
            return self._quarantine(
                f"'done' is {type(done).__name__}, not an object")
        if schema >= 2:
            expected = payload.get("checksum")
            actual = _content_checksum(done)
            if expected != actual:
                return self._quarantine(
                    f"checksum mismatch (stored {expected!r}, "
                    f"content {actual!r})")
        obs.metrics().counter("checkpoint.resumes").inc()
        obs.event("checkpoint.resumed", path=str(self.path), items=len(done))
        _log.info("resumed checkpoint %s: %d item(s) already done",
                  self.path, len(done))
        return done

    def _quarantine(self, reason: str) -> Optional[Dict[str, Any]]:
        """Move a corrupt checkpoint aside and resume from scratch."""
        sidecar = self.path.with_name(self.path.name + ".corrupt")
        try:
            os.replace(self.path, sidecar)
        except OSError:
            sidecar = self.path  # could not move it; leave it in place
        _log.warning("checkpoint %s is corrupt (%s); quarantined to %s, "
                     "resuming from scratch", self.path, reason, sidecar)
        obs.metrics().counter("checkpoint.corruptions").inc()
        obs.event("checkpoint.corrupt", path=str(self.path),
                  sidecar=str(sidecar), reason=reason)
        return None

    def save(self, done: Dict[str, Any]) -> None:
        """Atomically snapshot ``done`` (temp file + fsync + rename).

        The temp fd is fsynced before the rename so a power loss right
        after ``os.replace`` cannot leave the *new* name pointing at
        unwritten blocks; the directory is fsynced best-effort so the
        rename itself is durable.  The payload carries a content
        checksum over ``done`` (schema 2), which is what lets
        :meth:`load` distinguish a torn write from a good snapshot.
        """
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "fingerprint": self.fingerprint,
            "checksum": _content_checksum(done),
            "done": done,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
            try:
                dir_fd = os.open(self.path.parent, os.O_RDONLY)
            except OSError:
                pass  # platform without directory fds: rename still atomic
            else:
                try:
                    os.fsync(dir_fd)
                except OSError:
                    pass  # best-effort: some filesystems refuse dir fsync
                finally:
                    os.close(dir_fd)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        obs.metrics().counter("checkpoint.saves").inc()
        obs.event("checkpoint.saved", path=str(self.path), items=len(done))

    def clear(self) -> None:
        """Delete the checkpoint file (a completed run needs no resume)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


@dataclasses.dataclass(frozen=True)
class SweepOutcome:
    """Accounting of one (possibly partial) sweep.

    ``results`` maps item key -> decoded result for every *completed*
    item, in sweep order.  ``attempted`` counts items actually tried
    this process plus those restored from a checkpoint; items skipped
    because the budget ran out are neither attempted nor failed.
    ``failures`` are keys whose evaluation raised a
    :class:`~repro.errors.ReproError`; ``quarantined`` are keys the
    supervision layer gave up on after exhausting their retry budget
    on process-level faults (crash, hang, deadline) — every item the
    sweep touched lands in exactly one of the three.  ``interrupted``
    marks an outcome cut short by SIGTERM/Ctrl-C: partial but honest,
    with the final checkpoint already written.
    """

    results: Dict[str, Any]
    completed: int
    attempted: int
    failures: Tuple[str, ...]  # item keys whose evaluation raised
    exhausted: Optional[str]  # "max_seconds" | "max_failures" | None
    quarantined: Tuple[str, ...] = ()  # keys retired by the supervisor
    interrupted: bool = False  # cut short by SIGTERM / KeyboardInterrupt
    #: Structured :class:`repro.exec.supervise.TimeoutFailure` records,
    #: one per deadline/hang strike (including strikes on samples that
    #: later succeeded on retry).  Typed loosely to keep this module
    #: free of an executor dependency.
    timeouts: Tuple[Any, ...] = ()

    @property
    @pure
    def complete(self) -> bool:
        """Every item finished and none failed."""
        return (self.exhausted is None and not self.failures
                and not self.quarantined and not self.interrupted)

    @pure
    def describe(self) -> str:
        parts = [f"{self.completed}/{self.attempted} completed"]
        if self.failures:
            parts.append(f"{len(self.failures)} failed")
        if self.quarantined:
            parts.append(f"{len(self.quarantined)} quarantined")
        if self.exhausted:
            parts.append(f"stopped on {self.exhausted}")
        if self.interrupted:
            parts.append("interrupted")
        return ", ".join(parts)


def run_sweep(items: Sequence[Tuple[str, Callable[[], Any]]],
              checkpoint: Optional[Checkpoint] = None,
              budget: Optional[RunBudget] = None,
              save_every: int = 1,
              encode: Optional[Callable[[Any], Any]] = None,
              decode: Optional[Callable[[Any], Any]] = None,
              progress: Optional[Any] = None
              ) -> SweepOutcome:
    """Walk keyed work items with checkpointing and budget enforcement.

    ``items`` is an ordered sequence of ``(key, thunk)`` pairs; keys
    must be unique strings.  Completed items found in the checkpoint
    are not re-evaluated (their stored value is decoded instead), which
    is what makes a resumed run reproduce the uninterrupted result.
    Evaluation failures (any :class:`~repro.errors.ReproError`) are
    recorded, not raised — the sweep continues until done or out of
    budget.  ``encode``/``decode`` convert results to/from
    JSON-serialisable form for the checkpoint file.  ``progress`` (a
    :class:`~repro.obs.progress.SweepProgress`) receives one
    ``advance`` per evaluated item and ``note_restored`` for items
    skipped via the checkpoint.
    """
    keys = [key for key, _thunk in items]
    if len(set(keys)) != len(keys):
        raise ConfigurationError("sweep item keys must be unique")
    if save_every < 1:
        raise ConfigurationError("save_every must be >= 1")
    encode = encode or (lambda value: value)
    decode = decode or (lambda value: value)

    done: Dict[str, Any] = {}
    if checkpoint is not None:
        done = checkpoint.load() or {}
    if progress is not None and done:
        progress.note_restored(len(done))

    clock = BudgetClock(budget)
    failures: List[str] = []
    exhausted: Optional[str] = None
    interrupted = False
    dirty = 0
    try:
        with obs.span("sweep.run", items=len(items)):
            for key, thunk in items:
                if key in done:
                    continue
                exhausted = clock.exhausted()
                if exhausted is not None:
                    _log.info("sweep stopped on %s after %d item(s)",
                              exhausted, len(done))
                    break
                try:
                    result = thunk()
                except ReproError as exc:
                    _log.warning("sweep item %r failed: %s", key, exc)
                    obs.metrics().counter("sweep.failures").inc()
                    failures.append(key)
                    clock.fail()
                    if progress is not None:
                        progress.advance(failed=1)
                    continue
                done[key] = encode(result)
                dirty += 1
                if progress is not None:
                    progress.advance(completed=1)
                if checkpoint is not None and dirty >= save_every:
                    checkpoint.save(done)
                    dirty = 0
    except KeyboardInterrupt:
        # Graceful interruption (Ctrl-C, or SIGTERM routed here by the
        # executor's trap): keep the accounting, write the final
        # checkpoint below, and hand back a partial outcome instead of
        # losing the run.
        interrupted = True
        pending = sum(1 for key, _thunk in items
                      if key not in done and key not in failures)
        _log.warning("sweep interrupted: %d item(s) done, %d pending",
                     len(done), pending)
        obs.event("sweep.interrupted", completed=len(done), pending=pending)
    if checkpoint is not None and dirty:
        checkpoint.save(done)

    results = {key: decode(done[key]) for key in keys if key in done}
    return SweepOutcome(
        results=results,
        completed=len(results),
        attempted=len(results) + len(failures),
        failures=tuple(failures),
        exhausted=exhausted,
        interrupted=interrupted,
    )
