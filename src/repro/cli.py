"""Command-line interface.

``python -m repro <command>`` regenerates the paper's artefacts from a
shell.  Commands map one-to-one onto the library's top-level API:

    headline       the abstract's figures for the 128 kb macro
    compare        Fig. 7(a-d) DRAM-vs-SRAM across sizes
    fig5           refresh busy-cycle study
    fig8           energy repartition of the fast DRAM
    fig9           total power vs activity
    methodology    the Fig. 6 three-step flow (runs circuit sims)
    pvt            corner / temperature sweep
    refresh-plan   retention-binned refresh planning
    banking        banked vs monolithic composition
    sensitivity    normalised parameter sensitivities
    mc             checkpointed retention Monte-Carlo (``--resume``)
    chaos          seeded fault-injection run (weak cells, dropped
                   refreshes, a forced solver failure) ending in a
                   degraded-but-functional report

Every command that samples randomness honours the shared ``--seed``
flag (the seed is echoed into the ``repro.obs`` run report).

Two static-analysis commands gate CI (see ``repro.analysis``):

    lint           AST unit-discipline linter over Python sources
    check          pre-solve model checker (circuits + macro configs)

The telemetry utilities post-process what ``--metrics-out`` /
``--events-out`` captured (see ``repro.obs``):

    obs export     render a run report as a Chrome trace (Perfetto /
                   chrome://tracing), CSV rows or Prometheus textfile
    obs diff       threshold-gated metric comparison of two reports;
                   exits non-zero when a metric regressed
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from repro import obs
from repro.core import FastDramDesign, SramDramComparison, format_table
from repro.units import MHz, Mb, kb, mV, mm2, ms, ns, pJ, si_format, uW, us

_log = logging.getLogger(__name__)


def _add_size_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kb", type=int, default=128,
                        help="macro capacity in kbit (default 128)")


def _capacity(args: argparse.Namespace) -> int:
    if args.kb <= 0:
        raise SystemExit("capacity must be positive")
    return args.kb * kb


def _supervision_policy(args: argparse.Namespace):
    """Build a SupervisionPolicy from the --timeout/--retries/
    --max-sample-seconds flags; None when all are off (the supervised
    code path is then skipped entirely — zero overhead)."""
    from repro.exec import SupervisionPolicy
    timeout = getattr(args, "timeout", 0.0)
    retries = getattr(args, "retries", 0)
    deadline = getattr(args, "max_sample_seconds", 0.0)
    if timeout <= 0 and retries <= 0 and deadline <= 0:
        return None
    return SupervisionPolicy(
        max_sample_seconds=deadline if deadline > 0 else None,
        hang_seconds=timeout if timeout > 0 else None,
        max_retries=max(0, retries),
        seed=args.seed)


def _add_supervision_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--timeout", type=float, default=0.0,
                        metavar="SECONDS",
                        help="hang watchdog: kill and retry a worker "
                             "whose heartbeat goes silent this long "
                             "(<= 0 disables)")
    parser.add_argument("--retries", type=int, default=0,
                        help="retry a failed/crashed/timed-out sample "
                             "up to N times with seeded backoff before "
                             "quarantining it (default 0)")
    parser.add_argument("--max-sample-seconds", type=float, default=0.0,
                        metavar="SECONDS",
                        help="per-sample deadline; a sample running "
                             "longer is cut off and counted as a "
                             "timeout (<= 0 disables)")


def cmd_headline(args: argparse.Namespace) -> None:
    macro = FastDramDesign().build(_capacity(args),
                                   retention_override=args.retention)
    print(macro.describe())
    print()
    print(f"energy per bit: "
          f"{si_format(macro.energy_per_bit(), 'J')} (paper: < 0.2 pJ)")


def cmd_compare(args: argparse.Namespace) -> None:
    comparison = SramDramComparison(
        sizes=(128 * kb, 512 * kb, 2 * Mb),
        retention_override=args.retention)
    sections = [
        ("Fig. 7a access time (ns)", comparison.access_time(), 1 / ns),
        ("Fig. 7b read energy (pJ)", comparison.read_energy(), 1 / pJ),
        ("Fig. 7b write energy (pJ)", comparison.write_energy(), 1 / pJ),
        ("Fig. 7c static power (uW)", comparison.static_power(), 1 / uW),
        ("Fig. 7d area (mm2)", comparison.area(), 1 / mm2),
    ]
    for title, rows, scale in sections:
        print(f"== {title} ==")
        print(format_table(
            ["size", "SRAM", "DRAM", "SRAM/DRAM"],
            [[r.size_label, r.sram * scale, r.dram * scale,
              f"{r.ratio:.2f}x"] for r in rows]))
        print()


def cmd_fig5(args: argparse.Namespace) -> None:
    import numpy as np
    from repro.refresh import (LocalizedRefresh, MonoblockRefresh,
                               RefreshSimulator, uniform_random_trace)
    rng = np.random.default_rng(args.seed)
    trace = uniform_random_trace(args.cycles, 128, 0.5, rng)
    rows = []
    with obs.span("simulate", cycles=args.cycles):
        for retention_us in (20, 100, 500, 1000):
            period = int(retention_us * us * 500 * MHz)
            entry = [f"{retention_us} us"]
            for cls in (MonoblockRefresh, LocalizedRefresh):
                policy = cls(n_blocks=128, rows_per_block=32,
                             refresh_period_cycles=period)
                with obs.span(f"policy.{cls.__name__}",
                              retention_us=retention_us):
                    stats = RefreshSimulator(policy).run(trace)
                entry.append(f"{100 * stats.busy_fraction:.3f} %")
            rows.append(entry)
    print(format_table(["retention", "monoblock", "128 localblocks"], rows))


def cmd_fig8(args: argparse.Namespace) -> None:
    comparison = SramDramComparison(retention_override=args.retention)
    repartition = comparison.energy_repartition(_capacity(args))
    print(format_table(
        ["category", "read (pJ)", "write (pJ)"],
        [[category, repartition["read"][category] / pJ,
          repartition["write"][category] / pJ]
         for category in repartition["read"]]))


def cmd_fig9(args: argparse.Namespace) -> None:
    comparison = SramDramComparison(sizes=(_capacity(args),),
                                    retention_override=args.retention)
    rows = []
    for activity in (0.001, 0.01, 0.1, 0.5, 1.0):
        point = comparison.total_power(activity, _capacity(args))
        rows.append([activity, point.sram / uW, point.dram / uW,
                     f"{point.ratio:.2f}x"])
    print(format_table(["activity", "SRAM (uW)", "DRAM (uW)", "gain"],
                       rows))


def cmd_methodology(args: argparse.Namespace) -> None:
    from repro.core import MethodologyFlow
    report = MethodologyFlow(total_bits=_capacity(args)).run()
    print(f"step 1 scratch-pad: {report.scratchpad_macro.access_time() / ns:.2f} ns, "
          f"{report.scratchpad_macro.read_energy().total / pJ:.2f} pJ")
    for wave in report.scratchpad_waveforms:
        print(f"  circuit read '{wave.stored_value}': restore "
              f"{'ok' if wave.restored_correctly else 'FAILED'}, "
              f"GBL swing {wave.gbl_swing / mV:.0f} mV")
    print(f"step 2 DRAM tech  : {report.dram_macro.access_time() / ns:.2f} ns "
          f"({report.timing_ratio:.2f}x step 1; doubling "
          f"{'holds' if report.doubling_holds else 'BROKEN'})")
    print("step 3 sizes      :")
    for row in report.size_sweep:
        print(f"  {row.total_bits // kb:5d} kb: "
              f"{row.access_time / ns:.2f} ns, {row.read_energy / pJ:.2f} pJ, "
              f"{row.area / mm2:.4f} mm2")


def cmd_pvt(args: argparse.Namespace) -> None:
    from repro.core.pvt import PvtAnalysis
    analysis = PvtAnalysis(technology=args.technology,
                           total_bits=_capacity(args), seed=args.seed)
    rows = []
    for point in analysis.sweep(temperatures=(300.0, args.hot)):
        retention = ("-" if point.worst_retention is None
                     else si_format(point.worst_retention, "s"))
        rows.append([point.label, point.access_time / ns,
                     point.read_energy / pJ, point.static_power / uW,
                     retention])
    print(format_table(
        ["corner", "access (ns)", "read (pJ)", "static (uW)",
         "worst retention"], rows))


def cmd_refresh_plan(args: argparse.Namespace) -> None:
    from repro.refresh import plan_binned_refresh
    design = FastDramDesign()
    retention = design.cell().retention_model()
    plan = plan_binned_refresh(retention, n_blocks=args.granules,
                               rows_per_block=4096 // args.granules,
                               n_bins=args.bins, seed=args.seed)
    print(format_table(
        ["bin period", "granules"],
        [[si_format(b.period, "s"), b.block_count] for b in plan.bins]))
    print(f"refresh power saving vs uniform worst-case: "
          f"{plan.saving_factor():.2f}x")


def cmd_banking(args: argparse.Namespace) -> None:
    from repro.array.banking import compare_banking_options
    options = compare_banking_options(FastDramDesign(), _capacity(args),
                                      retention_override=args.retention)
    print(format_table(
        ["banks", "access (ns)", "read (pJ)", "area (mm2)", "static (uW)"],
        [[count, memory.access_time() / ns, memory.read_energy() / pJ,
          memory.area() / mm2, memory.static_power() / uW]
         for count, memory in sorted(options.items())]))


def cmd_optimize(args: argparse.Namespace) -> None:
    from repro.core import DesignOptimizer
    from repro.obs.progress import progress_for_args
    constraint = args.max_ns * ns if args.max_ns > 0 else None
    optimizer = DesignOptimizer(total_bits=_capacity(args),
                                max_access_time=constraint,
                                activity=args.activity)
    progress = progress_for_args(args, total=len(optimizer.grid_points()),
                                 label="optimize")
    result = optimizer.run(jobs=args.jobs, progress=progress,
                           policy=_supervision_policy(args),
                           batch=args.batch)
    progress.finish()
    print(f"{len(result.candidates)} feasible candidates, "
          f"{len(result.pareto_front)} on the Pareto front")
    print()
    rows = []
    for objective, c in result.best.items():
        rows.append([objective, c.cells_per_lbl, c.word_bits, c.vdd,
                     c.access_time / ns, c.total_power / uW,
                     c.area / mm2])
    print(format_table(
        ["best for", "cells/LBL", "word", "vdd", "access (ns)",
         "power (uW)", "area (mm2)"], rows))


def cmd_voltage(args: argparse.Namespace) -> None:
    from repro.core.voltage import voltage_sweep
    points = voltage_sweep(total_bits=_capacity(args))
    print(format_table(
        ["vdd (V)", "access (ns)", "read (pJ)", "write (pJ)", "EDP (J*s)"],
        [[p.vdd, p.access_time / ns, p.read_energy / pJ,
          p.write_energy / pJ, f"{p.energy_delay_product:.3g}"]
         for p in points]))


def cmd_mc(args: argparse.Namespace) -> int:
    """Checkpointed retention Monte-Carlo with resume and budgets.

    Periodically snapshots progress to ``--checkpoint``; a killed run
    relaunched with ``--resume`` reproduces the uninterrupted result
    bit-for-bit (sample i always draws from seed stream i).  With
    ``--faults weak-cells`` the run also draws a seeded fault plan and
    prints the macro's degraded-mode report.
    """
    from repro.checkpoint import Checkpoint, RunBudget
    from repro.units import si_format as fmt
    from repro.variability.montecarlo import (run_monte_carlo_resumable,
                                              worst_case_gaussian,
                                              worst_case_lognormal)

    design = FastDramDesign()
    retention = design.cell().retention_model()
    if args.model == "localblock":
        from repro.variability.localblock_mc import LocalBlockMcModel
        model = LocalBlockMcModel(design.cell())
    elif args.model == "globalbitline":
        from repro.variability.globalbitline_mc import GlobalBitlineMcModel
        model = GlobalBitlineMcModel(design.cell())
    else:
        model = retention.sample_retention
    checkpoint = None
    if args.checkpoint:
        fingerprint = {"command": "mc", "samples": args.samples,
                       "seed": args.seed, "kb": args.kb}
        if args.model != "retention":
            # Keyed only when non-default so pre-existing retention
            # checkpoints stay resumable.  --batch and --jobs are
            # deliberately absent: every setting produces bit-identical
            # samples, so their checkpoints are interchangeable.
            fingerprint["model"] = args.model
        checkpoint = Checkpoint(args.checkpoint,
                                obs.config_fingerprint(fingerprint))
        if checkpoint.exists() and not args.resume:
            print(f"checkpoint {args.checkpoint} exists; pass --resume to "
                  "continue it or delete it to start over",
                  file=sys.stderr)
            return 1
    budget = RunBudget(
        max_seconds=args.max_seconds if args.max_seconds > 0 else None,
        max_failures=args.max_failures if args.max_failures > 0 else None)
    from repro.obs.progress import progress_for_args
    progress = progress_for_args(args, total=args.samples, label="mc")
    outcome = run_monte_carlo_resumable(
        model, count=args.samples, seed=args.seed,
        checkpoint=checkpoint, budget=budget, jobs=args.jobs,
        progress=progress, policy=_supervision_policy(args),
        batch=args.batch)
    progress.finish()
    if args.model in ("localblock", "globalbitline"):
        label = ("local-block" if args.model == "localblock"
                 else "global-bitline")
        print(f"{label} read-signal Monte-Carlo: {outcome.describe()}")
        if outcome.result is not None:
            result = outcome.result
            print(f"  median signal    : {fmt(result.median, 'V')}")
            print(f"  mean / std       : {fmt(result.mean, 'V')} / "
                  f"{fmt(result.std, 'V')}")
            print(f"  6-sigma worst    : "
                  f"{fmt(worst_case_gaussian(result, 6.0), 'V')}")
    else:
        print(f"retention Monte-Carlo: {outcome.describe()}")
        if outcome.result is not None:
            result = outcome.result
            print(f"  median retention : {fmt(result.median, 's')}")
            print(f"  mean / std       : {fmt(result.mean, 's')} / "
                  f"{fmt(result.std, 's')}")
            print(f"  6-sigma worst    : "
                  f"{fmt(worst_case_lognormal(result, 6.0), 's')}")
    if checkpoint is not None:
        if outcome.complete:
            checkpoint.clear()
        else:
            print(f"partial run checkpointed to {args.checkpoint}; "
                  "relaunch with --resume to finish")
    if args.faults == "weak-cells":
        from repro.faults import plan_for_organization
        macro = design.build(_capacity(args),
                             retention_override=args.retention)
        plan = plan_for_organization(
            macro.organization, seed=args.seed,
            weak_cell_fraction=0.005, retention_model=retention)
        print()
        print(plan.describe())
        print(macro.fault_assessment(plan).describe())
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded end-to-end chaos run: fault injection plus a forced solver
    failure, ending in degraded-mode statistics.

    The default (``--scenario model``) exercises the model-level
    resilience layer: a fault plan drawn from the retention tail
    degrades the macro (ECC + spare-row repair), dropped and late
    refreshes perturb the interference simulator, and a stiff diode
    circuit under a starved Newton budget forces the solver recovery
    ladder to escalate.  The process-level scenarios (``kill``,
    ``hang``, ``slow``, ``flaky``, ``torn-checkpoint``, ``disk-full``,
    or all of them via ``matrix``) attack the supervised executor
    instead and gate on zero lost samples with bit-identical survivors.
    Either way the run must end with zero uncaught exceptions — that is
    the point.
    """
    if args.scenario != "model":
        return _cmd_chaos_process(args)
    import numpy as np
    from repro.faults import FaultyRefreshPolicy, plan_for_organization
    from repro.refresh import (LocalizedRefresh, RefreshSimulator,
                               uniform_random_trace)
    from repro.spice import (Circuit, Diode, Resistor, VoltageSource, dc,
                             solve_dc)
    from repro.spice.recovery import RecoveryConfig

    design = FastDramDesign()
    macro = design.build(_capacity(args), retention_override=args.retention)
    org = macro.organization

    print("== fault plan ==")
    plan = plan_for_organization(
        org, seed=args.seed, weak_cell_fraction=0.005,
        retention_model=design.cell().retention_model(),
        stuck_bit_fraction=0.001, sa_outlier_fraction=0.02,
        refresh_drop_fraction=0.002, refresh_late_fraction=0.004)
    print(plan.describe())

    print()
    print("== degraded-mode assessment ==")
    report = macro.fault_assessment(plan)
    print(report.describe())

    print()
    print("== refresh interference under faults ==")
    period = int(args.retention * 500 * MHz)
    policy = LocalizedRefresh(n_blocks=org.n_localblocks,
                              rows_per_block=org.cells_per_lbl,
                              refresh_period_cycles=period)
    trace = uniform_random_trace(args.cycles, org.n_localblocks, 0.5,
                                 np.random.default_rng(args.seed))
    with obs.span("chaos.refresh", cycles=args.cycles):
        stats = RefreshSimulator(
            FaultyRefreshPolicy(base=policy, plan=plan)).run(trace)
    print(f"  busy fraction    : {100 * stats.busy_fraction:.3f} %")
    print(f"  dropped refreshes: {stats.dropped_refreshes} "
          f"({stats.data_loss_events} data-loss events)")
    print(f"  late refreshes   : {stats.late_refreshes}")

    print()
    print("== forced solver failure ==")
    circuit = Circuit("chaos-diode")
    circuit.add(VoltageSource("v1", "in", "0", dc(5.0)))
    circuit.add(Resistor("r1", "in", "d", 100.0))
    circuit.add(Diode("d1", "d", "0"))
    # A starved Newton budget makes the plain solve fail; the recovery
    # ladder must escalate (source stepping wins) instead of raising.
    solution = solve_dc(circuit, recovery=RecoveryConfig(max_newton=10))
    print(f"  plain Newton starved at 10 iterations; ladder recovered "
          f"(diode at {solution['d']:.3f} V)")
    print()
    print("chaos run completed with zero uncaught exceptions")
    return 0


def _cmd_chaos_process(args: argparse.Namespace) -> int:
    """Process-level chaos scenarios against the supervised executor."""
    from repro.faults.chaos import run_chaos_matrix, run_chaos_scenario
    print(f"== process-level chaos: {args.scenario} ==")
    if args.scenario == "matrix":
        reports = run_chaos_matrix(count=args.samples, seed=args.seed,
                                   jobs=args.jobs)
    else:
        reports = [run_chaos_scenario(args.scenario, count=args.samples,
                                      seed=args.seed, jobs=args.jobs)]
    for report in reports:
        print(report.describe())
    if all(report.ok for report in reports):
        print("chaos run completed with zero lost samples")
        return 0
    print("chaos run LOST or DRIFTED samples — supervision contract "
          "violated", file=sys.stderr)
    return 1


def cmd_obs_export(args: argparse.Namespace) -> int:
    """Render a run report as a Chrome trace, CSV or Prometheus text.

    ``chrome`` output (the default) loads directly into Perfetto /
    ``chrome://tracing``; the exporter validates span nesting and
    per-track timestamp monotonicity before anything is written.
    """
    import pathlib

    from repro.errors import ConfigurationError
    from repro.obs.diff import load_report
    from repro.obs.export import render_report

    try:
        report = load_report(args.report)
        text = render_report(report, args.format)
    except ConfigurationError as exc:
        print(f"repro obs export: {exc}", file=sys.stderr)
        return 1
    if args.out:
        target = pathlib.Path(args.out)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(text)
        except OSError as exc:
            print(f"repro obs export: cannot write {target}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"{args.format} export written to {target}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_obs_diff(args: argparse.Namespace) -> int:
    """Compare two run/benchmark reports; exit non-zero on regression.

    A metric that moved against its good direction (throughput down,
    duration up, ...) by more than ``--threshold`` is a regression —
    the non-zero exit is what lets CI gate on
    ``repro obs diff BENCH_solver.json new/BENCH_solver.json``.
    Identical reports always diff clean (exit 0, zero deltas).
    """
    from repro.errors import ConfigurationError
    from repro.obs import diff as obsdiff

    try:
        before = obsdiff.load_report(args.before)
        after = obsdiff.load_report(args.after)
        deltas = obsdiff.diff_reports(before, after,
                                      threshold=args.threshold)
    except ConfigurationError as exc:
        print(f"repro obs diff: {exc}", file=sys.stderr)
        return 1
    if args.format == "json":
        sys.stdout.write(obsdiff.diff_to_json(deltas))
    else:
        print(obsdiff.format_diff(deltas, threshold=args.threshold))
    return 1 if any(d.regressed for d in deltas) else 0


def cmd_sensitivity(args: argparse.Namespace) -> None:
    from repro.core.sensitivity import SensitivityAnalysis
    analysis = SensitivityAnalysis(total_bits=_capacity(args))
    print(format_table(
        ["metric", "parameter", "d(log m)/d(log p)"],
        [[s.metric, s.parameter, f"{s.value:+.3f}"]
         for s in analysis.full_report()]))


def _finish_analysis(args: argparse.Namespace, diagnostics) -> int:
    """Baseline filtering, rendering and exit-code policy for lint/check."""
    from repro.analysis import (Baseline, Severity, diagnostics_to_json,
                                format_diagnostics)
    if args.write_baseline:
        path = Baseline.from_diagnostics(diagnostics).save(args.write_baseline)
        print(f"baseline with {len(diagnostics)} finding(s) written "
              f"to {path}")
        return 0
    baseline = None
    if args.baseline:
        baseline = Baseline.load(args.baseline)
    elif not args.no_baseline:
        start = args.paths[0] if getattr(args, "paths", None) else "."
        baseline = Baseline.discover(start)
    if baseline is not None:
        before = len(diagnostics)
        diagnostics = baseline.filter(diagnostics)
        _log.info("baseline suppressed %d finding(s)",
                  before - len(diagnostics))
    if args.format == "json":
        print(diagnostics_to_json(diagnostics))
    elif diagnostics:
        print(format_diagnostics(diagnostics))
    else:
        print("no findings")
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    warnings = sum(1 for d in diagnostics if d.severity is Severity.WARNING)
    return 1 if errors or (args.strict and warnings) else 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the AST unit-discipline linter over Python files/directories."""
    from repro.analysis import lint_paths
    with obs.span("lint", paths=len(args.paths)):
        diagnostics = lint_paths(args.paths)
    return _finish_analysis(args, diagnostics)


def cmd_check(args: argparse.Namespace) -> int:
    """Run the pre-solve model checker.

    With no paths, checks the library's builtin model registry (the
    paper's macros, refresh policies, tech nodes and the local-block
    netlists).  Paths name Python files/directories whose module-level
    model objects — and anything returned by a ``repro_check_targets()``
    hook — are checked too.
    """
    from repro.analysis.model import check_targets
    with obs.span("check", paths=len(args.paths)):
        diagnostics = check_targets(
            args.paths, include_defaults=not args.no_defaults)
    return _finish_analysis(args, diagnostics)


def cmd_audit(args: argparse.Namespace) -> int:
    """Run the determinism & parallel-safety audit (rules D3xx).

    Builds the interprocedural call graph of the given files, classifies
    every function by effect (unseeded RNG, ambient process state,
    global mutation) and reports where an effect breaks the executor's
    bit-identity contract: RNG draws not derived from a caller seed,
    wall-clock or environment values in fingerprints and checkpoints,
    global mutation in worker processes, hash-ordered reductions, and
    effect annotations contradicted by the code.
    """
    from repro.analysis import audit_paths
    with obs.span("audit", paths=len(args.paths)):
        diagnostics = audit_paths(args.paths)
    return _finish_analysis(args, diagnostics)


def _add_analysis_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="diagnostic output format (default text)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="suppress findings recorded in FILE "
                             "(default: auto-discover "
                             ".repro-lint-baseline.json upwards from the "
                             "first path)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any auto-discovered baseline file")
    parser.add_argument("--write-baseline", metavar="FILE", default=None,
                        nargs="?", const=".repro-lint-baseline.json",
                        help="accept all current findings into FILE "
                             "(default: .repro-lint-baseline.json in the "
                             "current directory) and exit 0")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings too, not just "
                             "errors")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast low-leakage DRAM macro models (DATE 2009 repro)")
    parser.add_argument("--retention", type=float, default=1 * ms,
                        help="worst-case retention override, seconds "
                             "(default 1e-3)")
    # Shared flags accepted after any subcommand: instrumentation and
    # logging controls (`repro fig5 --profile --metrics-out run.json`).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--profile", action="store_true",
                        help="enable instrumentation and print the span "
                             "tree + metrics after the command")
    common.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write the instrumented run report "
                             "(spans + metrics + events + series + config "
                             "fingerprint) as JSON to FILE")
    common.add_argument("--events-out", metavar="FILE", default=None,
                        help="stream structured events as JSON lines to "
                             "FILE while the command runs (implies "
                             "instrumentation)")
    common.add_argument("-v", "--verbose", action="count", default=0,
                        help="log INFO (-v) or DEBUG (-vv) to stderr")
    common.add_argument("--seed", type=int, default=2009,
                        help="RNG seed for every command that samples "
                             "randomness; echoed into the run report "
                             "(default 2009)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, handler, extra in (
        ("headline", cmd_headline, None),
        ("compare", cmd_compare, None),
        ("fig5", cmd_fig5, "fig5"),
        ("fig8", cmd_fig8, None),
        ("fig9", cmd_fig9, None),
        ("methodology", cmd_methodology, None),
        ("pvt", cmd_pvt, "pvt"),
        ("refresh-plan", cmd_refresh_plan, "plan"),
        ("banking", cmd_banking, None),
        ("voltage", cmd_voltage, None),
        ("optimize", cmd_optimize, "optimize"),
        ("sensitivity", cmd_sensitivity, None),
        ("mc", cmd_mc, "mc"),
        ("chaos", cmd_chaos, "chaos"),
    ):
        sub = subparsers.add_parser(name, help=handler.__doc__,
                                    parents=[common])
        _add_size_argument(sub)
        if extra == "fig5":
            sub.add_argument("--cycles", type=int, default=60_000)
        if extra == "optimize":
            sub.add_argument("--max-ns", type=float, default=1.3,
                             help="access-time constraint in ns "
                                  "(<= 0 disables)")
            sub.add_argument("--activity", type=float, default=0.1)
            sub.add_argument("--jobs", type=int, default=1,
                             help="worker processes for the grid search "
                                  "(default 1 = serial; results are "
                                  "identical at any setting)")
            sub.add_argument("--batch", type=int, default=1,
                             help="grid points per worker dispatch "
                                  "(composes with --jobs; results are "
                                  "identical at any setting)")
            sub.add_argument("--progress", action="store_true",
                             help="force the live progress line even "
                                  "when stderr is not a TTY")
            _add_supervision_arguments(sub)
        if extra == "pvt":
            sub.add_argument("--technology", default="dram",
                             choices=("dram", "scratchpad", "sram"))
            sub.add_argument("--hot", type=float, default=358.0)
        if extra == "plan":
            sub.add_argument("--granules", type=int, default=128)
            sub.add_argument("--bins", type=int, default=5)
        if extra == "mc":
            sub.add_argument("--samples", type=int, default=2000,
                             help="Monte-Carlo population size")
            sub.add_argument("--checkpoint", metavar="FILE", default=None,
                             help="snapshot progress to FILE (atomic "
                                  "JSON keyed by config fingerprint)")
            sub.add_argument("--resume", action="store_true",
                             help="continue from an existing checkpoint")
            sub.add_argument("--max-seconds", type=float, default=0.0,
                             help="stop after this wall-clock budget "
                                  "(<= 0 disables)")
            sub.add_argument("--max-failures", type=int, default=0,
                             help="stop after this many failed samples "
                                  "(<= 0 disables)")
            sub.add_argument("--jobs", type=int, default=1,
                             help="worker processes for the sample sweep "
                                  "(default 1 = serial; statistics are "
                                  "bit-identical at any setting)")
            sub.add_argument("--batch", type=int, default=1,
                             help="samples solved together by the batched "
                                  "transient engine (transistor-level "
                                  "models only; composes with --jobs — "
                                  "each worker solves one batch; "
                                  "statistics are bit-identical at any "
                                  "setting)")
            sub.add_argument("--model",
                             choices=("retention", "localblock",
                                      "globalbitline"),
                             default="retention",
                             help="retention = analytic cell retention "
                                  "draw (default); localblock = "
                                  "transistor-level local-block read "
                                  "signal, the --batch workload; "
                                  "globalbitline = full hierarchical "
                                  "bitline read (16 blocks x 16 cells), "
                                  "the sparse-backend workload")
            sub.add_argument("--faults", choices=("none", "weak-cells"),
                             default="none",
                             help="also draw a fault plan and print the "
                                  "macro's degraded-mode report")
            sub.add_argument("--progress", action="store_true",
                             help="force the live progress line even "
                                  "when stderr is not a TTY")
            _add_supervision_arguments(sub)
        if extra == "chaos":
            sub.add_argument("--cycles", type=int, default=60_000,
                             help="trace length for the faulty refresh "
                                  "interference run")
            from repro.faults.chaos import CHAOS_SCENARIOS
            sub.add_argument("--scenario",
                             choices=("model",) + CHAOS_SCENARIOS
                             + ("matrix",),
                             default="model",
                             help="model = the model-level resilience "
                                  "run (default); anything else attacks "
                                  "the supervised executor with that "
                                  "process-level fault (matrix = all)")
            sub.add_argument("--samples", type=int, default=12,
                             help="sweep width for the process-level "
                                  "scenarios (default 12)")
            sub.add_argument("--jobs", type=int, default=2,
                             help="worker processes for the process-"
                                  "level scenarios (default 2)")
        sub.set_defaults(handler=handler)

    lint = subparsers.add_parser("lint", help=cmd_lint.__doc__,
                                 parents=[common])
    lint.add_argument("paths", nargs="+", metavar="PATH",
                      help="Python files or directories to lint")
    _add_analysis_arguments(lint)
    lint.set_defaults(handler=cmd_lint)

    check = subparsers.add_parser("check", help=cmd_check.__doc__,
                                  parents=[common])
    check.add_argument("paths", nargs="*", metavar="PATH",
                       help="Python files/directories whose model objects "
                            "to check (default: builtin registry only)")
    check.add_argument("--no-defaults", action="store_true",
                       help="skip the builtin model registry and check "
                            "only the given paths")
    _add_analysis_arguments(check)
    check.set_defaults(handler=cmd_check)

    audit = subparsers.add_parser("audit", help=cmd_audit.__doc__,
                                  parents=[common])
    audit.add_argument("paths", nargs="+", metavar="PATH",
                       help="Python files or directories to audit for "
                            "determinism and parallel-safety hazards")
    _add_analysis_arguments(audit)
    audit.set_defaults(handler=cmd_audit)

    from repro.obs.diff import DEFAULT_THRESHOLD
    from repro.obs.export import EXPORT_FORMATS
    obs_parser = subparsers.add_parser(
        "obs", help="telemetry utilities: export traces, diff runs")
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    export = obs_sub.add_parser("export", help=cmd_obs_export.__doc__,
                                parents=[common])
    export.add_argument("report", metavar="REPORT.json",
                        help="run report produced by --metrics-out")
    export.add_argument("--format", choices=EXPORT_FORMATS,
                        default="chrome",
                        help="output format (default chrome: a "
                             "Perfetto-loadable trace-event file)")
    export.add_argument("--out", metavar="FILE", default=None,
                        help="write the export to FILE instead of stdout")
    export.set_defaults(handler=cmd_obs_export)
    diff = obs_sub.add_parser("diff", help=cmd_obs_diff.__doc__,
                              parents=[common])
    diff.add_argument("before", metavar="BEFORE.json",
                      help="baseline run or benchmark report")
    diff.add_argument("after", metavar="AFTER.json",
                      help="candidate run or benchmark report")
    diff.add_argument("--threshold", type=float,
                      default=DEFAULT_THRESHOLD,
                      help="relative-change gate (default "
                           f"{DEFAULT_THRESHOLD:g} = "
                           f"{100 * DEFAULT_THRESHOLD:g}%%)")
    diff.add_argument("--format", choices=("text", "json"),
                      default="text",
                      help="diff output format (default text)")
    diff.set_defaults(handler=cmd_obs_diff)
    return parser


def _configure_logging(verbosity: int) -> None:
    if verbosity <= 0:
        return
    level = logging.INFO if verbosity == 1 else logging.DEBUG
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter(
        "%(levelname)s %(name)s: %(message)s"))
    root = logging.getLogger("repro")
    root.addHandler(handler)
    root.setLevel(level)


def _report_config(args: argparse.Namespace) -> dict:
    """The run's effective configuration, for the report fingerprint.

    Observability plumbing (output paths, the progress flag) is not
    configuration — two runs differing only in where telemetry lands
    must share a fingerprint.  Neither are the supervision knobs: by
    the bit-identity contract a supervised run produces the same
    results as an unsupervised one, so deadlines/retries must not
    split fingerprints.
    """
    return {key: value for key, value in vars(args).items()
            if key not in ("handler", "profile", "metrics_out",
                           "events_out", "progress", "verbose",
                           "timeout", "retries", "max_sample_seconds")}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(getattr(args, "verbose", 0))
    profiling = bool(getattr(args, "profile", False)
                     or getattr(args, "metrics_out", None)
                     or getattr(args, "events_out", None))
    _log.info("running command %r", args.command)
    if not profiling:
        return int(args.handler(args) or 0)

    from repro.errors import ConfigurationError

    registry, tracer = obs.MetricsRegistry(), obs.Tracer()
    try:
        events = obs.EventLog(jsonl_path=getattr(args, "events_out", None))
    except ConfigurationError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    timeseries = obs.TimeSeriesRecorder()
    try:
        with obs.instrumented(registry=registry, tracer=tracer,
                              events=events, timeseries=timeseries):
            with obs.span(args.command):
                rc = int(args.handler(args) or 0)
    finally:
        events.close()
    report = obs.build_run_report(args.command, _report_config(args),
                                  registry, tracer, events=events,
                                  timeseries=timeseries)
    if args.metrics_out:
        try:
            obs.write_run_report(args.metrics_out, args.command,
                                 _report_config(args), report=report)
        except OSError as exc:
            print(f"repro: cannot write run report "
                  f"{args.metrics_out}: {exc}", file=sys.stderr)
            return 1
        _log.info("run report written to %s", args.metrics_out)
    if args.profile:
        _print_profile(report, tracer)
    return rc


def _print_profile(report: dict, tracer: "obs.Tracer") -> None:
    print("\n== spans ==", file=sys.stderr)
    print(obs.format_span_tree(tracer.finished_roots()), file=sys.stderr)
    print("== metrics ==", file=sys.stderr)
    snapshot = report["metrics"]
    for counter, value in snapshot["counters"].items():
        print(f"  {counter:<40} {value:g}", file=sys.stderr)
    for gauge, value in snapshot["gauges"].items():
        print(f"  {gauge:<40} {value:g}", file=sys.stderr)
    for hist, data in snapshot["histograms"].items():
        if data["count"]:
            print(f"  {hist:<40} n={data['count']} "
                  f"mean={data['sum'] / data['count']:.2f}",
                  file=sys.stderr)
        else:
            print(f"  {hist:<40} n=0", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
