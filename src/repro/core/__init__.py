"""Top-level API: the paper's fast low-leakage DRAM macro.

* :class:`~repro.core.fastdram.FastDramDesign` — build the proposed
  macro (scratch-pad or DRAM-technology variant) and quote every
  headline figure.
* :class:`~repro.core.methodology.MethodologyFlow` — the three-step
  evaluation flow of paper Fig. 6.
* :class:`~repro.core.compare.SramDramComparison` — every head-to-head
  figure of the evaluation (Fig. 7a-d, Fig. 8, Fig. 9, Table I).
* :mod:`~repro.core.designspace` — parameter sweeps and the ablations
  of the architectural choices.
"""

from repro.core.fastdram import FastDramDesign, FastDramMacro
from repro.core.methodology import MethodologyFlow, MethodologyReport
from repro.core.compare import SramDramComparison, ComparisonRow
from repro.core.designspace import (
    sweep_cells_per_lbl,
    sweep_retention,
    sweep_sizes,
    sweep_word_width,
    WordWidthRow,
    ablate_architecture,
    AblationResult,
)
from repro.core.report import format_table
from repro.core.figures import ascii_chart, comparison_chart
from repro.core.pvt import PvtAnalysis, PvtPoint, hot_retention_derating
from repro.core.sensitivity import Sensitivity, SensitivityAnalysis
from repro.core.optimizer import (
    DesignCandidate,
    DesignOptimizer,
    OptimisationResult,
)
from repro.core.voltage import (
    VoltagePoint,
    build_at_supply,
    scaled_supply_design,
    voltage_sweep,
)

__all__ = [
    "FastDramDesign",
    "FastDramMacro",
    "MethodologyFlow",
    "MethodologyReport",
    "SramDramComparison",
    "ComparisonRow",
    "sweep_cells_per_lbl",
    "sweep_retention",
    "sweep_sizes",
    "sweep_word_width",
    "WordWidthRow",
    "ablate_architecture",
    "AblationResult",
    "format_table",
    "ascii_chart",
    "comparison_chart",
    "PvtAnalysis",
    "PvtPoint",
    "hot_retention_derating",
    "Sensitivity",
    "SensitivityAnalysis",
    "DesignCandidate",
    "DesignOptimizer",
    "OptimisationResult",
    "VoltagePoint",
    "build_at_supply",
    "scaled_supply_design",
    "voltage_sweep",
]
