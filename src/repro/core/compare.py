"""Head-to-head DRAM vs SRAM comparison — every evaluation figure.

:class:`SramDramComparison` produces the data series behind:

* Fig. 7a — access time vs memory size,
* Fig. 7b — dynamic (read & write) energy vs size,
* Fig. 7c — cell static power vs size,
* Fig. 7d / Table I — area vs size,
* Fig. 8  — energy repartition of the fast DRAM,
* Fig. 9  — total power vs activity for several sizes.

Rows come back as plain dataclasses so benchmarks can both print the
paper's tables and assert the qualitative shape.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.array.macro import MacroDesign
from repro.core.fastdram import FastDramDesign
from repro.errors import ConfigurationError
from repro.sramref.model import SramBaselineDesign
from repro.units import MHz, kb


@dataclasses.dataclass(frozen=True)
class ComparisonRow:
    """One size point of a DRAM-vs-SRAM metric."""

    total_bits: int
    sram: float
    dram: float

    @property
    def ratio(self) -> float:
        """SRAM / DRAM — >1 means the DRAM wins."""
        # Exact-zero guard before dividing; a tolerance would hide
        # legitimately tiny DRAM values.
        if self.dram == 0:  # noqa: L102
            raise ConfigurationError("DRAM value is zero; ratio undefined")
        return self.sram / self.dram

    @property
    def size_label(self) -> str:
        if self.total_bits % (1024 * kb) == 0:
            return f"{self.total_bits // (1024 * kb)} Mb"
        return f"{self.total_bits // kb} kb"


@dataclasses.dataclass(frozen=True)
class SramDramComparison:
    """Comparison harness over a list of memory sizes."""

    sizes: Sequence[int] = (128 * kb, 256 * kb, 512 * kb, 1024 * kb, 2048 * kb)
    dram_design: FastDramDesign = dataclasses.field(
        default_factory=FastDramDesign)
    sram_design: SramBaselineDesign = dataclasses.field(
        default_factory=SramBaselineDesign)
    retention_override: float | None = None

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ConfigurationError("need at least one size")

    # -- macro builders -----------------------------------------------------

    def _resolved_retention(self) -> float:
        """Retention period for refresh accounting, resolved once.

        Running the 6-sigma Monte-Carlo per figure point would dominate
        the comparison's runtime; the worst-case retention is a property
        of the *cell*, not of the array size, so it is cached here.
        """
        if self.retention_override is not None:
            return self.retention_override
        cached = getattr(self, "_retention_cache", None)
        if cached is None:
            stats = self.dram_design.cell().retention_model().statistics(
                count=1500)
            cached = stats.worst_case
            object.__setattr__(self, "_retention_cache", cached)
        return cached

    def dram_macro(self, total_bits: int) -> MacroDesign:
        return self.dram_design.build(
            total_bits, retention_override=self._resolved_retention())

    def sram_macro(self, total_bits: int) -> MacroDesign:
        return self.sram_design.build(total_bits)

    def _rows(self, metric) -> List[ComparisonRow]:
        rows = []
        for bits in self.sizes:
            rows.append(ComparisonRow(
                total_bits=bits,
                sram=metric(self.sram_macro(bits)),
                dram=metric(self.dram_macro(bits)),
            ))
        return rows

    # -- the figures -----------------------------------------------------------

    def access_time(self) -> List[ComparisonRow]:
        """Fig. 7a: read access time, seconds."""
        return self._rows(lambda m: m.access_time())

    def read_energy(self) -> List[ComparisonRow]:
        """Fig. 7b (read): dynamic energy per read access, joules."""
        return self._rows(lambda m: m.read_energy().total)

    def write_energy(self) -> List[ComparisonRow]:
        """Fig. 7b (write): dynamic energy per write access, joules."""
        return self._rows(lambda m: m.write_energy().total)

    def static_power(self) -> List[ComparisonRow]:
        """Fig. 7c: cell static power, watts."""
        return self._rows(lambda m: m.static_power().power)

    def area(self) -> List[ComparisonRow]:
        """Fig. 7d / Table I: macro area, m^2."""
        return self._rows(lambda m: m.area())

    def energy_repartition(self, total_bits: int = 128 * kb
                           ) -> Dict[str, Dict[str, float]]:
        """Fig. 8: fast-DRAM energy breakdown for read and write, joules."""
        macro = self.dram_macro(total_bits)
        return {
            "read": macro.read_energy().breakdown(),
            "write": macro.write_energy().breakdown(),
        }

    def total_power(self, activity: float, total_bits: int,
                    clock_frequency: float = 500 * MHz) -> ComparisonRow:
        """Fig. 9: one point of total power vs activity, watts.

        ``activity`` is the fraction of cycles with an access; accesses
        split 50/50 read/write (the paper's random pattern).
        """
        if not 0.0 <= activity <= 1.0:
            raise ConfigurationError("activity must lie in [0, 1]")
        if clock_frequency <= 0:
            raise ConfigurationError("clock frequency must be positive")

        def power(macro: MacroDesign) -> float:
            dynamic = 0.5 * (macro.read_energy().total
                             + macro.write_energy().total)
            return (activity * clock_frequency * dynamic
                    + macro.static_power().power)

        return ComparisonRow(
            total_bits=total_bits,
            sram=power(self.sram_macro(total_bits)),
            dram=power(self.dram_macro(total_bits)),
        )

    def total_power_curves(self, activities: Sequence[float],
                           clock_frequency: float = 500 * MHz
                           ) -> Dict[int, List[ComparisonRow]]:
        """Fig. 9: full curves, one list of rows per memory size."""
        return {
            bits: [self.total_power(a, bits, clock_frequency)
                   for a in activities]
            for bits in self.sizes
        }
