"""Design-space sweeps and architecture ablations.

The ablations quantify the paper's three architectural choices by
turning each one off:

* ``local_restore`` — without the local write-after-read, the restore
  runs over the GBL through the global write circuitry: the refresh-row
  energy picks up the full global write path and the restore time lands
  on the access path (a conventional-DRAM-like macro).
* ``low_swing_gbl`` — a full-swing GBL multiplies the global-bitline
  energy by ``(vdd / swing)^2``-ish supply charge.
* ``fine_granularity`` — one big block (all cells of a column on one
  bitline): the charge-sharing signal collapses; the sweep shows how far
  the signal degrades per LBL length, reproducing the paper's "very
  short local bitlines" argument.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.analysis.effects import deterministic_under_seed
from repro.checkpoint import Checkpoint, RunBudget, SweepOutcome
from repro.core.fastdram import FastDramDesign
from repro.exec import run_parallel_sweep
from repro.errors import ConfigurationError
from repro.array.timing import GBL_SUPPLY, GBL_SWING
from repro.units import kb, ms


@dataclasses.dataclass(frozen=True)
class LblSweepRow:
    """One point of the cells-per-LBL sweep."""

    cells_per_lbl: int
    access_time: float
    read_energy: float
    write_energy: float
    area: float
    read_signal: float


def sweep_cells_per_lbl(values: Sequence[int] = (4, 8, 16, 32, 64, 128),
                        technology: str = "dram",
                        total_bits: int = 128 * kb) -> List[LblSweepRow]:
    """Sweep the local-bitline length (paper Sec. III: 16 -> 32 cells).

    Doubling the cells per LBL must have "a marginal impact on the power
    consumption, as most of the localblock power consumption is due to
    the local sense amplifiers" (paper Sec. IV) — the benchmark asserts
    this on the returned rows.
    """
    rows = []
    for cells in values:
        design = FastDramDesign(technology=technology, cells_per_lbl=cells)
        try:
            macro = design.build(total_bits, retention_override=1 * ms)
            rows.append(LblSweepRow(
                cells_per_lbl=cells,
                access_time=macro.access_time(),
                read_energy=macro.read_energy().total,
                write_energy=macro.write_energy().total,
                area=macro.area(),
                read_signal=macro.organization.read_signal(),
            ))
        except ConfigurationError:
            # Signal too small for the SA at this LBL length: the sweep
            # records nothing — exactly the infeasibility the paper's
            # fine subdivision avoids.
            continue
    if not rows:
        raise ConfigurationError("no feasible LBL length in the sweep")
    return rows


@dataclasses.dataclass(frozen=True)
class RetentionSweepRow:
    """One point of the retention sweep (drives Fig. 5 and Fig. 7c)."""

    retention_time: float
    static_power: float
    refresh_rows_per_second: float


def sweep_retention(values: Sequence[float],
                    total_bits: int = 128 * kb) -> List[RetentionSweepRow]:
    """Static power across assumed worst-case retention times."""
    if any(v <= 0 for v in values):
        raise ConfigurationError("retention times must be positive")
    design = FastDramDesign()
    rows = []
    for retention in values:
        macro = design.build(total_bits, retention_override=retention)
        report = macro.static_power()
        rows.append(RetentionSweepRow(
            retention_time=retention,
            static_power=report.power,
            refresh_rows_per_second=macro.organization.n_words / retention,
        ))
    return rows


@deterministic_under_seed
def _evaluate_retention_row(retention: float,
                            total_bits: int) -> RetentionSweepRow:
    """One retention point (module-level so worker processes can
    unpickle it); ``retention`` in seconds."""
    macro = FastDramDesign().build(total_bits, retention_override=retention)
    return RetentionSweepRow(
        retention_time=retention,
        static_power=macro.static_power().power,
        refresh_rows_per_second=macro.organization.n_words / retention,
    )


def sweep_retention_resumable(values: Sequence[float],
                              total_bits: int = 128 * kb,
                              checkpoint: Optional[Checkpoint] = None,
                              budget: Optional[RunBudget] = None,
                              jobs: int = 1,
                              batch: int = 1) -> SweepOutcome:
    """Checkpointed, budget-bounded :func:`sweep_retention`.

    Returns a :class:`~repro.checkpoint.SweepOutcome` whose ``results``
    map ``"retention=<seconds>"`` keys to :class:`RetentionSweepRow`
    values; a killed run resumed from the same checkpoint completes
    with exactly the rows an uninterrupted run would have produced.
    ``jobs > 1`` fans the points out over worker processes with
    identical results and checkpoint contents.  The rows are analytic,
    so ``batch`` only sets the dispatch chunk size (points per worker
    round-trip) — results are identical at every setting.
    """
    if any(v <= 0 for v in values):
        raise ConfigurationError("retention times must be positive")
    if batch < 1:
        raise ConfigurationError("batch must be >= 1")
    items = [(f"retention={retention:g}", _evaluate_retention_row,
              (retention, total_bits))
             for retention in values]
    return run_parallel_sweep(
        items, jobs=jobs, checkpoint=checkpoint, budget=budget,
        encode=dataclasses.asdict,
        decode=lambda raw: RetentionSweepRow(**raw),
        chunk_size=batch if batch > 1 else None,
    )


@dataclasses.dataclass(frozen=True)
class SizeSweepRow:
    """One memory-size point of the scaling sweep."""

    total_bits: int
    access_time: float
    read_energy: float
    write_energy: float
    area: float
    static_power: float


def sweep_sizes(sizes: Sequence[int] = (128 * kb, 512 * kb, 2048 * kb),
                technology: str = "dram",
                retention_override: float = 1 * ms) -> List[SizeSweepRow]:
    """The paper's extension to larger memories (Sec. III last step)."""
    design = FastDramDesign(technology=technology)
    rows = []
    for bits in sizes:
        macro = design.build(bits, retention_override=retention_override)
        rows.append(SizeSweepRow(
            total_bits=bits,
            access_time=macro.access_time(),
            read_energy=macro.read_energy().total,
            write_energy=macro.write_energy().total,
            area=macro.area(),
            static_power=macro.static_power().power,
        ))
    return rows


@deterministic_under_seed
def _evaluate_size_row(bits: int, technology: str,
                       retention_override: float) -> SizeSweepRow:
    """One size point (module-level so worker processes can unpickle
    it); ``retention_override`` in seconds."""
    design = FastDramDesign(technology=technology)
    macro = design.build(bits, retention_override=retention_override)
    return SizeSweepRow(
        total_bits=bits,
        access_time=macro.access_time(),
        read_energy=macro.read_energy().total,
        write_energy=macro.write_energy().total,
        area=macro.area(),
        static_power=macro.static_power().power,
    )


def sweep_sizes_resumable(sizes: Sequence[int] = (128 * kb, 512 * kb,
                                                  2048 * kb),
                          technology: str = "dram",
                          retention_override: float = 1 * ms,
                          checkpoint: Optional[Checkpoint] = None,
                          budget: Optional[RunBudget] = None,
                          jobs: int = 1,
                          batch: int = 1) -> SweepOutcome:
    """Checkpointed, budget-bounded :func:`sweep_sizes`.

    ``retention_override`` is in seconds; ``jobs > 1`` evaluates the
    sizes in worker processes with identical results.  ``batch`` sets
    the dispatch chunk size only (see :func:`sweep_retention_resumable`).
    """
    if batch < 1:
        raise ConfigurationError("batch must be >= 1")
    items = [(f"bits={bits}", _evaluate_size_row,
              (bits, technology, retention_override))
             for bits in sizes]
    return run_parallel_sweep(
        items, jobs=jobs, checkpoint=checkpoint, budget=budget,
        encode=dataclasses.asdict,
        decode=lambda raw: SizeSweepRow(**raw),
        chunk_size=batch if batch > 1 else None,
    )


@dataclasses.dataclass(frozen=True)
class WordWidthRow:
    """One point of the word-width sweep."""

    word_bits: int
    access_time: float
    read_energy_per_bit: float
    area: float


def sweep_word_width(widths: Sequence[int] = (16, 32, 64, 128),
                     total_bits: int = 128 * kb) -> List[WordWidthRow]:
    """Sweep the word width (one LWL = one word, paper Fig. 1).

    Wider words amortise decode/global overheads per bit but lengthen
    the LWL and widen the local block; the sweep exposes the optimum
    the paper's 32-bit choice sits near.
    """
    design_rows = []
    for width in widths:
        if total_bits % (width * 32):
            continue
        design = FastDramDesign()
        macro = design.build(total_bits, word_bits=width,
                             retention_override=1 * ms)
        design_rows.append(WordWidthRow(
            word_bits=width,
            access_time=macro.access_time(),
            read_energy_per_bit=macro.energy_per_bit(),
            area=macro.area(),
        ))
    if not design_rows:
        raise ConfigurationError("no feasible word width in the sweep")
    return design_rows


@dataclasses.dataclass(frozen=True)
class AblationResult:
    """Proposed architecture vs one disabled feature."""

    feature: str
    proposed_value: float
    ablated_value: float
    metric: str

    @property
    def penalty_factor(self) -> float:
        """ablated / proposed — >1 quantifies what the feature buys."""
        if self.proposed_value <= 0:
            raise ConfigurationError("proposed value must be positive")
        return self.ablated_value / self.proposed_value


def ablate_architecture(total_bits: int = 128 * kb,
                        retention_override: float = 1 * ms
                        ) -> List[AblationResult]:
    """Quantify each architectural choice by disabling it."""
    design = FastDramDesign()
    macro = design.build(total_bits, retention_override=retention_override)
    org = macro.organization
    energy = macro.energy_model
    timing = macro.timing_model
    results = []

    # 1) Local write-after-read: without it, every read and every refresh
    #    restores over the GBL through the global write path.
    local_refresh = energy.refresh_row_energy()
    global_restore = local_refresh + energy.global_path_energy(write=True)
    results.append(AblationResult(
        feature="local_restore",
        proposed_value=local_refresh,
        ablated_value=global_restore,
        metric="refresh_row_energy_j",
    ))
    hidden_restore = timing.write_after_read_delay()
    results.append(AblationResult(
        feature="local_restore_latency",
        proposed_value=macro.access_time(),
        ablated_value=macro.access_time() + hidden_restore,
        metric="access_time_s",
    ))

    # 2) Low-swing GBL: full-swing global bitlines.
    low_swing = org.word_bits * org.gbl_capacitance() * GBL_SWING * GBL_SUPPLY
    full_swing = org.word_bits * org.gbl_capacitance() * org.node.vdd ** 2 * 0.5
    read = macro.read_energy().total
    results.append(AblationResult(
        feature="low_swing_gbl",
        proposed_value=read,
        ablated_value=read - low_swing + full_swing,
        metric="read_energy_j",
    ))

    # 3) Fine granularity: one block per column of the whole matrix; the
    #    charge-sharing signal collapses with the long bitline.
    monoblock_cells = org.total_bits // org.word_bits
    mono_org = dataclasses.replace(
        org, cells_per_lbl=monoblock_cells, block_columns=None)
    results.append(AblationResult(
        feature="fine_granularity_signal",
        proposed_value=org.read_signal(),
        ablated_value=mono_org.read_signal(),
        metric="read_signal_v",
    ))
    return results
