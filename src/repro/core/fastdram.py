"""The proposed fast DRAM macro (paper Sec. II).

:class:`FastDramDesign` is the user-facing factory.  Two variants match
the methodology (paper Fig. 6):

* ``technology="scratchpad"`` — the silicon-provable test memory: logic
  process, 11 fF CMOS-capacitance cell, 16 cells per LBL, 1.2 V word
  line;
* ``technology="dram"`` (default) — the estimate in DRAM technology:
  30 fF trench cell, 1.7 V overdriven word line, which doubles the
  cells per LBL to 32 at similar timing (paper Sec. III).
"""

from __future__ import annotations

import dataclasses
import logging

from repro import obs
from repro.array.macro import MacroDesign
from repro.array.organization import ArrayOrganization
from repro.array.senseamp import SenseAmplifier
from repro.cells.dram1t1c import Dram1t1cCell
from repro.errors import ConfigurationError
from repro.tech.node import TechnologyNode
from repro.units import fF, kb
from repro.variability.retention import RetentionStatistics

_log = logging.getLogger(__name__)

DRAM_CELLS_PER_LBL = 32
SCRATCHPAD_CELLS_PER_LBL = 16
DRAM_CELL_ASPECT = 1.0  # trench cells are near-square


@dataclasses.dataclass(frozen=True)
class FastDramMacro(MacroDesign):
    """A built fast-DRAM macro with its refresh-specific views."""

    cell_design: Dram1t1cCell | None = None

    def retention_statistics(self, count: int = 2000,
                             n_sigma: float = 6.0) -> RetentionStatistics:
        """6-sigma retention Monte-Carlo of the cell (paper Sec. III)."""
        if self.cell_design is None:
            raise ConfigurationError("macro was built without a cell design")
        return self.cell_design.retention_model().statistics(
            count=count, n_sigma=n_sigma)

    def refresh_row_energy(self) -> float:
        """Energy of one localized row refresh, joules (paper Fig. 4)."""
        return self.energy_model.refresh_row_energy()

    def refresh_slot_time(self) -> float:
        """Time one refresh occupies its local block, seconds."""
        timing = self.timing_model
        return (timing.wordline_delay() + timing.bitline_delay()
                + timing.local_sense_delay()
                + timing.write_after_read_delay())


@dataclasses.dataclass(frozen=True)
class FastDramDesign:
    """Factory for fast-DRAM macro models.

    ``node_override`` substitutes the technology node — the hook used by
    :mod:`repro.core.pvt` to evaluate the design across process corners
    and temperatures.
    """

    technology: str = "dram"
    cells_per_lbl: int | None = None
    node_override: TechnologyNode | None = None

    def __post_init__(self) -> None:
        if self.technology not in ("dram", "scratchpad"):
            raise ConfigurationError(
                f"unknown technology {self.technology!r}; "
                "use 'dram' or 'scratchpad'"
            )

    # -- ingredients ------------------------------------------------------------

    def node(self) -> TechnologyNode:
        if self.node_override is not None:
            return self.node_override
        if self.technology == "dram":
            return TechnologyNode.dram_90nm()
        return TechnologyNode.logic_90nm()

    def cell(self) -> Dram1t1cCell:
        node = self.node()
        if self.technology == "dram":
            return Dram1t1cCell.dram_technology(node)
        return Dram1t1cCell.scratchpad(node)

    def resolved_cells_per_lbl(self) -> int:
        if self.cells_per_lbl is not None:
            if self.cells_per_lbl < 2:
                raise ConfigurationError("need at least 2 cells per LBL")
            return self.cells_per_lbl
        if self.technology == "dram":
            return DRAM_CELLS_PER_LBL
        return SCRATCHPAD_CELLS_PER_LBL

    # -- assembly ----------------------------------------------------------------

    def build(self, total_bits: int = 128 * kb,
              word_bits: int = 32,
              retention_override: float | None = None) -> FastDramMacro:
        """Assemble the macro at ``total_bits`` capacity.

        ``retention_override`` pins the refresh period used for the
        static-power figure (default: the cell's 6-sigma worst case).
        """
        if total_bits <= 0:
            raise ConfigurationError("total_bits must be positive")
        with obs.span("macro.build", technology=self.technology,
                      total_bits=total_bits):
            _log.debug("building %s macro: %d bits, %d-bit words",
                       self.technology, total_bits, word_bits)
            node = self.node()
            cell = self.cell()
            organization = ArrayOrganization(
                node=node,
                cell=cell.spec(),
                total_bits=total_bits,
                word_bits=word_bits,
                cells_per_lbl=self.resolved_cells_per_lbl(),
                cell_aspect_ratio=DRAM_CELL_ASPECT,
            )
            # DRAM local SA: larger than the SRAM one — it resolves a
            # smaller useful differential (single-ended vs dummy
            # reference) and restores the cell, which is the paper's
            # "more power on the local sense amplifiers" remark.
            local_sa = SenseAmplifier(node, input_units=5.0,
                                      internal_cap=6 * fF, tunable=True)
            global_sa = SenseAmplifier(node, input_units=6.0,
                                       internal_cap=8 * fF, tunable=True)
            obs.metrics().counter("macro.builds").inc()
            return FastDramMacro(
                organization=organization,
                local_sa=local_sa,
                global_sa=global_sa,
                retention_override=retention_override,
                cell_design=cell,
            )
