"""Plain-text figure rendering.

The paper's figures are line charts; the examples and benchmark result
files render them as ASCII so a terminal-only environment still *sees*
the shapes (log axes included, since every interesting sweep here spans
decades).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError


def ascii_chart(series: Dict[str, Sequence[float]],
                x_values: Sequence[float],
                width: int = 60, height: int = 16,
                log_x: bool = False, log_y: bool = False,
                x_label: str = "x", y_label: str = "y") -> str:
    """Render one or more series as an ASCII scatter-line chart.

    Each series gets a marker character; points map onto a
    ``width x height`` grid with optional log axes.  Returns the chart
    as a multi-line string.
    """
    if not series:
        raise ConfigurationError("need at least one series")
    if width < 10 or height < 4:
        raise ConfigurationError("chart too small to draw")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} points for "
                f"{len(x_values)} x values")
    if len(x_values) < 2:
        raise ConfigurationError("need at least two points")

    def transform(value: float, log: bool) -> float:
        if not log:
            return value
        if value <= 0:
            raise ConfigurationError("log axis needs positive values")
        return math.log10(value)

    xs = [transform(x, log_x) for x in x_values]
    all_ys = [transform(y, log_y)
              for values in series.values() for y in values]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(all_ys), max(all_ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@%&"
    legend = []
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"{marker} = {name}")
        for x, y in zip(xs, (transform(v, log_y) for v in values)):
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = [f"{y_label} ({'log' if log_y else 'lin'})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} ({'log' if log_x else 'lin'}): "
                 f"{x_values[0]:.3g} .. {x_values[-1]:.3g}")
    lines.append(" " + "   ".join(legend))
    return "\n".join(lines)


def comparison_chart(rows: List, metric_label: str,
                     log_y: bool = True) -> str:
    """Render a list of :class:`~repro.core.compare.ComparisonRow` as an
    SRAM-vs-DRAM chart over memory size."""
    if not rows:
        raise ConfigurationError("no rows to chart")
    sizes = [float(r.total_bits) for r in rows]
    return ascii_chart(
        {"SRAM": [r.sram for r in rows], "DRAM": [r.dram for r in rows]},
        sizes, log_x=True, log_y=log_y,
        x_label="bits", y_label=metric_label,
    )
