"""The three-step evaluation flow of paper Fig. 6.

1. *Scratch-pad test memory*: CMOS-capacitance cell in the logic
   process, validated by transistor-level simulation of the local block
   (our :mod:`repro.spice` stands in for the paper's SPICE + layout
   extraction).
2. *DRAM technology estimate*: swap in the trench cell with the
   overdriven word line, and verify the paper's finding that the number
   of cells per LBL can double (16 -> 32) at similar timing.
3. *Extension to larger memories*: rebuild at larger capacities and
   collect the Fig. 7 trends.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.array.localblock import LocalBlockWaveforms, simulate_localblock_read
from repro.core.designspace import SizeSweepRow, sweep_sizes
from repro.core.fastdram import FastDramDesign, FastDramMacro
from repro.errors import CalibrationError
from repro.units import kb


@dataclasses.dataclass(frozen=True)
class MethodologyReport:
    """Everything the three-step flow produces."""

    scratchpad_macro: FastDramMacro
    scratchpad_waveforms: List[LocalBlockWaveforms]
    dram_macro: FastDramMacro
    timing_ratio: float  # DRAM-tech (32 cells) vs scratch-pad (16 cells)
    size_sweep: List[SizeSweepRow]

    @property
    def doubling_holds(self) -> bool:
        """Paper Sec. III: 32 cells/LBL with overdrive keeps similar
        timing to the 16-cell scratch-pad.  "Similar" = within 25 %."""
        return abs(self.timing_ratio - 1.0) <= 0.25


@dataclasses.dataclass(frozen=True)
class MethodologyFlow:
    """Runs the paper's evaluation methodology end to end."""

    total_bits: int = 128 * kb
    simulate_circuits: bool = True

    def step1_scratchpad(self) -> tuple[FastDramMacro, List[LocalBlockWaveforms]]:
        """Design + circuit-validate the scratch-pad test memory."""
        design = FastDramDesign(technology="scratchpad")
        macro = design.build(self.total_bits)
        waveforms: List[LocalBlockWaveforms] = []
        if self.simulate_circuits:
            cell = design.cell()
            for stored in (0, 1):
                wave = simulate_localblock_read(
                    cell, cells_per_lbl=design.resolved_cells_per_lbl(),
                    stored_value=stored)
                if not wave.restored_correctly:
                    raise CalibrationError(
                        f"scratch-pad local block failed to restore a "
                        f"stored '{stored}' — circuit and analytic model "
                        "disagree"
                    )
                waveforms.append(wave)
        return macro, waveforms

    def step2_dram_estimate(self, scratchpad: FastDramMacro) -> tuple[
            FastDramMacro, float]:
        """Re-estimate in DRAM technology; check the 16 -> 32 doubling."""
        design = FastDramDesign(technology="dram")
        macro = design.build(self.total_bits)
        ratio = macro.access_time() / scratchpad.access_time()
        return macro, ratio

    def step3_larger_memories(self) -> List[SizeSweepRow]:
        """Extend the estimate to larger arrays (up to 2 Mb)."""
        return sweep_sizes(
            sizes=(128 * kb, 256 * kb, 512 * kb, 1024 * kb, 2048 * kb))

    def run(self) -> MethodologyReport:
        """Execute all three steps."""
        scratchpad, waveforms = self.step1_scratchpad()
        dram, ratio = self.step2_dram_estimate(scratchpad)
        sweep = self.step3_larger_memories()
        return MethodologyReport(
            scratchpad_macro=scratchpad,
            scratchpad_waveforms=waveforms,
            dram_macro=dram,
            timing_ratio=ratio,
            size_sweep=sweep,
        )
