"""Design-space optimisation over the architecture knobs.

Given a capacity and constraints (max access time, minimum sensing
yield, supply ceiling), the optimiser walks the discrete design grid —
cells per LBL, word width, supply voltage — prices every feasible
candidate with the macro models, and returns the best candidate per
objective plus the Pareto front of the (access time, total power, area)
space.  This is the tool a system integrator would actually run before
adopting the paper's macro.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.analysis.effects import deterministic_under_seed
from repro.checkpoint import Checkpoint, RunBudget
from repro.core.fastdram import FastDramDesign
from repro.exec import SupervisionPolicy, run_parallel_sweep
from repro.core.voltage import scaled_supply_design
from repro.errors import ConfigurationError
from repro.units import MHz, kb, ms

OBJECTIVES = ("access_time", "total_power", "area", "energy_per_bit")


@dataclasses.dataclass(frozen=True)
class DesignCandidate:
    """One evaluated point of the design grid."""

    cells_per_lbl: int
    word_bits: int
    vdd: float
    access_time: float
    read_energy: float
    write_energy: float
    energy_per_bit: float
    area: float
    static_power: float
    total_power: float  # at the optimiser's activity point

    def metric(self, objective: str) -> float:
        if objective not in OBJECTIVES:
            raise ConfigurationError(
                f"unknown objective {objective!r}; choose from {OBJECTIVES}")
        return getattr(self, objective)

    def dominates(self, other: "DesignCandidate") -> bool:
        """Pareto dominance on (access_time, total_power, area)."""
        axes = ("access_time", "total_power", "area")
        no_worse = all(getattr(self, a) <= getattr(other, a) for a in axes)
        better = any(getattr(self, a) < getattr(other, a) for a in axes)
        return no_worse and better


@dataclasses.dataclass(frozen=True)
class OptimisationResult:
    """Outcome of one (possibly partial) grid search.

    ``completed``/``attempted`` count grid points actually evaluated
    (``attempted`` includes points whose evaluation failed);
    ``exhausted`` names the budget ceiling that stopped a partial run
    (``None`` for a full search).  A partial result still carries the
    front and per-objective bests over the points it did evaluate.
    """

    candidates: List[DesignCandidate]
    pareto_front: List[DesignCandidate]
    best: Dict[str, DesignCandidate]
    completed: int = 0
    attempted: int = 0
    exhausted: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ConfigurationError("no feasible design candidates")

    @property
    def complete(self) -> bool:
        return self.exhausted is None and self.completed == self.attempted


@dataclasses.dataclass(frozen=True)
class DesignOptimizer:
    """Exhaustive search over the fast-DRAM design grid.

    Parameters
    ----------
    total_bits:
        Macro capacity.
    max_access_time:
        Feasibility constraint, seconds (None = unconstrained).
    activity:
        Activity point for the total-power objective, defined for
        32-bit-word traffic.  Candidates with other word widths carry a
        bandwidth-fair scaled activity (a 16-bit macro must access twice
        per 32 bits delivered), so the word-width axis is compared at
        constant data bandwidth, not constant access rate.
    clock_frequency:
        Clock for the dynamic-power term.
    retention:
        Refresh period basis for the static-power term.
    """

    total_bits: int = 128 * kb
    max_access_time: float | None = None
    activity: float = 0.1
    clock_frequency: float = 500 * MHz
    retention: float = 1 * ms
    cells_per_lbl_grid: Sequence[int] = (16, 32, 64, 128)
    word_bits_grid: Sequence[int] = (16, 32, 64)
    vdd_grid: Sequence[float] = (1.0, 1.2, 1.3)

    def __post_init__(self) -> None:
        if not 0.0 <= self.activity <= 1.0:
            raise ConfigurationError("activity must lie in [0, 1]")
        if self.clock_frequency <= 0 or self.retention <= 0:
            raise ConfigurationError("clock and retention must be positive")

    # -- evaluation ----------------------------------------------------------

    @deterministic_under_seed
    def _evaluate(self, cells: int, word_bits: int,
                  vdd: float) -> DesignCandidate | None:
        if self.total_bits % (cells * word_bits):
            return None
        try:
            design = scaled_supply_design(
                FastDramDesign(cells_per_lbl=cells), vdd)
            macro = design.build(self.total_bits, word_bits=word_bits,
                                 retention_override=self.retention)
            access_time = macro.access_time()
        except ConfigurationError:
            return None  # infeasible corner of the grid (signal, supply)
        if (self.max_access_time is not None
                and access_time > self.max_access_time):
            return None
        read = macro.read_energy().total
        write = macro.write_energy().total
        static = macro.static_power().power
        bandwidth_fair_activity = min(1.0, self.activity * 32.0 / word_bits)
        dynamic = (bandwidth_fair_activity * self.clock_frequency
                   * 0.5 * (read + write))
        return DesignCandidate(
            cells_per_lbl=cells,
            word_bits=word_bits,
            vdd=vdd,
            access_time=access_time,
            read_energy=read,
            write_energy=write,
            energy_per_bit=read / word_bits,
            area=macro.area(),
            static_power=static,
            total_power=static + dynamic,
        )

    # -- the search -----------------------------------------------------------

    def grid_points(self) -> List[tuple]:
        """The (cells, word_bits, vdd) grid in evaluation order."""
        return [(cells, word_bits, vdd)
                for cells in self.cells_per_lbl_grid
                for word_bits in self.word_bits_grid
                for vdd in self.vdd_grid]

    def run(self, checkpoint: Optional[Checkpoint] = None,
            budget: Optional[RunBudget] = None,
            jobs: int = 1,
            progress=None,
            policy: Optional[SupervisionPolicy] = None,
            batch: int = 1) -> OptimisationResult:
        """Evaluate the grid; returns candidates, front and bests.

        With a ``checkpoint`` the evaluated points are snapshotted and a
        killed search resumes where it stopped; with a ``budget`` the
        search stops at the ceiling and returns the partial result with
        explicit ``completed/attempted`` accounting (still an error if
        *no* evaluated point is feasible).  ``jobs > 1`` prices grid
        points in worker processes (this frozen dataclass pickles, so
        the bound evaluator ships directly) with identical results.
        A ``policy`` (:class:`~repro.exec.SupervisionPolicy`) with any
        knob enabled adds per-point deadlines, the hang watchdog and
        seeded retry on top, at any ``jobs`` setting.

        The grid pricing is analytic (no transient Newton solve), so
        ``batch`` here controls only the executor's dispatch chunking:
        each worker round-trip prices ``batch`` grid points.  Results
        are identical at every setting; ``batch=1`` keeps the
        executor's own default chunking.
        """
        if batch < 1:
            raise ConfigurationError("batch must be >= 1")
        grid = self.grid_points()
        items = [
            (f"cells={cells},word={word_bits},vdd={vdd:g}",
             self._evaluate, (cells, word_bits, vdd))
            for cells, word_bits, vdd in grid
        ]
        outcome = run_parallel_sweep(
            items, jobs=jobs, checkpoint=checkpoint, budget=budget,
            encode=lambda c: None if c is None else dataclasses.asdict(c),
            decode=lambda raw: (None if raw is None
                                else DesignCandidate(**raw)),
            chunk_size=batch if batch > 1 else None,
            progress=progress, policy=policy,
        )
        candidates = [c for c in outcome.results.values() if c is not None]
        if not candidates:
            raise ConfigurationError(
                "no design on the grid satisfies the constraints"
                + (f" (stopped on {outcome.exhausted} after "
                   f"{outcome.completed} point(s))" if outcome.exhausted
                   else ""))
        front = [c for c in candidates
                 if not any(other.dominates(c) for other in candidates)]
        # Tie-break single-objective winners on the remaining axes so a
        # winner is never a dominated duplicate (e.g. equal-area designs
        # at different supplies).
        best = {
            objective: min(
                candidates,
                key=lambda c: (c.metric(objective), c.access_time,
                               c.total_power, c.area))
            for objective in OBJECTIVES
        }
        return OptimisationResult(candidates=candidates,
                                  pareto_front=front, best=best,
                                  completed=outcome.completed,
                                  attempted=outcome.attempted,
                                  exhausted=outcome.exhausted)
