"""PVT (process, voltage, temperature) analysis of the macro designs.

The paper quotes single worst-case numbers; a production evaluation
needs the full corner picture: how much slower at SS, how much leakier
at FF/hot, and — the DRAM-specific question — how much *retention* (and
hence refresh power) is lost at high temperature.  This module
re-evaluates any design across :class:`~repro.tech.corners.Corner` and
temperature, reusing the identical model stack.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.core.fastdram import FastDramDesign
from repro.errors import ConfigurationError
from repro.sramref.model import SramBaselineDesign
from repro.tech.corners import Corner, apply_corner
from repro.units import kb


@dataclasses.dataclass(frozen=True)
class PvtPoint:
    """One (corner, temperature) evaluation of one design."""

    corner: Corner
    temperature: float
    access_time: float
    read_energy: float
    static_power: float
    worst_retention: float | None  # None for static cells

    @property
    def label(self) -> str:
        return f"{self.corner.value.upper()}@{self.temperature:.0f}K"


@dataclasses.dataclass(frozen=True)
class PvtAnalysis:
    """Corner/temperature sweep harness.

    Parameters
    ----------
    technology:
        "dram", "scratchpad" or "sram" — which design to sweep.
    total_bits:
        Macro capacity.
    retention_samples:
        Monte-Carlo size for the per-corner retention estimate (dynamic
        cells); retention is *recomputed per corner* because junction
        leakage roughly doubles every 10 K — the dominant PVT effect on
        the DRAM's static power.
    seed:
        RNG seed for the per-corner retention Monte-Carlo.
    """

    technology: str = "dram"
    total_bits: int = 128 * kb
    retention_samples: int = 600
    seed: int = 0

    def __post_init__(self) -> None:
        if self.technology not in ("dram", "scratchpad", "sram"):
            raise ConfigurationError(
                f"unknown technology {self.technology!r}")
        if self.total_bits <= 0:
            raise ConfigurationError("total_bits must be positive")

    def _base_node(self):
        if self.technology == "sram":
            return SramBaselineDesign().node
        return FastDramDesign(technology=self.technology).node()

    def evaluate(self, corner: Corner, temperature: float) -> PvtPoint:
        """Evaluate the design at one PVT point."""
        node = apply_corner(self._base_node(), corner, temperature)
        if self.technology == "sram":
            macro = SramBaselineDesign(node=node).build(self.total_bits)
            retention = None
        else:
            design = FastDramDesign(technology=self.technology,
                                    node_override=node)
            stats = design.cell().retention_model().statistics(
                count=self.retention_samples, seed=self.seed)
            retention = stats.worst_case
            macro = design.build(self.total_bits,
                                 retention_override=retention)
        return PvtPoint(
            corner=corner,
            temperature=temperature,
            access_time=macro.access_time(),
            read_energy=macro.read_energy().total,
            static_power=macro.static_power().power,
            worst_retention=retention,
        )

    def sweep(self, corners: Sequence[Corner] = (Corner.SS, Corner.TT,
                                                 Corner.FF),
              temperatures: Sequence[float] = (300.0, 358.0)
              ) -> List[PvtPoint]:
        """The classical corner matrix."""
        points = []
        for temperature in temperatures:
            for corner in corners:
                points.append(self.evaluate(corner, temperature))
        return points


def hot_retention_derating(technology: str = "dram",
                           temperatures: Sequence[float] = (300.0, 330.0,
                                                            358.0),
                           samples: int = 600) -> List[PvtPoint]:
    """Retention vs temperature at the typical corner.

    Isolates the effect the refresh controller must budget for: the
    worst-case retention collapse with temperature (junction leakage
    doubling per ~10 K).
    """
    analysis = PvtAnalysis(technology=technology,
                           retention_samples=samples)
    return [analysis.evaluate(Corner.TT, t) for t in temperatures]
