"""Plain-text report formatting used by examples and benchmarks."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import ConfigurationError


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table with right-padded columns.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ---
    1  2.5
    """
    materialised: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    for row in materialised:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row with {len(row)} cells under {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths).rstrip(),
    ]
    for row in materialised:
        lines.append(
            "  ".join(t.ljust(w) for t, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
