"""Parameter sensitivity of the headline figures.

For a modelling framework, the question after "what is the number?" is
"what moves it?".  This module computes normalised sensitivities

    S = (d metric / metric) / (d parameter / parameter)

by central finite differences over the exposed design knobs, for any of
the macro's headline metrics.  It both documents the model (which knob
dominates which figure) and guards refactorings: the sensitivity signs
are asserted by tests.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, List

from repro.core.fastdram import FastDramDesign
from repro.errors import ConfigurationError
from repro.units import kb, ms

Metric = Callable[[object], float]

METRICS: Dict[str, Metric] = {
    "access_time": lambda macro: macro.access_time(),
    "read_energy": lambda macro: macro.read_energy().total,
    "write_energy": lambda macro: macro.write_energy().total,
    "area": lambda macro: macro.area(),
    "static_power": lambda macro: macro.static_power().power,
}


@dataclasses.dataclass(frozen=True)
class Sensitivity:
    """Normalised sensitivity of one metric to one knob."""

    metric: str
    parameter: str
    value: float  # d(log metric) / d(log parameter)


@dataclasses.dataclass(frozen=True)
class SensitivityAnalysis:
    """Finite-difference sensitivity harness for the fast-DRAM macro.

    Knobs are expressed as multiplicative perturbations applied through
    the design's builder; ``step`` is the relative perturbation used for
    the central difference.
    """

    total_bits: int = 128 * kb
    retention: float = 1 * ms
    step: float = 0.05

    def __post_init__(self) -> None:
        if not 0 < self.step < 0.5:
            raise ConfigurationError("step must lie in (0, 0.5)")

    # -- knob application ----------------------------------------------------

    def _build(self, cells_per_lbl: int | None = None,
               retention_scale: float = 1.0,
               word_bits: int = 32):
        design = FastDramDesign(cells_per_lbl=cells_per_lbl)
        return design.build(self.total_bits, word_bits=word_bits,
                            retention_override=self.retention
                            * retention_scale)

    def _metric_at(self, metric: Metric, **knobs) -> float:
        return metric(self._build(**knobs))

    # -- sensitivities -----------------------------------------------------------

    def retention_sensitivity(self, metric_name: str) -> Sensitivity:
        """Sensitivity to the worst-case retention time."""
        metric = self._lookup(metric_name)
        up = self._metric_at(metric, retention_scale=1.0 + self.step)
        down = self._metric_at(metric, retention_scale=1.0 - self.step)
        base = self._metric_at(metric)
        value = (up - down) / (2 * self.step * base)
        return Sensitivity(metric=metric_name, parameter="retention",
                           value=value)

    def lbl_length_sensitivity(self, metric_name: str) -> Sensitivity:
        """Sensitivity to the cells-per-LBL choice (32 -> 16 vs 64)."""
        metric = self._lookup(metric_name)
        up = self._metric_at(metric, cells_per_lbl=64)
        down = self._metric_at(metric, cells_per_lbl=16)
        # One octave either way: d(log p) = ln 4 across the difference.
        value = math.log(up / down) / math.log(4.0)
        return Sensitivity(metric=metric_name, parameter="cells_per_lbl",
                           value=value)

    def capacity_sensitivity(self, metric_name: str) -> Sensitivity:
        """Sensitivity to the macro capacity (one octave around base)."""
        metric = self._lookup(metric_name)
        design = FastDramDesign()
        up = metric(design.build(self.total_bits * 2,
                                 retention_override=self.retention))
        down = metric(design.build(self.total_bits // 2,
                                   retention_override=self.retention))
        value = math.log(up / down) / math.log(4.0)
        return Sensitivity(metric=metric_name, parameter="total_bits",
                           value=value)

    def full_report(self) -> List[Sensitivity]:
        """All knobs x all metrics."""
        report = []
        for metric_name in METRICS:
            report.append(self.retention_sensitivity(metric_name))
            report.append(self.lbl_length_sensitivity(metric_name))
            report.append(self.capacity_sensitivity(metric_name))
        return report

    @staticmethod
    def _lookup(metric_name: str) -> Metric:
        try:
            return METRICS[metric_name]
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown metric {metric_name!r}; "
                f"choose from {sorted(METRICS)}") from exc
