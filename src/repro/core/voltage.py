"""Supply-voltage scaling — the baseline's "boost mode".

The [10] SRAM runs 480 MHz nominally and 850 MHz in a boosted-supply
mode; the same knob applies to the fast DRAM.  This module rebuilds a
design at a scaled core supply and reports the speed/energy trade:
delay improves with overdrive, dynamic energy grows ~quadratically.

Scaling is applied to the core ``vdd`` (and the reliability ceiling is
respected); the DRAM word-line overdrive and the low-swing GBL rails
are architectural constants and stay put.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.core.fastdram import FastDramDesign, FastDramMacro
from repro.errors import ConfigurationError
from repro.units import kb, ms


@dataclasses.dataclass(frozen=True)
class VoltagePoint:
    """One supply point of the voltage sweep."""

    vdd: float
    access_time: float
    read_energy: float
    write_energy: float

    @property
    def energy_delay_product(self) -> float:
        return self.read_energy * self.access_time


def scaled_supply_design(design: FastDramDesign,
                         vdd: float) -> FastDramDesign:
    """``design`` rebuilt at core supply ``vdd``.

    Raises when the requested supply violates the node's reliability
    ceiling or drops below a functional floor (the HVT cell devices stop
    conducting usefully under ~2x their threshold).
    """
    node = design.node()
    if vdd > node.vdd_max:
        raise ConfigurationError(
            f"vdd {vdd} V exceeds the node ceiling {node.vdd_max} V")
    if vdd < 0.8:
        raise ConfigurationError(
            f"vdd {vdd} V below the architecture's functional floor")
    scaled_node = dataclasses.replace(node, vdd=vdd)
    return dataclasses.replace(design, node_override=scaled_node)


def build_at_supply(vdd: float, total_bits: int = 128 * kb,
                    retention_override: float = 1 * ms) -> FastDramMacro:
    """Convenience: the default fast DRAM at supply ``vdd``."""
    design = scaled_supply_design(FastDramDesign(), vdd)
    return design.build(total_bits, retention_override=retention_override)


def voltage_sweep(supplies=(0.9, 1.0, 1.1, 1.2, 1.3),
                  total_bits: int = 128 * kb) -> List[VoltagePoint]:
    """Speed/energy across supplies (boost mode at the top end)."""
    points = []
    for vdd in supplies:
        macro = build_at_supply(vdd, total_bits=total_bits)
        points.append(VoltagePoint(
            vdd=vdd,
            access_time=macro.access_time(),
            read_energy=macro.read_energy().total,
            write_energy=macro.write_energy().total,
        ))
    return points
