"""Exception hierarchy for :mod:`repro`.

Every error raised deliberately by the library derives from
:class:`ReproError`, so downstream users can catch library failures
without catching programming mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every deliberate error raised by repro."""


class ConfigurationError(ReproError):
    """A model was configured with physically meaningless parameters."""


class ConvergenceError(ReproError):
    """A numerical solver (Newton, transient) failed to converge."""


class NetlistError(ReproError):
    """A circuit netlist is malformed (dangling node, duplicate name, ...)."""


class SimulationError(ReproError):
    """A simulation was asked to do something unsupported or inconsistent."""


class CalibrationError(ReproError):
    """A calibrated model fell outside its validated envelope."""
