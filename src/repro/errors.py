"""Exception hierarchy for :mod:`repro`.

Every error raised deliberately by the library derives from
:class:`ReproError`, so downstream users can catch library failures
without catching programming mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every deliberate error raised by repro."""


class ConfigurationError(ReproError):
    """A model was configured with physically meaningless parameters."""


class ConvergenceError(ReproError):
    """A numerical solver (Newton, transient) failed to converge.

    Carries structured diagnostics when the raiser knows them:
    ``time`` (failing time point, seconds), ``iterations`` (Newton
    iterations spent), ``worst_node`` (name of the node with the
    largest residual update), ``recovery`` (the
    :class:`repro.spice.recovery.RecoveryReport` of every escalation
    rung tried before giving up).  They are folded into the message and
    kept as attributes for programmatic triage.
    """

    def __init__(self, message: str, *, time: "float | None" = None,
                 iterations: "int | None" = None,
                 worst_node: "str | None" = None,
                 recovery: "object | None" = None) -> None:
        details = []
        if time is not None:
            details.append(f"t={time:g}s")
        if iterations is not None:
            details.append(f"after {iterations} Newton iterations")
        if worst_node is not None:
            details.append(f"worst residual at node {worst_node!r}")
        if recovery is not None:
            attempts = getattr(recovery, "attempts", ())
            details.append(f"{len(attempts)} recovery attempts exhausted")
        if details:
            message = f"{message} ({', '.join(details)})"
        super().__init__(message)
        self.time = time
        self.iterations = iterations
        self.worst_node = worst_node
        self.recovery = recovery


class NetlistError(ReproError):
    """A circuit netlist is malformed (dangling node, duplicate name, ...).

    When raised by :meth:`repro.spice.netlist.Circuit.validate` it
    carries the model checker's full findings — every structural defect
    of the circuit, not just the first — as ``diagnostics`` (a list of
    :class:`repro.analysis.diagnostics.Diagnostic`); programmatic
    callers can triage by rule ID instead of parsing the message.
    """

    def __init__(self, message: str, *,
                 diagnostics: "list | None" = None) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class SimulationError(ReproError):
    """A simulation was asked to do something unsupported or inconsistent."""


class DeadlineExceeded(SimulationError):
    """A supervised sample ran past its per-sample deadline.

    Raised cooperatively by :func:`repro.exec.supervise.tick` from long
    solver loops (transient stepping, the recovery ladder), so a worker
    can abandon a pathological sample cleanly instead of being killed
    by the parent's watchdog.  Carries the deadline and the elapsed
    time as attributes for the supervisor's structured accounting.
    """

    def __init__(self, message: str, *, elapsed: "float | None" = None,
                 limit: "float | None" = None) -> None:
        if elapsed is not None and limit is not None:
            message = f"{message} ({elapsed:.3f}s elapsed, limit {limit:g}s)"
        super().__init__(message)
        self.elapsed = elapsed
        self.limit = limit


class CalibrationError(ReproError):
    """A calibrated model fell outside its validated envelope."""
