"""repro.exec — process-parallel execution of keyed work items.

:func:`run_parallel_sweep` is the multi-process twin of
:func:`repro.checkpoint.run_sweep`: same keys, same
:class:`~repro.checkpoint.SweepOutcome` accounting, same checkpoint
file format — plus a ``jobs`` knob that fans evaluation out over a
:class:`~concurrent.futures.ProcessPoolExecutor` while keeping the
merged results deterministic (submission order, not completion order).
"""

from repro.exec.parallel import run_parallel_sweep

__all__ = ["run_parallel_sweep"]
