"""repro.exec — process-parallel execution of keyed work items.

:func:`run_parallel_sweep` is the multi-process twin of
:func:`repro.checkpoint.run_sweep`: same keys, same
:class:`~repro.checkpoint.SweepOutcome` accounting, same checkpoint
file format — plus a ``jobs`` knob that fans evaluation out over a
:class:`~concurrent.futures.ProcessPoolExecutor` while keeping the
merged results deterministic (submission order, not completion order).

:mod:`repro.exec.supervise` hardens the same contract for hostile
conditions: :func:`run_supervised_sweep` adds per-sample deadlines, a
heartbeat-based hung-worker watchdog, seeded retry with backoff, a
crash-loop circuit breaker that quarantines repeat offenders, and
graceful pool-shrink/serial degradation — all configured by a frozen
:class:`SupervisionPolicy` and reachable from
:func:`run_parallel_sweep` via its ``policy`` argument.
"""

from repro.exec.parallel import run_parallel_sweep
from repro.exec.supervise import (SupervisionPolicy, TimeoutFailure,
                                  run_supervised_sweep, sample_deadline,
                                  tick, trap_termination)

__all__ = [
    "run_parallel_sweep",
    "run_supervised_sweep",
    "SupervisionPolicy",
    "TimeoutFailure",
    "sample_deadline",
    "tick",
    "trap_termination",
]
