"""Process-parallel sweep executor with deterministic merging.

``run_parallel_sweep`` evaluates keyed work items across a pool of
worker processes and merges the results back **in submission order**,
so the outcome — results dict, failure list, checkpoint contents — is
bit-identical to a serial run of the same items.  The determinism
contract rests on three rules:

* **Ordered merge.**  Chunks are submitted in item order and their
  results are consumed in that same order, regardless of which worker
  finishes first.  A result computed "early" by a fast worker waits in
  its future until every earlier item has been merged.
* **Parent-only checkpoints.**  Workers never touch the checkpoint
  file; the parent saves the ``done`` mapping between merges with the
  exact same granularity (``save_every`` completed items) as
  :func:`repro.checkpoint.run_sweep`, so a parallel run killed mid-way
  resumes — serially or in parallel — to the identical final state.
* **Per-sample crash isolation.**  A worker process dying (segfault,
  ``os._exit``) breaks the pool; the executor rebuilds it, retries the
  affected chunk one item at a time to isolate the culprit, records
  that single item as a failure, and carries on — a crash costs one
  sample, never the sweep.

Evaluation failures (:class:`~repro.errors.ReproError`) are recorded
against the budget like the serial harness; any other exception is a
programming error and is re-raised in the parent.  Each worker runs its
items under a fresh :class:`~repro.obs.MetricsRegistry` (when the
parent has instrumentation enabled) and ships the snapshot back with
its results; the parent folds the snapshots into its own registry via
:meth:`~repro.obs.MetricsRegistry.merge_snapshot`.

Work items are ``(key, fn, args)`` triples rather than the serial
harness's ``(key, thunk)`` pairs because the callable and its
arguments must cross a process boundary: ``fn`` must be picklable
(module-level function or bound method of a picklable object), as must
``args`` and the returned value.  With ``jobs=1`` the call degrades to
:func:`repro.checkpoint.run_sweep` — no pool, no pickling, the exact
serial code path.
"""

from __future__ import annotations

import functools
import logging
import math
import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.checkpoint import (BudgetClock, Checkpoint, RunBudget,
                              SweepOutcome, run_sweep)
from repro.errors import ConfigurationError, ReproError

_log = logging.getLogger(__name__)

#: One parallel work item: (unique key, picklable callable, arguments).
WorkItem = Tuple[str, Callable[..., Any], Tuple[Any, ...]]


def _portable_exception(exc: Exception) -> Exception:
    """``exc`` if it survives pickling, else a string-carrying stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")
    return exc


def _run_chunk(chunk: Sequence[WorkItem], instrument: bool):
    """Worker-side evaluation of one chunk (module-level for pickling).

    Returns ``(results, snapshot)`` where ``results`` is a list of
    ``(key, status, payload)`` triples — status ``"ok"`` carries the
    value, ``"fail"`` the stringified :class:`ReproError`, ``"raise"``
    the original exception to re-raise in the parent — and ``snapshot``
    is the worker's metrics snapshot (``None`` while instrumentation is
    disabled).  The registry is fresh per chunk so forked workers never
    re-ship metrics inherited from the parent.
    """
    registry = None
    if instrument:
        registry = obs.MetricsRegistry()
        obs.enable(registry=registry, tracer=obs.Tracer())
    results = []
    for key, fn, args in chunk:
        try:
            value = fn(*args)
        except ReproError as exc:
            results.append((key, "fail", f"{type(exc).__name__}: {exc}"))
        except Exception as exc:
            results.append((key, "raise", _portable_exception(exc)))
        else:
            results.append((key, "ok", value))
    snapshot = registry.snapshot() if registry is not None else None
    return results, snapshot


def _pool_context():
    """Prefer fork (cheap, inherits imports); fall back to the default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()  # pragma: no cover - non-POSIX


def run_parallel_sweep(items: Sequence[WorkItem],
                       jobs: int = 1,
                       checkpoint: Optional[Checkpoint] = None,
                       budget: Optional[RunBudget] = None,
                       save_every: int = 1,
                       encode: Optional[Callable[[Any], Any]] = None,
                       decode: Optional[Callable[[Any], Any]] = None,
                       chunk_size: Optional[int] = None) -> SweepOutcome:
    """Evaluate keyed work items over ``jobs`` worker processes.

    Mirrors :func:`repro.checkpoint.run_sweep` exactly — checkpoint
    format, budget enforcement, :class:`SweepOutcome` accounting — and
    with ``jobs=1`` *is* that function (items are wrapped into thunks
    and delegated, so the serial CLI default pays no executor cost).
    ``chunk_size`` controls how many items ride in one inter-process
    dispatch (default: enough for ~4 chunks per worker); chunking
    never affects results, only dispatch overhead.
    """
    keys = [key for key, _fn, _args in items]
    if len(set(keys)) != len(keys):
        raise ConfigurationError("sweep item keys must be unique")
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    if save_every < 1:
        raise ConfigurationError("save_every must be >= 1")
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError("chunk_size must be >= 1")
    if jobs == 1:
        thunks = [(key, functools.partial(fn, *args))
                  for key, fn, args in items]
        return run_sweep(thunks, checkpoint=checkpoint, budget=budget,
                         save_every=save_every, encode=encode, decode=decode)

    encode = encode or (lambda value: value)
    decode = decode or (lambda value: value)

    done: Dict[str, Any] = {}
    if checkpoint is not None:
        done = checkpoint.load() or {}
    pending = [item for item in items if item[0] not in done]
    size = chunk_size or max(1, math.ceil(len(pending) / (4 * jobs)))
    chunks: List[List[WorkItem]] = [
        list(pending[start:start + size])
        for start in range(0, len(pending), size)]

    clock = BudgetClock(budget)
    failures: List[str] = []
    exhausted: Optional[str] = None
    dirty = 0
    instrument = obs.is_enabled()
    parent_registry = obs.metrics() if instrument else None
    context = _pool_context()
    executor = ProcessPoolExecutor(max_workers=jobs, mp_context=context)
    try:
        with obs.span("sweep.parallel", items=len(items), jobs=jobs):
            futures = [executor.submit(_run_chunk, chunk, instrument)
                       for chunk in chunks]
            index = 0
            while index < len(chunks) and exhausted is None:
                try:
                    chunk_results, snapshot = futures[index].result()
                except BrokenProcessPool:
                    # A worker died mid-chunk.  Rebuild the pool, split
                    # the offending chunk into single-item chunks to
                    # isolate the crash, and resubmit everything not yet
                    # merged (later futures broke with the pool too).
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = ProcessPoolExecutor(max_workers=jobs,
                                                   mp_context=context)
                    chunk = chunks[index]
                    if len(chunk) > 1:
                        singles = [[item] for item in chunk]
                        chunks[index:index + 1] = singles
                        futures[index:index + 1] = [None] * len(singles)
                    else:
                        key = chunk[0][0]
                        _log.warning(
                            "sweep worker crashed evaluating item %r", key)
                        obs.metrics().counter("sweep.worker_crashes").inc()
                        failures.append(key)
                        clock.fail()
                        index += 1
                    for later in range(index, len(chunks)):
                        futures[later] = executor.submit(
                            _run_chunk, chunks[later], instrument)
                    continue
                if parent_registry is not None and snapshot is not None:
                    parent_registry.merge_snapshot(snapshot)
                for key, status, payload in chunk_results:
                    exhausted = clock.exhausted()
                    if exhausted is not None:
                        _log.info("parallel sweep stopped on %s after "
                                  "%d item(s)", exhausted, len(done))
                        break
                    if status == "ok":
                        done[key] = encode(payload)
                        dirty += 1
                        if checkpoint is not None and dirty >= save_every:
                            checkpoint.save(done)
                            dirty = 0
                    elif status == "fail":
                        _log.warning("sweep item %r failed: %s", key, payload)
                        obs.metrics().counter("sweep.failures").inc()
                        failures.append(key)
                        clock.fail()
                    else:  # a non-ReproError bug: save progress, re-raise
                        if checkpoint is not None and dirty:
                            checkpoint.save(done)
                            dirty = 0
                        raise payload
                index += 1
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    if checkpoint is not None and dirty:
        checkpoint.save(done)

    results = {key: decode(done[key]) for key in keys if key in done}
    return SweepOutcome(
        results=results,
        completed=len(results),
        attempted=len(results) + len(failures),
        failures=tuple(failures),
        exhausted=exhausted,
    )
