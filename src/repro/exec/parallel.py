"""Process-parallel sweep executor with deterministic merging.

``run_parallel_sweep`` evaluates keyed work items across a pool of
worker processes and merges the results back **in submission order**,
so the outcome — results dict, failure list, checkpoint contents — is
bit-identical to a serial run of the same items.  The determinism
contract rests on three rules:

* **Ordered merge.**  Chunks are submitted in item order and their
  results are consumed in that same order, regardless of which worker
  finishes first.  A result computed "early" by a fast worker waits in
  its future until every earlier item has been merged.
* **Parent-only checkpoints.**  Workers never touch the checkpoint
  file; the parent saves the ``done`` mapping between merges with the
  exact same granularity (``save_every`` completed items) as
  :func:`repro.checkpoint.run_sweep`, so a parallel run killed mid-way
  resumes — serially or in parallel — to the identical final state.
* **Per-sample crash isolation.**  A worker process dying (segfault,
  ``os._exit``) breaks the pool; the executor rebuilds it, retries the
  affected chunk one item at a time to isolate the culprit (each lone
  item gets one acquitting retry, since a broken pool also takes down
  innocent in-flight futures), records the crashing item as a failure,
  and carries on — a crash costs one sample, never the sweep.

Evaluation failures (:class:`~repro.errors.ReproError`) are recorded
against the budget like the serial harness; any other exception is a
programming error and is re-raised in the parent.  Each worker runs its
items under fresh telemetry instances (a
:class:`~repro.obs.MetricsRegistry`, an :class:`~repro.obs.EventLog`
and a :class:`~repro.obs.TimeSeriesRecorder`, when the parent has
instrumentation enabled) and ships the snapshots back with its
results; the parent folds them into its own instances **in submission
order** — metrics via
:meth:`~repro.obs.MetricsRegistry.merge_snapshot`, events appended via
:meth:`~repro.obs.EventLog.extend`, series via
:meth:`~repro.obs.TimeSeriesRecorder.merge_snapshot` — so parent-side
telemetry is deterministic regardless of worker scheduling.  A
``progress`` reporter, when given, observes the same ordered merge
(one ``advance`` per item), which is what drives the CLI's live
rate/ETA/failure line.

Work items are ``(key, fn, args)`` triples rather than the serial
harness's ``(key, thunk)`` pairs because the callable and its
arguments must cross a process boundary: ``fn`` must be picklable
(module-level function or bound method of a picklable object), as must
``args`` and the returned value.  With ``jobs=1`` the call degrades to
:func:`repro.checkpoint.run_sweep` — no pool, no pickling, the exact
serial code path.
"""

from __future__ import annotations

import functools
import logging
import math
import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.effects import (mutates_global_state, observational,
                                    pure)
from repro.checkpoint import (BudgetClock, Checkpoint, RunBudget,
                              SweepOutcome, run_sweep)
from repro.errors import ConfigurationError, ReproError
from repro.exec.supervise import (SupervisionPolicy, run_supervised_sweep,
                                  trap_termination)

_log = logging.getLogger(__name__)

#: One parallel work item: (unique key, picklable callable, arguments).
WorkItem = Tuple[str, Callable[..., Any], Tuple[Any, ...]]


@pure
def _portable_exception(exc: Exception) -> Exception:
    """``exc`` if it survives pickling, else a string-carrying stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
    except Exception:  # noqa: D307 - the stand-in *is* the record
        return RuntimeError(f"{type(exc).__name__}: {exc}")
    return exc


@mutates_global_state
def _run_chunk(chunk: Sequence[WorkItem], instrument: bool):
    """Worker-side evaluation of one chunk (module-level for pickling).

    Returns ``(results, telemetry)`` where ``results`` is a list of
    ``(key, status, payload)`` triples — status ``"ok"`` carries the
    value, ``"fail"`` the stringified :class:`ReproError`, ``"raise"``
    the original exception to re-raise in the parent — and ``telemetry``
    bundles the worker's metrics snapshot, structured events and
    time-series snapshot (``None`` while instrumentation is disabled).
    Every telemetry instance is fresh per chunk so forked workers never
    re-ship data inherited from the parent.
    """
    telemetry = None
    if instrument:
        registry = obs.MetricsRegistry()
        event_log = obs.EventLog()
        recorder = obs.TimeSeriesRecorder()
        # The one sanctioned worker-side global mutation: fresh telemetry
        # instances whose snapshots the *parent* merges in submission
        # order — nothing recorded here is lost or racy.
        obs.enable(registry=registry, tracer=obs.Tracer(),  # noqa: D303
                   events=event_log, timeseries=recorder)
    results = []
    for key, fn, args in chunk:
        try:
            value = fn(*args)
        except ReproError as exc:
            results.append((key, "fail", f"{type(exc).__name__}: {exc}"))
        except Exception as exc:
            results.append((key, "raise", _portable_exception(exc)))
        else:
            results.append((key, "ok", value))
    if instrument:
        telemetry = {
            "metrics": registry.snapshot(),
            "events": event_log.to_dicts(),
            "timeseries": recorder.snapshot(),
        }
    return results, telemetry


@observational
def _merge_telemetry(telemetry) -> None:
    """Fold one worker's telemetry into the parent's instances.

    Called in chunk submission order — the deterministic ordered merge
    the determinism contract promises — so parent-side event order and
    series contents are independent of worker scheduling.
    """
    if telemetry is None or not obs.is_enabled():
        return
    obs.metrics().merge_snapshot(telemetry.get("metrics", {}))
    obs.events().extend(telemetry.get("events", []))
    obs.timeseries().merge_snapshot(telemetry.get("timeseries", {}))


def _pool_context():
    """Prefer fork (cheap, inherits imports); fall back to the default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()  # pragma: no cover - non-POSIX


def run_parallel_sweep(items: Sequence[WorkItem],
                       jobs: int = 1,
                       checkpoint: Optional[Checkpoint] = None,
                       budget: Optional[RunBudget] = None,
                       save_every: int = 1,
                       encode: Optional[Callable[[Any], Any]] = None,
                       decode: Optional[Callable[[Any], Any]] = None,
                       chunk_size: Optional[int] = None,
                       progress: Optional[Any] = None,
                       policy: Optional[SupervisionPolicy] = None
                       ) -> SweepOutcome:
    """Evaluate keyed work items over ``jobs`` worker processes.

    Mirrors :func:`repro.checkpoint.run_sweep` exactly — checkpoint
    format, budget enforcement, :class:`SweepOutcome` accounting — and
    with ``jobs=1`` *is* that function (items are wrapped into thunks
    and delegated, so the serial CLI default pays no executor cost).
    ``chunk_size`` controls how many items ride in one inter-process
    dispatch (default: enough for ~4 chunks per worker); chunking
    never affects results, only dispatch overhead.  ``progress`` (a
    :class:`~repro.obs.progress.SweepProgress`) receives one
    ``advance`` call per merged item, in submission order.

    An *enabled* ``policy`` (:class:`SupervisionPolicy`) reroutes the
    whole call to :func:`repro.exec.supervise.run_supervised_sweep` —
    deadlines, hang watchdog, seeded retry, quarantine, degradation —
    with identical accounting; a ``None`` or all-defaults policy costs
    nothing.  Either way SIGTERM/Ctrl-C is trapped: the final parent
    checkpoint is written and the partial outcome comes back with
    ``interrupted=True``.
    """
    keys = [key for key, _fn, _args in items]
    if len(set(keys)) != len(keys):
        raise ConfigurationError("sweep item keys must be unique")
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    if save_every < 1:
        raise ConfigurationError("save_every must be >= 1")
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError("chunk_size must be >= 1")
    if policy is not None and policy.enabled:
        return run_supervised_sweep(
            items, policy, jobs=jobs, checkpoint=checkpoint, budget=budget,
            save_every=save_every, encode=encode, decode=decode,
            progress=progress)
    if jobs == 1:
        thunks = [(key, functools.partial(fn, *args))
                  for key, fn, args in items]
        with trap_termination():
            return run_sweep(thunks, checkpoint=checkpoint, budget=budget,
                             save_every=save_every, encode=encode,
                             decode=decode, progress=progress)

    encode = encode or (lambda value: value)
    decode = decode or (lambda value: value)

    done: Dict[str, Any] = {}
    if checkpoint is not None:
        done = checkpoint.load() or {}
    if progress is not None and done:
        progress.note_restored(len(done))
    pending = [item for item in items if item[0] not in done]
    size = chunk_size or max(1, math.ceil(len(pending) / (4 * jobs)))
    chunks: List[List[WorkItem]] = [
        list(pending[start:start + size])
        for start in range(0, len(pending), size)]

    clock = BudgetClock(budget)
    failures: List[str] = []
    exhausted: Optional[str] = None
    interrupted = False
    dirty = 0
    crash_retried: set = set()
    instrument = obs.is_enabled()
    context = _pool_context()
    executor = ProcessPoolExecutor(max_workers=jobs, mp_context=context)
    try:
        with obs.span("sweep.parallel", items=len(items), jobs=jobs), \
                trap_termination():
            futures = [executor.submit(_run_chunk, chunk, instrument)
                       for chunk in chunks]
            index = 0
            while index < len(chunks) and exhausted is None:
                try:
                    chunk_results, telemetry = futures[index].result()
                except BrokenProcessPool:
                    # A worker died mid-chunk.  Rebuild the pool, split
                    # the offending chunk into single-item chunks to
                    # isolate the crash, and resubmit everything not yet
                    # merged (later futures broke with the pool too).
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = ProcessPoolExecutor(max_workers=jobs,
                                                   mp_context=context)
                    chunk = chunks[index]
                    if len(chunk) > 1:
                        singles = [[item] for item in chunk]
                        chunks[index:index + 1] = singles
                        futures[index:index + 1] = [None] * len(singles)
                    elif chunk[0][0] not in crash_retried:
                        # A lone item's future can break when a *later*
                        # chunk's crash kills the pool before this result
                        # is fetched; one clean retry acquits the innocent
                        # (a genuine crasher crashes again immediately).
                        crash_retried.add(chunk[0][0])
                    else:
                        key = chunk[0][0]
                        _log.warning(
                            "sweep worker crashed evaluating item %r", key)
                        obs.metrics().counter("sweep.worker_crashes").inc()
                        obs.event("sweep.worker_crash", key=key)
                        failures.append(key)
                        clock.fail()
                        if progress is not None:
                            progress.advance(failed=1)
                        index += 1
                    for later in range(index, len(chunks)):
                        futures[later] = executor.submit(
                            _run_chunk, chunks[later], instrument)
                    continue
                _merge_telemetry(telemetry)
                for key, status, payload in chunk_results:
                    exhausted = clock.exhausted()
                    if exhausted is not None:
                        _log.info("parallel sweep stopped on %s after "
                                  "%d item(s)", exhausted, len(done))
                        break
                    if status == "ok":
                        done[key] = encode(payload)
                        dirty += 1
                        if progress is not None:
                            progress.advance(completed=1)
                        if checkpoint is not None and dirty >= save_every:
                            checkpoint.save(done)
                            dirty = 0
                    elif status == "fail":
                        _log.warning("sweep item %r failed: %s", key, payload)
                        obs.metrics().counter("sweep.failures").inc()
                        failures.append(key)
                        clock.fail()
                        if progress is not None:
                            progress.advance(failed=1)
                    else:  # a non-ReproError bug: save progress, re-raise
                        if checkpoint is not None and dirty:
                            checkpoint.save(done)
                            dirty = 0
                        raise payload
                index += 1
    except KeyboardInterrupt:
        # Graceful interruption (Ctrl-C, or SIGTERM via the trap):
        # cancel what never ran, keep every merged result, write the
        # final parent checkpoint below, and report a partial outcome
        # instead of losing the in-flight accounting.
        interrupted = True
        pending = sum(1 for key in keys
                      if key not in done and key not in failures)
        _log.warning("parallel sweep interrupted: %d item(s) done, "
                     "%d pending", len(done), pending)
        obs.event("sweep.interrupted", completed=len(done), pending=pending)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    if checkpoint is not None and dirty:
        checkpoint.save(done)

    results = {key: decode(done[key]) for key in keys if key in done}
    return SweepOutcome(
        results=results,
        completed=len(results),
        attempted=len(results) + len(failures),
        failures=tuple(failures),
        exhausted=exhausted,
        interrupted=interrupted,
    )
