"""Supervised sweep execution: deadlines, watchdog, retry, degradation.

:func:`run_supervised_sweep` is the hardened sibling of
:func:`repro.exec.parallel.run_parallel_sweep`: same work items, same
checkpoint format, same :class:`~repro.checkpoint.SweepOutcome`
accounting — plus a supervision layer that bounds, retries, degrades
and salvages under process-level faults.  Everything is driven by a
frozen :class:`SupervisionPolicy`:

* **Per-sample deadline** (``max_sample_seconds``).  Enforced twice:
  cooperatively, by :func:`tick` calls inside long solver loops raising
  :class:`~repro.errors.DeadlineExceeded` in the worker; and by the
  parent watchdog, which SIGKILLs a worker that blows well past its
  deadline without cooperating (a non-Python spin, a stuck syscall).
* **Hung-worker watchdog** (``hang_seconds``).  Workers announce each
  sample start and send throttled heartbeats over a multiprocessing
  queue (passed through the pool initializer — the one channel that
  crosses process creation).  A sample silent for longer than
  ``hang_seconds`` is declared hung: the parent records a structured
  :class:`TimeoutFailure`, kills the worker, rebuilds the pool, and
  requeues every innocent in-flight sample without charging them.
* **Seeded retry with backoff** (``max_retries``).  A struck sample is
  resubmitted after ``backoff_base * backoff_factor**(attempt-1)``
  seconds (capped at ``backoff_max``) with deterministic jitter drawn
  from a dedicated ``SeedSequence(policy.seed, spawn_key=(index,
  attempt))`` branch — never from the sample's own model stream, so a
  retried sample is bit-identical to a first-attempt success.
* **Crash-loop circuit breaker.**  A sample that exhausts its attempt
  budget on process-level faults (crash/hang/deadline) is *quarantined*
  — enumerated separately in ``SweepOutcome.quarantined``, never
  silently lost.  Samples that only ever failed with a
  :class:`~repro.errors.ReproError` stay ordinary failures.
* **Graceful degradation.**  Every ``shrink_after`` pool losses the
  worker count halves (``exec.supervise.pool_shrink``); at one worker,
  a further loss falls back to in-process serial evaluation
  (``exec.supervise.serial_fallback``), where only the cooperative
  deadline still applies.
* **Blame isolation.**  A pool break with several samples in flight
  does not charge anyone: the suspects re-run one at a time, so the
  next break names a single culprit and innocents keep their full
  retry budget.

Every decision is emitted through the event log under
``exec.supervise.*`` kinds.  Results, failures and checkpoint contents
are merged **in submission order** exactly like the unsupervised
executor, so a fault-free supervised run — and the surviving samples
of a faulty one — are bit-identical to ``--jobs 1``.

SIGTERM and Ctrl-C are trapped (:func:`trap_termination`): futures are
cancelled, the final parent checkpoint is written, and the partial
outcome comes back with ``interrupted=True`` instead of a traceback.
"""

from __future__ import annotations

import contextlib
import dataclasses
import logging
import os
import pickle
import queue as queue_module
import signal
import threading
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.analysis.effects import (deterministic_under_seed,
                                    mutates_global_state, observational,
                                    pure)
from repro.checkpoint import (BudgetClock, Checkpoint, RunBudget,
                              SweepOutcome)
from repro.errors import ConfigurationError, DeadlineExceeded, ReproError

_log = logging.getLogger(__name__)

#: Slack added to ``max_sample_seconds`` before the parent hard-kills a
#: worker: the cooperative :func:`tick` raise gets first claim on the
#: deadline, the SIGKILL is the backstop for non-cooperating samples.
_KILL_GRACE = 0.25

#: How long the parent waits for in-flight futures to settle after a
#: pool break before abandoning their results.
_SETTLE_SECONDS = 5.0


# -- policy -------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SupervisionPolicy:
    """Frozen knobs for one supervised sweep (``None`` = that guard off).

    ``enabled`` is False for the all-defaults policy, in which case
    :func:`repro.exec.parallel.run_parallel_sweep` never enters the
    supervised loop at all — disabled supervision costs nothing.
    """

    #: Hard per-sample wall-clock ceiling (cooperative raise, then kill).
    max_sample_seconds: Optional[float] = None
    #: Heartbeat silence after which an in-flight sample counts as hung.
    hang_seconds: Optional[float] = None
    #: Extra attempts per sample after the first (0 = never retry).
    max_retries: int = 0
    #: Whether :class:`~repro.errors.ReproError` failures are retried
    #: too, or only process-level faults (crash/hang/deadline).
    retry_failures: bool = True
    #: First retry delay in seconds.
    backoff_base: float = 0.05
    #: Multiplier applied per further attempt.
    backoff_factor: float = 2.0
    #: Ceiling on the un-jittered delay.
    backoff_max: float = 2.0
    #: Jitter amplitude: delay *= 1 + jitter_fraction * U(-1, 1).
    jitter_fraction: float = 0.25
    #: Pool losses before the worker count halves (degradation).
    shrink_after: int = 2
    #: Fall back to in-process serial evaluation once a single-worker
    #: pool is lost again (cooperative deadline only).
    serial_fallback: bool = True
    #: Parent supervision loop cadence.
    poll_seconds: float = 0.02
    #: Root entropy for the retry-jitter stream (independent of every
    #: sample's model stream by construction).
    seed: int = 0

    @property
    @pure
    def enabled(self) -> bool:
        """True when any guard is active (deadline, watchdog, retry)."""
        return (self.max_sample_seconds is not None
                or self.hang_seconds is not None
                or self.max_retries > 0)

    @pure
    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on meaningless knobs."""
        if (self.max_sample_seconds is not None
                and self.max_sample_seconds <= 0):
            raise ConfigurationError("max_sample_seconds must be > 0")
        if self.hang_seconds is not None and self.hang_seconds <= 0:
            raise ConfigurationError("hang_seconds must be > 0")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_base < 0:
            raise ConfigurationError("backoff_base must be >= 0")
        if self.backoff_factor < 1:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.backoff_max < self.backoff_base:
            raise ConfigurationError("backoff_max must be >= backoff_base")
        if not 0 <= self.jitter_fraction <= 1:
            raise ConfigurationError("jitter_fraction must be in [0, 1]")
        if self.shrink_after < 1:
            raise ConfigurationError("shrink_after must be >= 1")
        if self.poll_seconds <= 0:
            raise ConfigurationError("poll_seconds must be > 0")

    @pure
    def beat_seconds(self) -> float:
        """Worker heartbeat period: a quarter of the hang window."""
        if self.hang_seconds is None:
            return 0.0
        return max(0.005, self.hang_seconds / 4.0)

    @pure
    def describe(self) -> str:
        parts = []
        if self.max_sample_seconds is not None:
            parts.append(f"deadline {self.max_sample_seconds:g}s")
        if self.hang_seconds is not None:
            parts.append(f"hang watchdog {self.hang_seconds:g}s")
        if self.max_retries:
            parts.append(f"retries {self.max_retries}")
        return ", ".join(parts) if parts else "disabled"


@dataclasses.dataclass(frozen=True)
class TimeoutFailure:
    """One deadline/hang strike against a sample (possibly non-final)."""

    key: str
    kind: str  # "deadline" | "hang"
    elapsed_s: float
    limit_s: float
    attempt: int

    @pure
    def describe(self) -> str:
        return (f"{self.key}: {self.kind} after {self.elapsed_s:.3f}s "
                f"(limit {self.limit_s:g}s, attempt {self.attempt})")


# -- worker-side state (per-process globals, set via the pool initializer) ----

_CHANNEL: Optional[Any] = None  # heartbeat queue, inherited at fork/spawn
_KEY: Optional[str] = None  # key of the sample this worker is evaluating
_ATTEMPT: int = 0  # attempt number of the current evaluation
_STARTED: float = 0.0  # monotonic time the current sample started
_DEADLINE: Optional[float] = None  # cooperative per-sample ceiling
_BEAT_EVERY: float = 0.0  # min seconds between heartbeats (0 = off)
_LAST_BEAT: float = 0.0


@mutates_global_state
def _init_worker(channel: Any) -> None:
    """Pool initializer: adopt the parent's heartbeat queue.

    Also restores the default SIGTERM disposition — a forked worker
    must not inherit the parent's :func:`trap_termination` handler
    (executor teardown TERMs workers, and a trapped TERM would turn
    into a spurious in-worker :class:`KeyboardInterrupt`).
    """
    global _CHANNEL
    _CHANNEL = channel
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass


@mutates_global_state
def _arm(key: str, deadline: Optional[float], beat_every: float,
         attempt: int) -> None:
    """Install the per-sample watchdog state for this process."""
    global _KEY, _ATTEMPT, _STARTED, _DEADLINE, _BEAT_EVERY, _LAST_BEAT
    _KEY = key
    _ATTEMPT = attempt
    _STARTED = time.monotonic()
    _LAST_BEAT = _STARTED
    _DEADLINE = deadline
    _BEAT_EVERY = beat_every


@mutates_global_state
def _disarm() -> None:
    """Clear the per-sample watchdog state (sample finished)."""
    global _KEY, _DEADLINE, _BEAT_EVERY
    _KEY = None
    _DEADLINE = None
    _BEAT_EVERY = 0.0


@mutates_global_state
def _note_beat(now: float) -> None:
    """Record and ship one heartbeat (throttle bookkeeping is global)."""
    global _LAST_BEAT
    _LAST_BEAT = now
    if _CHANNEL is not None:
        try:
            _CHANNEL.put(("beat", _KEY, os.getpid(), _ATTEMPT))
        except Exception:  # noqa: D307 - channel torn down: parent is
            pass           # exiting, nobody is listening any more


@observational
def tick() -> None:
    """Supervision hook for long loops (transient steps, recovery rungs).

    Near-zero cost when no sample is armed.  When one is, this check
    (a) raises :class:`~repro.errors.DeadlineExceeded` once the sample
    overruns its cooperative deadline, and (b) ships a throttled
    heartbeat so the parent's hang watchdog knows the sample is alive.
    Annotated ``@observational``: under a fault-free run it observes
    the clock and never changes any computed value.
    """
    if _KEY is None:
        return
    now = time.monotonic()
    if _DEADLINE is not None and now - _STARTED > _DEADLINE:
        raise DeadlineExceeded("sample exceeded its deadline",
                               elapsed=now - _STARTED, limit=_DEADLINE)
    if _BEAT_EVERY and now - _LAST_BEAT >= _BEAT_EVERY:
        _note_beat(now)  # noqa: D303 - worker-local heartbeat bookkeeping,
        #                  consumed by the parent over the queue


@contextlib.contextmanager
def sample_deadline(key: str, seconds: Optional[float],
                    attempt: int = 1) -> Iterator[None]:
    """Cooperative per-sample deadline for in-process evaluation.

    Used by the serial supervised path (and the serial fallback): arms
    the same state :func:`tick` checks, without a heartbeat channel.
    """
    _arm(key, seconds, 0.0, attempt)
    try:
        yield
    finally:
        _disarm()


@pure
def _portable_error(exc: Exception) -> Exception:
    """``exc`` if it survives pickling, else a string-carrying stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
    except Exception:  # noqa: D307 - the stand-in *is* the record
        return RuntimeError(f"{type(exc).__name__}: {exc}")
    return exc


@mutates_global_state
def _supervised_call(key: str, fn: Callable[..., Any], args: Tuple[Any, ...],
                     deadline: Optional[float], beat_every: float,
                     instrument: bool, attempt: int):
    """Worker-side evaluation of one supervised sample.

    Announces the start over the heartbeat channel, arms the
    cooperative deadline, evaluates, and returns ``((key, status,
    payload), telemetry)`` — status ``"ok"`` carries the value,
    ``"timeout"`` a cooperative deadline raise, ``"fail"`` a
    stringified :class:`ReproError`, ``"raise"`` the original exception
    to re-raise in the parent.  Telemetry instances are fresh per call
    (the parent merges snapshots in submission order), mirroring
    :func:`repro.exec.parallel._run_chunk`.
    """
    if _CHANNEL is not None:
        try:
            _CHANNEL.put(("start", key, os.getpid(), attempt))
        except Exception:  # noqa: D307 - parent gone; the result return
            pass           # path still reports everything that matters
    telemetry = None
    if instrument:
        registry = obs.MetricsRegistry()
        event_log = obs.EventLog()
        recorder = obs.TimeSeriesRecorder()
        # Same sanctioned worker-side setup as the unsupervised chunk
        # runner: fresh instances, parent-side ordered merge.
        obs.enable(registry=registry, tracer=obs.Tracer(),  # noqa: D303
                   events=event_log, timeseries=recorder)
    _arm(key, deadline, beat_every, attempt)  # noqa: D303 - worker-local
    #                                           watchdog state for tick()
    try:
        try:
            value = fn(*args)
        except DeadlineExceeded as exc:
            result = (key, "timeout", str(exc))
        except ReproError as exc:
            result = (key, "fail", f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # noqa: D307 - not a swallow: shipped
            #                       to the parent as a portable error
            #                       and re-raised there verbatim
            result = (key, "raise", _portable_error(exc))
        else:
            result = (key, "ok", value)
    finally:
        _disarm()  # noqa: D303 - worker-local watchdog state for tick()
    if instrument:
        telemetry = {
            "metrics": registry.snapshot(),
            "events": event_log.to_dicts(),
            "timeseries": recorder.snapshot(),
        }
    return result, telemetry


@observational
def _merge_item_telemetry(telemetry) -> None:
    """Fold one sample's worker telemetry into the parent's instances."""
    if telemetry is None or not obs.is_enabled():
        return
    obs.metrics().merge_snapshot(telemetry.get("metrics", {}))
    obs.events().extend(telemetry.get("events", []))
    obs.timeseries().merge_snapshot(telemetry.get("timeseries", {}))


@deterministic_under_seed
def _backoff_delay(policy: SupervisionPolicy, index: int,
                   attempt: int) -> float:
    """Retry delay for one (sample, attempt): exponential + seeded jitter.

    The jitter generator is seeded from ``SeedSequence(policy.seed,
    spawn_key=(index, attempt))`` — a branch of the policy's entropy
    tree that is disjoint from every sample's model stream, so backoff
    randomness can never perturb what a retried sample computes.
    """
    base = min(policy.backoff_max,
               policy.backoff_base * policy.backoff_factor ** (attempt - 1))
    if policy.jitter_fraction <= 0 or base <= 0:
        return base
    seq = np.random.SeedSequence(entropy=policy.seed,
                                 spawn_key=(index, attempt))
    u = float(np.random.default_rng(seq).random())
    return base * (1.0 + policy.jitter_fraction * (2.0 * u - 1.0))


@contextlib.contextmanager
def trap_termination() -> Iterator[None]:
    """Route SIGTERM to :class:`KeyboardInterrupt` for graceful shutdown.

    Installed around sweep loops so an orchestrator's TERM gets the
    same cancel-futures / final-checkpoint / partial-outcome treatment
    as Ctrl-C.  A no-op off the main thread or where signals are
    unavailable; the previous handler is always restored.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    owner_pid = os.getpid()

    def _to_interrupt(signum, frame):
        if os.getpid() != owner_pid:
            # A forked worker inherited the trap: restore the default
            # disposition and let the TERM do what TERM does.
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            os.kill(os.getpid(), signal.SIGTERM)
            return
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _to_interrupt)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


# -- parent-side supervision ---------------------------------------------------


class _Supervised:
    """Parent-side lifecycle of one work item across its attempts."""

    __slots__ = ("index", "key", "fn", "args", "attempts", "eligible_at",
                 "future", "pid", "started_at", "last_beat", "submit_attempt",
                 "status", "value", "detail", "telemetry", "faults")

    def __init__(self, index: int, key: str, fn: Callable[..., Any],
                 args: Tuple[Any, ...]) -> None:
        self.index = index
        self.key = key
        self.fn = fn
        self.args = args
        self.attempts = 0  # charged strikes (crash/hang/deadline/fail)
        self.eligible_at = 0.0  # monotonic gate for (re)submission
        self.future = None
        self.pid: Optional[int] = None
        self.started_at: Optional[float] = None  # parent receipt of "start"
        self.last_beat: Optional[float] = None
        self.submit_attempt = 0  # attempt number riding the live future
        self.status: Optional[str] = None  # final: "ok"|"fail"|"quarantined"
        self.value: Any = None
        self.detail = ""
        self.telemetry: Optional[dict] = None
        self.faults: List[str] = []  # one kind per charged strike

    def clear_flight(self) -> None:
        self.future = None
        self.pid = None
        self.started_at = None
        self.last_beat = None


def run_supervised_sweep(items: Sequence[Tuple[str, Callable[..., Any],
                                               Tuple[Any, ...]]],
                         policy: SupervisionPolicy,
                         jobs: int = 1,
                         checkpoint: Optional[Checkpoint] = None,
                         budget: Optional[RunBudget] = None,
                         save_every: int = 1,
                         encode: Optional[Callable[[Any], Any]] = None,
                         decode: Optional[Callable[[Any], Any]] = None,
                         progress: Optional[Any] = None) -> SweepOutcome:
    """Evaluate keyed work items under a :class:`SupervisionPolicy`.

    Same contract as :func:`repro.exec.parallel.run_parallel_sweep`
    (unique keys, parent-only checkpoints, submission-order merge,
    budget enforcement) plus the supervision semantics documented in
    the module docstring.  With ``jobs=1`` the samples run in-process:
    the cooperative deadline and the retry/backoff/quarantine ladder
    apply, the kill-based watchdog does not (there is no worker to
    kill).
    """
    keys = [key for key, _fn, _args in items]
    if len(set(keys)) != len(keys):
        raise ConfigurationError("sweep item keys must be unique")
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    if save_every < 1:
        raise ConfigurationError("save_every must be >= 1")
    policy.validate()
    encode = encode or (lambda value: value)
    decode = decode or (lambda value: value)

    done: Dict[str, Any] = {}
    if checkpoint is not None:
        done = checkpoint.load() or {}
    if progress is not None and done:
        progress.note_restored(len(done))

    states = [_Supervised(index, key, fn, args)
              for index, (key, fn, args) in enumerate(items)
              if key not in done]
    by_key = {state.key: state for state in states}

    clock = BudgetClock(budget)
    timeouts: List[TimeoutFailure] = []
    exhausted: Optional[str] = None
    interrupted = False
    serial_rest = jobs == 1
    current_jobs = jobs
    pool_losses = 0
    cursor = 0
    dirty = 0
    isolate: List[Tuple[_Supervised, int]] = []  # (suspect, attempts then)
    instrument = obs.is_enabled()
    beat_every = policy.beat_seconds()

    def _drain() -> None:
        """Merge the finalized prefix in submission order (telemetry,
        ``done`` mapping, checkpoint granularity — the determinism
        contract's ordered merge)."""
        nonlocal cursor, dirty
        while cursor < len(states) and states[cursor].status is not None:
            state = states[cursor]
            _merge_item_telemetry(state.telemetry)
            state.telemetry = None
            if state.status == "ok":
                done[state.key] = encode(state.value)
                state.value = None
                dirty += 1
                if checkpoint is not None and dirty >= save_every:
                    checkpoint.save(done)
                    dirty = 0
            cursor += 1

    def _charge(state: _Supervised, kind: str, detail: str,
                elapsed: Optional[float] = None,
                limit: Optional[float] = None) -> None:
        """One strike against a sample: retry with backoff or retire it."""
        state.attempts += 1
        state.faults.append(kind)
        if kind in ("deadline", "hang"):
            strike = TimeoutFailure(
                key=state.key, kind=kind,
                elapsed_s=float(elapsed if elapsed is not None else 0.0),
                limit_s=float(limit if limit is not None else 0.0),
                attempt=state.attempts)
            timeouts.append(strike)
            _log.warning("sample %r %s (attempt %d): %s",
                         state.key, kind, state.attempts, detail)
            obs.metrics().counter("sweep.supervise.timeouts").inc()
            obs.event("exec.supervise.timeout", key=state.key, fault=kind,
                      elapsed_s=strike.elapsed_s, limit_s=strike.limit_s,
                      attempt=state.attempts)
        elif kind == "crash":
            _log.warning("worker crashed evaluating sample %r (attempt %d)",
                         state.key, state.attempts)
            obs.metrics().counter("sweep.worker_crashes").inc()
            obs.event("exec.supervise.crash", key=state.key,
                      attempt=state.attempts)
        retryable = policy.retry_failures if kind == "fail" else True
        if retryable and state.attempts <= policy.max_retries:
            delay = _backoff_delay(policy, state.index, state.attempts)
            state.eligible_at = time.monotonic() + delay
            obs.event("exec.supervise.retry", key=state.key,
                      attempt=state.attempts, delay_s=round(delay, 6))
            return
        process_fault = any(f in ("crash", "hang", "deadline")
                            for f in state.faults)
        state.status = "quarantined" if process_fault else "fail"
        state.detail = detail
        clock.fail()
        if state.status == "quarantined":
            _log.warning("sample %r quarantined after %d attempt(s): %s",
                         state.key, state.attempts, detail)
            obs.metrics().counter("sweep.supervise.quarantined").inc()
            obs.event("exec.supervise.quarantine", key=state.key,
                      attempts=state.attempts)
        else:
            _log.warning("sweep item %r failed: %s", state.key, detail)
            obs.metrics().counter("sweep.failures").inc()
        if progress is not None:
            progress.advance(failed=1)

    def _record_result(state: _Supervised, triple, telemetry) -> None:
        _key, status, payload = triple
        if status == "ok":
            state.status = "ok"
            state.value = payload
            state.telemetry = telemetry
            if progress is not None:
                progress.advance(completed=1)
            return
        if status == "raise":  # a programming error: save, then surface
            _drain()
            if checkpoint is not None and dirty:
                checkpoint.save(done)
            raise payload
        kind = "deadline" if status == "timeout" else "fail"
        _charge(state, kind, payload, limit=policy.max_sample_seconds)
        if state.status is not None:  # final: keep the last attempt's data
            state.telemetry = telemetry

    def _serial_pass() -> None:
        """In-process evaluation: cooperative deadline + retry ladder."""
        nonlocal exhausted
        for state in states:
            while state.status is None:
                exhausted = clock.exhausted()
                if exhausted is not None:
                    _log.info("supervised sweep stopped on %s after "
                              "%d item(s)", exhausted, len(done))
                    return
                delay = state.eligible_at - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                attempt = state.attempts + 1
                try:
                    with sample_deadline(state.key,
                                         policy.max_sample_seconds, attempt):
                        value = state.fn(*state.args)
                except DeadlineExceeded as exc:
                    _charge(state, "deadline", str(exc),
                            elapsed=exc.elapsed, limit=exc.limit)
                except ReproError as exc:
                    _charge(state, "fail", f"{type(exc).__name__}: {exc}")
                else:
                    state.status = "ok"
                    state.value = value
                    if progress is not None:
                        progress.advance(completed=1)
            _drain()

    if serial_rest:
        with obs.span("sweep.supervised", items=len(items), jobs=jobs):
            try:
                with trap_termination():
                    _serial_pass()
            except KeyboardInterrupt:
                interrupted = True
                pending = sum(1 for s in states if s.status is None)
                _log.warning("supervised sweep interrupted: %d item(s) "
                             "done, %d pending", len(done), pending)
                obs.event("sweep.interrupted", completed=len(done),
                          pending=pending)
        _drain()
        if checkpoint is not None and dirty:
            checkpoint.save(done)
        return _outcome(keys, states, done, decode, exhausted, interrupted,
                        timeouts)

    # -- parallel supervised loop ---------------------------------------------

    from repro.exec.parallel import _pool_context

    context = _pool_context()
    channel = context.Queue()

    def _new_executor() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=current_jobs,
                                   mp_context=context,
                                   initializer=_init_worker,
                                   initargs=(channel,))

    executor = _new_executor()

    def _submit_one(state: _Supervised) -> None:
        state.clear_flight()
        state.submit_attempt = state.attempts + 1
        state.future = executor.submit(
            _supervised_call, state.key, state.fn, state.args,
            policy.max_sample_seconds, beat_every, instrument,
            state.submit_attempt)

    def _harvest() -> bool:
        """Consume finished futures; True when the pool broke."""
        broke = False
        for state in states:
            future = state.future
            if state.status is not None or future is None:
                continue
            if not future.done():
                continue
            try:
                triple, telemetry = future.result()
            except (BrokenProcessPool, CancelledError, OSError):
                broke = True  # in-flight marker kept for blame analysis
                continue
            state.clear_flight()
            _record_result(state, triple, telemetry)
        return broke

    def _pump_channel() -> None:
        while True:
            try:
                message = channel.get_nowait()
            except queue_module.Empty:
                return
            except (OSError, EOFError):  # pragma: no cover - torn queue
                return
            kind, key, pid, attempt = message
            state = by_key.get(key)
            if (state is None or state.status is not None
                    or state.future is None
                    or attempt != state.submit_attempt):
                continue  # ghost beat from a superseded attempt
            now = time.monotonic()
            if kind == "start":
                state.started_at = now
                state.pid = pid
            state.last_beat = now

    def _watchdog_scan() -> bool:
        """Charge and kill overdue/hung samples; True if any were."""
        struck = False
        now = time.monotonic()
        limit = policy.max_sample_seconds
        for state in states:
            if (state.status is not None or state.future is None
                    or state.started_at is None):
                continue
            elapsed = now - state.started_at
            silence = now - (state.last_beat or state.started_at)
            kind: Optional[str] = None
            window = 0.0
            if limit is not None and elapsed > limit + _KILL_GRACE:
                kind, window = "deadline", limit
            elif (policy.hang_seconds is not None
                    and silence > policy.hang_seconds):
                kind, window = "hang", policy.hang_seconds
            if kind is None:
                continue
            pid = state.pid
            state.clear_flight()
            what = ("worker overran its deadline" if kind == "deadline"
                    else "worker went silent")
            _charge(state, kind, what, elapsed=elapsed, limit=window)
            if pid:
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:  # pragma: no cover - already gone
                    pass
            struck = True
        return struck

    def _settle_inflight() -> None:
        """Give in-flight futures a moment to surface real results."""
        futures = [s.future for s in states
                   if s.status is None and s.future is not None]
        if futures:
            wait(futures, timeout=_SETTLE_SECONDS)
            _harvest()

    def _classify_suspects(deliberate: bool) -> None:
        """Assign blame for a pool break and reset flight markers."""
        suspects = [s for s in states
                    if s.status is None and s.future is not None
                    and s.started_at is not None]
        for state in states:
            if state.status is None and state.future is not None:
                state.clear_flight()
        if deliberate:
            return  # the watchdog already charged the culprits
        if len(suspects) == 1:
            _charge(suspects[0], "crash", "worker process died")
        elif len(suspects) > 1:
            held = {id(s) for s, _n in isolate}
            fresh = [s for s in suspects if id(s) not in held]
            isolate.extend((s, s.attempts) for s in fresh)
            obs.event("exec.supervise.isolate", suspects=len(suspects))

    def _rebuild_pool() -> None:
        nonlocal executor, pool_losses, current_jobs, serial_rest
        executor.shutdown(wait=False, cancel_futures=True)
        pool_losses += 1
        if pool_losses % policy.shrink_after == 0:
            if current_jobs > 1:
                current_jobs = max(1, current_jobs // 2)
                _log.warning("repeated worker loss: shrinking pool to "
                             "%d job(s)", current_jobs)
                obs.event("exec.supervise.pool_shrink", jobs=current_jobs)
            elif policy.serial_fallback:
                remaining = sum(1 for s in states if s.status is None)
                _log.warning("single-worker pool lost again: falling back "
                             "to serial evaluation of %d item(s)", remaining)
                obs.event("exec.supervise.serial_fallback",
                          remaining=remaining)
                serial_rest = True
                return
        executor = _new_executor()

    def _maintain_isolation() -> None:
        while isolate:
            suspect, attempts_then = isolate[0]
            if suspect.status is None and suspect.attempts == attempts_then:
                return  # still ambiguous: keep it at the head
            isolate.pop(0)  # finalized, or charged solo (blame resolved)

    def _submit_eligible() -> None:
        now = time.monotonic()
        try:
            if isolate:  # one suspect at a time: the next break has a name
                suspect = isolate[0][0]
                if suspect.future is None and suspect.eligible_at <= now:
                    _submit_one(suspect)
                return
            for state in states:
                if (state.status is None and state.future is None
                        and state.eligible_at <= now):
                    _submit_one(state)
        except BrokenProcessPool:
            return  # pool died under us: next harvest assigns blame

    try:
        with obs.span("sweep.supervised", items=len(items), jobs=jobs):
            try:
                with trap_termination():
                    while True:
                        exhausted = clock.exhausted()
                        if exhausted is not None:
                            _log.info("supervised sweep stopped on %s "
                                      "after %d item(s)", exhausted,
                                      len(done))
                            break
                        if all(s.status is not None for s in states):
                            break
                        broke = _harvest()
                        _drain()
                        _maintain_isolation()
                        _pump_channel()
                        struck = _watchdog_scan()
                        if broke or struck:
                            _settle_inflight()
                            _classify_suspects(deliberate=struck)
                            _rebuild_pool()
                            if serial_rest:
                                break
                            _maintain_isolation()
                            continue
                        _submit_eligible()
                        time.sleep(policy.poll_seconds)
            except KeyboardInterrupt:
                interrupted = True
                pending = sum(1 for s in states if s.status is None)
                _log.warning("supervised sweep interrupted: %d item(s) "
                             "done, %d pending", len(done), pending)
                obs.event("sweep.interrupted", completed=len(done),
                          pending=pending)
        if serial_rest and not interrupted and exhausted is None:
            try:
                with trap_termination():
                    _serial_pass()
            except KeyboardInterrupt:
                interrupted = True
                pending = sum(1 for s in states if s.status is None)
                obs.event("sweep.interrupted", completed=len(done),
                          pending=pending)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
        try:
            channel.close()
        except OSError:  # pragma: no cover - already torn down
            pass
    _drain()
    if checkpoint is not None and dirty:
        checkpoint.save(done)
    return _outcome(keys, states, done, decode, exhausted, interrupted,
                    timeouts)


def _outcome(keys: Sequence[str], states: Sequence[_Supervised],
             done: Dict[str, Any], decode: Callable[[Any], Any],
             exhausted: Optional[str], interrupted: bool,
             timeouts: Sequence[TimeoutFailure]) -> SweepOutcome:
    """Fold supervised per-item states into a :class:`SweepOutcome`."""
    failures = tuple(s.key for s in states if s.status == "fail")
    quarantined = tuple(s.key for s in states if s.status == "quarantined")
    results = {key: decode(done[key]) for key in keys if key in done}
    return SweepOutcome(
        results=results,
        completed=len(results),
        attempted=len(results) + len(failures) + len(quarantined),
        failures=failures,
        exhausted=exhausted,
        quarantined=quarantined,
        interrupted=interrupted,
        timeouts=tuple(timeouts),
    )
