"""Fault injection and resilience: seeded chaos testing for the models.

The subsystem splits cleanly in three:

* :mod:`repro.faults.plan` — what is broken (seeded, replayable
  :class:`FaultPlan` populations);
* :mod:`repro.faults.repair` — what the hardware absorbs (ECC +
  spare-row repair, yielding a degraded-but-functional
  :class:`DegradedMacroReport`);
* :mod:`repro.faults.injector` — how the survivors perturb the
  behavioural engines (refresh interference, cache hierarchy);
* :mod:`repro.faults.chaos` — process-level chaos (worker kill/hang/
  slow, torn checkpoints, disk-full sinks) proving the supervised
  executor loses nothing and drifts nowhere.
"""

from repro.faults.chaos import (
    CHAOS_SCENARIOS,
    ChaosPlan,
    ChaosReport,
    corrupt_checkpoint,
    fill_event_sink,
    generate_chaos_plan,
    run_chaos_matrix,
    run_chaos_scenario,
)
from repro.faults.injector import CacheFaultModel, FaultyRefreshPolicy
from repro.faults.plan import (
    FaultPlan,
    RefreshFault,
    SenseAmpOutlier,
    StuckBit,
    WeakCell,
    generate_fault_plan,
)
from repro.faults.repair import (
    DegradedMacroReport,
    RepairModel,
    assess_plan,
    plan_for_organization,
)

__all__ = [
    "CHAOS_SCENARIOS",
    "CacheFaultModel",
    "ChaosPlan",
    "ChaosReport",
    "DegradedMacroReport",
    "FaultPlan",
    "FaultyRefreshPolicy",
    "RefreshFault",
    "RepairModel",
    "SenseAmpOutlier",
    "StuckBit",
    "WeakCell",
    "assess_plan",
    "corrupt_checkpoint",
    "fill_event_sink",
    "generate_chaos_plan",
    "generate_fault_plan",
    "plan_for_organization",
    "run_chaos_matrix",
    "run_chaos_scenario",
]
