"""Fault injection and resilience: seeded chaos testing for the models.

The subsystem splits cleanly in three:

* :mod:`repro.faults.plan` — what is broken (seeded, replayable
  :class:`FaultPlan` populations);
* :mod:`repro.faults.repair` — what the hardware absorbs (ECC +
  spare-row repair, yielding a degraded-but-functional
  :class:`DegradedMacroReport`);
* :mod:`repro.faults.injector` — how the survivors perturb the
  behavioural engines (refresh interference, cache hierarchy).
"""

from repro.faults.injector import CacheFaultModel, FaultyRefreshPolicy
from repro.faults.plan import (
    FaultPlan,
    RefreshFault,
    SenseAmpOutlier,
    StuckBit,
    WeakCell,
    generate_fault_plan,
)
from repro.faults.repair import (
    DegradedMacroReport,
    RepairModel,
    assess_plan,
    plan_for_organization,
)

__all__ = [
    "CacheFaultModel",
    "DegradedMacroReport",
    "FaultPlan",
    "FaultyRefreshPolicy",
    "RefreshFault",
    "RepairModel",
    "SenseAmpOutlier",
    "StuckBit",
    "WeakCell",
    "assess_plan",
    "generate_fault_plan",
    "plan_for_organization",
]
