"""Process-level chaos harness: prove the supervised executor's
guarantees under injected operational faults.

PR 3's fault layer breaks the *models* (weak cells, dropped refreshes);
this module breaks the *machinery running them*: workers are killed
mid-sample, hung forever, slowed down, made to raise once; checkpoint
files are torn mid-write or corrupted; the JSONL event sink runs out
of disk.  Every injection is drawn from a seeded :class:`ChaosPlan`,
so a chaos run is exactly as replayable as the sweep it attacks.

The harness then checks the promises the supervision layer makes
(:mod:`repro.exec.supervise`):

* **zero silently-lost samples** — every key ends up in ``results``,
  ``failures`` or ``quarantined``;
* **bit-identical survivors** — every completed sample equals the
  fault-free serial run (the retry path recomputes from the sample's
  own seed stream, so a second attempt cannot drift);
* **enumerated quarantine** — samples the supervisor gave up on are
  named, not dropped.

Injection mechanics: faults that must fire *exactly once* per sample
(kill, hang, flaky) claim a marker file in the plan's scratch
directory before striking.  The marker survives the worker's death, so
the retried attempt sees it and runs clean — which is precisely what
makes "fails once, succeeds on retry, bit-identical" testable.
"""

from __future__ import annotations

import dataclasses
import errno
import os
import pathlib
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.analysis.effects import deterministic_under_seed
from repro.checkpoint import Checkpoint
from repro.errors import ConfigurationError, SimulationError
from repro.exec import SupervisionPolicy, run_parallel_sweep

#: Scenario names accepted by :func:`run_chaos_scenario` (and the
#: ``repro chaos --scenario`` flag; ``matrix`` runs them all).
CHAOS_SCENARIOS = ("kill", "hang", "slow", "flaky", "torn-checkpoint",
                   "disk-full")

_CHECKPOINT_CORRUPTIONS = ("torn", "garbage", "checksum")


@dataclasses.dataclass(frozen=True)
class ChaosPlan:
    """What the harness breaks, drawn once from a seed.

    The four key sets are disjoint; ``scratch_dir`` holds the
    once-only strike markers (it must outlive the worker processes).
    """

    seed: int
    scratch_dir: str
    kill_keys: Tuple[str, ...] = ()
    hang_keys: Tuple[str, ...] = ()
    slow_keys: Tuple[str, ...] = ()
    flaky_keys: Tuple[str, ...] = ()
    hang_sleep_seconds: float = 30.0
    slow_seconds: float = 0.2

    def describe(self) -> str:
        parts = []
        for label, keys in (("kill", self.kill_keys),
                            ("hang", self.hang_keys),
                            ("slow", self.slow_keys),
                            ("flaky", self.flaky_keys)):
            if keys:
                parts.append(f"{label}: {', '.join(keys)}")
        return (f"chaos plan (seed {self.seed}): "
                + ("; ".join(parts) if parts else "no injections"))


@deterministic_under_seed
def generate_chaos_plan(keys: Sequence[str],
                        seed: int,
                        scratch_dir: "str | pathlib.Path",
                        kills: int = 0,
                        hangs: int = 0,
                        slows: int = 0,
                        flakies: int = 0,
                        hang_sleep_seconds: float = 30.0,
                        slow_seconds: float = 0.2) -> ChaosPlan:
    """Draw disjoint victim sets from the key population, seeded."""
    need = kills + hangs + slows + flakies
    if need > len(keys):
        raise ConfigurationError(
            f"chaos plan needs {need} victims but only {len(keys)} keys")
    order = np.random.default_rng(seed).permutation(len(keys))
    picked = [keys[int(i)] for i in order[:need]]
    cuts = np.cumsum([kills, hangs, slows, flakies])
    return ChaosPlan(
        seed=seed,
        scratch_dir=str(scratch_dir),
        kill_keys=tuple(picked[:cuts[0]]),
        hang_keys=tuple(picked[cuts[0]:cuts[1]]),
        slow_keys=tuple(picked[cuts[1]:cuts[2]]),
        flaky_keys=tuple(picked[cuts[2]:cuts[3]]),
        hang_sleep_seconds=hang_sleep_seconds,
        slow_seconds=slow_seconds,
    )


class _ChaosCall:
    """Picklable wrapper that injects the plan's fault for one key,
    then delegates to the real evaluator.

    Kill/hang/flaky strike **once** (marker-file claim); slow applies
    to every attempt — slowness is a property of the sample, not an
    event.
    """

    __slots__ = ("plan", "key", "fn")

    def __init__(self, plan: ChaosPlan, key: str,
                 fn: Callable[..., Any]) -> None:
        self.plan = plan
        self.key = key
        self.fn = fn

    def _strike(self, kind: str) -> bool:
        """Claim the once-only marker; True exactly once per (key, kind)."""
        marker = (pathlib.Path(self.plan.scratch_dir)
                  / f"{self.key}.{kind}.struck")
        try:
            marker.touch(exist_ok=False)
        except (FileExistsError, OSError):
            return False
        return True

    def __call__(self, *args: Any) -> Any:
        plan = self.plan
        if self.key in plan.kill_keys and self._strike("kill"):
            os._exit(113)  # simulate a segfault: no cleanup, no excuse
        if self.key in plan.hang_keys and self._strike("hang"):
            time.sleep(plan.hang_sleep_seconds)
        if self.key in plan.flaky_keys and self._strike("flaky"):
            raise SimulationError(
                f"chaos: injected transient failure for {self.key}")
        if self.key in plan.slow_keys:
            time.sleep(plan.slow_seconds)
        return self.fn(*args)


@deterministic_under_seed
def _chaos_eval(child: np.random.SeedSequence) -> float:
    """The workload under attack: one draw from the sample's own
    stream, so any recomputation is bit-identical by construction.
    Emits one event per sample (a no-op unless instrumented) so the
    disk-full scenario has telemetry flowing through the sink."""
    value = float(np.random.default_rng(child).normal(10.0, 2.0))
    obs.event("chaos.sample.evaluated", value=round(value, 9))
    return value


# -- checkpoint & sink corruption ------------------------------------------


def corrupt_checkpoint(path: "str | pathlib.Path",
                       mode: str = "torn") -> None:
    """Damage a checkpoint file the way real failures do.

    ``torn``
        Truncate to half its bytes — a write cut off by power loss
        (invalid JSON).
    ``garbage``
        Replace the content with non-JSON bytes — gross corruption.
    ``checksum``
        Keep valid JSON but flip the recorded content checksum — the
        payload silently decayed after an intact write.
    """
    target = pathlib.Path(path)
    if mode not in _CHECKPOINT_CORRUPTIONS:
        raise ConfigurationError(
            f"unknown corruption mode {mode!r}; "
            f"choose from {_CHECKPOINT_CORRUPTIONS}")
    data = target.read_bytes()
    if mode == "torn":
        target.write_bytes(data[:max(1, len(data) // 2)])
    elif mode == "garbage":
        target.write_bytes(b"\x00corrupt\xff" + data[:8])
    else:
        text = data.decode()
        target.write_text(text.replace('"checksum": "',
                                       '"checksum": "0000'))


class _DiskFullSink:
    """File-like that fails every write with ENOSPC (disk full)."""

    def write(self, text: str) -> int:
        raise OSError(errno.ENOSPC, "No space left on device (injected)")

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


def fill_event_sink(log: "obs.EventLog") -> None:
    """Swap the log's JSONL sink for one whose disk is full.

    The next emitted event must degrade the log to in-memory-only
    (counted in ``sink_errors``) instead of killing the run.
    """
    sink, log._sink = log._sink, _DiskFullSink()
    if sink is not None:
        sink.close()


# -- scenario runner --------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ChaosReport:
    """Outcome of one chaos scenario against the supervised executor."""

    scenario: str
    requested: int
    completed: int
    failures: Tuple[str, ...]
    quarantined: Tuple[str, ...]
    lost: Tuple[str, ...]        # keys missing from every accounting bin
    mismatched: Tuple[str, ...]  # survivors differing from fault-free run
    notes: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """The gate CI holds: nothing lost, nothing drifted."""
        return not self.lost and not self.mismatched

    def describe(self) -> str:
        verdict = "ok" if self.ok else "FAILED"
        parts = [f"chaos[{self.scenario}] {verdict}: "
                 f"{self.completed}/{self.requested} completed"]
        if self.failures:
            parts.append(f"failed: {', '.join(self.failures)}")
        if self.quarantined:
            parts.append(f"quarantined: {', '.join(self.quarantined)}")
        if self.lost:
            parts.append(f"LOST: {', '.join(self.lost)}")
        if self.mismatched:
            parts.append(f"MISMATCH: {', '.join(self.mismatched)}")
        parts.extend(self.notes)
        return "; ".join(parts)


def _chaos_items(count: int, seed: int,
                 plan: Optional[ChaosPlan] = None) -> List[Tuple]:
    children = np.random.SeedSequence(seed).spawn(count)
    items: List[Tuple] = []
    for index, child in enumerate(children):
        key = f"s{index:02d}"
        fn: Callable[..., Any] = _chaos_eval
        if plan is not None:
            fn = _ChaosCall(plan, key, _chaos_eval)
        items.append((key, fn, (child,)))
    return items


def _reference_results(count: int, seed: int) -> Dict[str, float]:
    """The fault-free ``--jobs 1`` truth every survivor must equal."""
    return dict(run_parallel_sweep(_chaos_items(count, seed),
                                   jobs=1).results)


def _report(scenario: str, count: int, outcome,
            reference: Dict[str, float],
            notes: Sequence[str] = ()) -> ChaosReport:
    accounted = (set(outcome.results) | set(outcome.failures)
                 | set(outcome.quarantined))
    lost = tuple(sorted(set(reference) - accounted))
    mismatched = tuple(sorted(
        key for key, value in outcome.results.items()
        if reference.get(key) != value))
    return ChaosReport(
        scenario=scenario,
        requested=count,
        completed=outcome.completed,
        failures=tuple(outcome.failures),
        quarantined=tuple(outcome.quarantined),
        lost=lost,
        mismatched=mismatched,
        notes=tuple(notes),
    )


def run_chaos_scenario(scenario: str,
                       count: int = 12,
                       seed: int = 2009,
                       jobs: int = 2,
                       workdir: "str | pathlib.Path | None" = None
                       ) -> ChaosReport:
    """Run one seeded process-level chaos scenario end to end.

    Builds the fault-free serial reference, injects the scenario's
    faults into a supervised ``jobs``-wide sweep of the same items, and
    reports lost/mismatched/quarantined keys.  ``workdir`` (a temp
    directory by default) holds strike markers, checkpoint files and
    the event sink.
    """
    if scenario not in CHAOS_SCENARIOS:
        raise ConfigurationError(
            f"unknown chaos scenario {scenario!r}; "
            f"choose from {CHAOS_SCENARIOS}")
    if count < 2:
        raise ConfigurationError("count must be >= 2")
    base = pathlib.Path(workdir) if workdir is not None else pathlib.Path(
        tempfile.mkdtemp(prefix="repro-chaos-"))
    scratch = base / scenario
    scratch.mkdir(parents=True, exist_ok=True)

    reference = _reference_results(count, seed)
    policy = SupervisionPolicy(max_sample_seconds=60.0,
                               hang_seconds=0.75,
                               max_retries=2, seed=seed)

    if scenario == "torn-checkpoint":
        return _run_torn_checkpoint(scenario, count, seed, jobs, scratch,
                                    reference, policy)
    if scenario == "disk-full":
        return _run_disk_full(scenario, count, seed, jobs, scratch,
                              reference, policy)

    kwargs = {"kill": {"kills": 2}, "hang": {"hangs": 1},
              "slow": {"slows": 3}, "flaky": {"flakies": 2}}[scenario]
    plan = generate_chaos_plan([f"s{i:02d}" for i in range(count)],
                               seed=seed, scratch_dir=scratch,
                               hang_sleep_seconds=30.0,
                               slow_seconds=0.2, **kwargs)
    outcome = run_parallel_sweep(_chaos_items(count, seed, plan),
                                 jobs=jobs, policy=policy)
    return _report(scenario, count, outcome, reference,
                   notes=(plan.describe(),))


def _run_torn_checkpoint(scenario: str, count: int, seed: int, jobs: int,
                         scratch: pathlib.Path,
                         reference: Dict[str, float],
                         policy: SupervisionPolicy) -> ChaosReport:
    """Half a sweep, a torn checkpoint write, then a full resume: the
    corrupt file must be quarantined and the rerun must match."""
    checkpoint = Checkpoint(scratch / "sweep.ckpt.json",
                            fingerprint=f"chaos-{seed}")
    run_parallel_sweep(_chaos_items(count, seed)[:count // 2], jobs=1,
                       checkpoint=checkpoint)
    corrupt_checkpoint(checkpoint.path, mode="torn")
    outcome = run_parallel_sweep(_chaos_items(count, seed), jobs=jobs,
                                 checkpoint=checkpoint, policy=policy)
    sidecar = checkpoint.path.with_name(checkpoint.path.name + ".corrupt")
    notes = [f"corrupt checkpoint quarantined to {sidecar.name}"
             if sidecar.exists() else
             "NO .corrupt sidecar — quarantine did not happen"]
    report = _report(scenario, count, outcome, reference, notes=notes)
    if not sidecar.exists():
        report = dataclasses.replace(
            report, mismatched=report.mismatched + ("<sidecar-missing>",))
    return report


def _run_disk_full(scenario: str, count: int, seed: int, jobs: int,
                   scratch: pathlib.Path,
                   reference: Dict[str, float],
                   policy: SupervisionPolicy) -> ChaosReport:
    """A sweep whose JSONL event sink hits ENOSPC mid-run: telemetry
    degrades to in-memory, the sweep itself must not notice."""
    log = obs.EventLog(jsonl_path=scratch / "events.jsonl")
    fill_event_sink(log)
    try:
        with obs.instrumented(events=log):
            outcome = run_parallel_sweep(_chaos_items(count, seed),
                                         jobs=jobs, policy=policy)
    finally:
        log.close()
    notes = [f"sink degraded after {log.sink_errors} ENOSPC write(s), "
             f"{len(log)} event(s) retained in memory"]
    report = _report(scenario, count, outcome, reference, notes=notes)
    if log.sink_errors < 1:
        report = dataclasses.replace(
            report, mismatched=report.mismatched + ("<sink-not-degraded>",))
    return report


def run_chaos_matrix(count: int = 12, seed: int = 2009, jobs: int = 2,
                     workdir: "str | pathlib.Path | None" = None
                     ) -> List[ChaosReport]:
    """Every scenario in sequence — the CI chaos-matrix gate."""
    return [run_chaos_scenario(scenario, count=count, seed=seed,
                               jobs=jobs, workdir=workdir)
            for scenario in CHAOS_SCENARIOS]
