"""Fault injection adapters: replay a :class:`FaultPlan` against the
behavioural engines.

:class:`FaultyRefreshPolicy` wraps any refresh schedule and corrupts the
operations the plan marks: a *dropped* refresh (dead wordline driver)
becomes a zero-duration no-op — the schedule slot passes but the row is
never restored, a data-loss event every period — and a *late* refresh
(slow charge pump) starts ``delay_cycles`` after its slot, widening the
window it collides with accesses.  The interference simulator detects
the wrapper by its ``fault_kind`` method and reports
dropped/late/data-loss counts in its stats.

:class:`CacheFaultModel` carries one macro's post-repair degraded-mode
report into the cache hierarchy: capacity lost to mapped-out rows
shrinks the bits a cache may claim, and accesses landing on ECC-reliant
rows are counted as corrected errors.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.faults.repair import DegradedMacroReport
from repro.refresh.controller import RefreshOperation, RefreshPolicy


@dataclasses.dataclass(frozen=True)
class FaultyRefreshPolicy:
    """A refresh schedule with the plan's refresh faults injected.

    Duck-types as a :class:`~repro.refresh.controller.RefreshPolicy`:
    the simulator only needs the schedule accessors, which delegate to
    ``base`` except where a fault rewrites the operation.
    """

    base: RefreshPolicy
    plan: FaultPlan

    def __post_init__(self) -> None:
        if self.plan.total_rows != self.base.total_rows:
            raise ConfigurationError(
                f"fault plan covers {self.plan.total_rows} rows but the "
                f"refresh policy schedules {self.base.total_rows}")

    # -- delegated schedule geometry ---------------------------------------

    @property
    def n_blocks(self) -> int:
        return self.base.n_blocks

    @property
    def rows_per_block(self) -> int:
        return self.base.rows_per_block

    @property
    def refresh_period_cycles(self) -> int:
        return self.base.refresh_period_cycles

    @property
    def refresh_duration_cycles(self) -> int:
        return self.base.refresh_duration_cycles

    @property
    def total_rows(self) -> int:
        return self.base.total_rows

    @property
    def interval_cycles(self) -> float:
        return self.base.interval_cycles

    def utilisation(self) -> float:
        return self.base.utilisation()

    # -- fault injection ------------------------------------------------------

    def fault_kind(self, index: int) -> "str | None":
        """The fault affecting the ``index``-th scheduled refresh."""
        row = index % self.total_rows
        if row in self.plan.dropped_rows():
            return "drop"
        if row in self.plan.late_rows():
            return "late"
        return None

    def refresh_starting_at(self, index: int) -> RefreshOperation:
        op = self.base.refresh_starting_at(index)
        kind = self.fault_kind(index)
        if kind == "drop":
            # The slot passes but nothing happens: zero duration blocks
            # no access — and the row is never restored.
            return dataclasses.replace(op, duration=0)
        if kind == "late":
            delay = self.plan.late_rows()[index % self.total_rows]
            return dataclasses.replace(op,
                                       start_cycle=op.start_cycle + delay)
        return op


@dataclasses.dataclass(frozen=True)
class CacheFaultModel:
    """Degraded-mode view of one cache level's macro.

    Pure accounting over the macro's post-repair
    :class:`~repro.faults.repair.DegradedMacroReport`; the hierarchy
    uses it to shrink usable capacity and to count expected
    ECC-corrected errors as the trace walks.
    """

    report: DegradedMacroReport

    @property
    def capacity_loss_fraction(self) -> float:
        return self.report.capacity_loss_fraction

    def usable_bits(self, total_bits: int) -> int:
        """Bits left after mapped-out rows are removed."""
        return int(total_bits * (1.0 - self.capacity_loss_fraction))

    def correction_probability(self) -> float:
        """Probability one access lands on an ECC-reliant row."""
        return self.report.correctable_rows / self.report.total_rows

    def expected_corrected_errors(self, accesses: int) -> float:
        """Expected corrected-error events over ``accesses`` accesses."""
        return accesses * self.correction_probability()
