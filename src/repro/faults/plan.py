"""Seeded fault plans: the chaos-testing input of the resilience layer.

A :class:`FaultPlan` is a deterministic, seeded population of hardware
faults over one memory matrix:

* **weak-retention cells** — rows hosting a cell from the low tail of
  the :class:`~repro.variability.retention.RetentionModel` distribution
  (the paper's 6-sigma worst case made concrete, row by row);
* **stuck bits** — manufacturing defects that pin one bit of a word;
* **sense-amp offset outliers** — local blocks whose SA offset landed
  far out on the Pelgrom distribution, shrinking the read margin;
* **refresh faults** — rows whose scheduled refresh is dropped (a dead
  wordline driver) or chronically late (a slow charge pump).

The plan is pure data: generation (:func:`generate_fault_plan`) is
separated from injection (:mod:`repro.faults.injector`) and repair
(:mod:`repro.faults.repair`), so one plan can be replayed against the
refresh simulator, the macro margin checks and the cache hierarchy —
and archived next to the run report that used it.

Construction validates only types and signs; *physical consistency*
(weak-cell fraction above 1, coordinates outside the matrix, duplicate
faults) is the province of ``repro check`` rule M212, so a questionable
plan can be linted without crashing the loader.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import config_fingerprint
from repro.units import us

#: Refresh-fault kinds a plan may contain.
REFRESH_FAULT_KINDS = ("drop", "late")


@dataclasses.dataclass(frozen=True)
class WeakCell:
    """One row hosting a retention-tail cell (times in seconds)."""

    block: int
    row: int
    retention_time: float


@dataclasses.dataclass(frozen=True)
class StuckBit:
    """One bit of one word pinned to a constant value."""

    block: int
    row: int
    bit: int
    stuck_value: int = 0


@dataclasses.dataclass(frozen=True)
class SenseAmpOutlier:
    """A local block whose SA offset is an outlier.

    ``offset_multiplier`` scales the required input differential of the
    block's sense amplifier (>= 1 in any physical plan).
    """

    block: int
    offset_multiplier: float


@dataclasses.dataclass(frozen=True)
class RefreshFault:
    """A row whose scheduled refresh misbehaves every period.

    ``kind="drop"``: the refresh never happens (dead wordline driver).
    ``kind="late"``: the refresh starts ``delay_cycles`` late.
    """

    row: int  # global row index (block-major, as the scheduler walks)
    kind: str
    delay_cycles: int = 0

    def __post_init__(self) -> None:
        if self.kind not in REFRESH_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown refresh fault kind {self.kind!r}; "
                f"use one of {REFRESH_FAULT_KINDS}")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seeded population of faults over one memory matrix."""

    seed: int
    n_blocks: int
    rows_per_block: int
    word_bits: int = 32
    weak_cells: Tuple[WeakCell, ...] = ()
    stuck_bits: Tuple[StuckBit, ...] = ()
    sa_outliers: Tuple[SenseAmpOutlier, ...] = ()
    refresh_faults: Tuple[RefreshFault, ...] = ()

    def __post_init__(self) -> None:
        if self.n_blocks < 1 or self.rows_per_block < 1:
            raise ConfigurationError("fault plan needs a non-empty matrix")
        if self.word_bits < 1:
            raise ConfigurationError("word_bits must be >= 1")

    # -- derived views ------------------------------------------------------

    @property
    def total_rows(self) -> int:
        return self.n_blocks * self.rows_per_block

    @property
    def weak_cell_fraction(self) -> float:
        return len(self.weak_cells) / self.total_rows

    def global_row(self, block: int, row: int) -> int:
        """Block-major global row index (the refresh walk order)."""
        return block * self.rows_per_block + row

    def weakest_retention(self) -> Optional[float]:
        """Shortest weak-cell retention, or ``None`` without weak cells."""
        if not self.weak_cells:
            return None
        return min(cell.retention_time for cell in self.weak_cells)

    def weak_rows(self) -> FrozenSet[int]:
        """Global row indices hosting a weak cell."""
        return frozenset(self.global_row(c.block, c.row)
                         for c in self.weak_cells)

    def dropped_rows(self) -> FrozenSet[int]:
        return frozenset(f.row for f in self.refresh_faults
                         if f.kind == "drop")

    def late_rows(self) -> Dict[int, int]:
        """Global row -> delay cycles for chronically late refreshes."""
        return {f.row: f.delay_cycles for f in self.refresh_faults
                if f.kind == "late"}

    def worst_sa_multiplier(self) -> float:
        """Largest SA offset multiplier in the plan (1.0 if none)."""
        if not self.sa_outliers:
            return 1.0
        return max(o.offset_multiplier for o in self.sa_outliers)

    def fingerprint(self) -> str:
        """Stable short hash, for checkpoint keys and run reports."""
        return config_fingerprint(dataclasses.asdict(self))

    def describe(self) -> str:
        weakest = self.weakest_retention()
        lines = [
            f"fault plan (seed {self.seed}) over "
            f"{self.n_blocks} x {self.rows_per_block} rows:",
            f"  weak cells      : {len(self.weak_cells)}"
            + (f" (weakest {weakest:.3g} s)" if weakest else ""),
            f"  stuck bits      : {len(self.stuck_bits)}",
            f"  SA outliers     : {len(self.sa_outliers)}"
            + (f" (worst x{self.worst_sa_multiplier():.2f})"
               if self.sa_outliers else ""),
            f"  refresh faults  : {len(self.dropped_rows())} dropped, "
            f"{len(self.late_rows())} late",
        ]
        return "\n".join(lines)


def generate_fault_plan(*, seed: int, n_blocks: int, rows_per_block: int,
                        word_bits: int = 32,
                        weak_cell_fraction: float = 0.001,
                        retention_model=None,
                        retention_floor: float = 50 * us,
                        stuck_bit_fraction: float = 0.0002,
                        sa_outlier_fraction: float = 0.01,
                        sa_outlier_sigma: float = 0.5,
                        refresh_drop_fraction: float = 0.0,
                        refresh_late_fraction: float = 0.0,
                        max_late_cycles: int = 64) -> FaultPlan:
    """Draw a seeded :class:`FaultPlan` for one matrix.

    Weak-cell retention times come from the low tail of
    ``retention_model`` (the weakest draws of a matrix-sized
    :meth:`~repro.variability.retention.RetentionModel.sample_many`
    population); without a model they fall on a lognormal around
    ``retention_floor``.  All fractions are of the matrix's rows; the
    same ``seed`` always produces the identical plan.
    """
    for name, fraction in (("weak_cell_fraction", weak_cell_fraction),
                           ("stuck_bit_fraction", stuck_bit_fraction),
                           ("sa_outlier_fraction", sa_outlier_fraction),
                           ("refresh_drop_fraction", refresh_drop_fraction),
                           ("refresh_late_fraction", refresh_late_fraction)):
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(
                f"{name}={fraction!r} must lie in [0, 1]")
    if max_late_cycles < 1:
        raise ConfigurationError("max_late_cycles must be >= 1")

    rng = np.random.default_rng(seed)
    total_rows = n_blocks * rows_per_block

    def pick_rows(fraction: float) -> np.ndarray:
        count = int(round(fraction * total_rows))
        count = min(count, total_rows)
        if count == 0:
            return np.empty(0, dtype=int)
        return rng.choice(total_rows, size=count, replace=False)

    # Weak cells: the weakest draws of a matrix-sized population.
    weak_rows = np.sort(pick_rows(weak_cell_fraction))
    if len(weak_rows):
        if retention_model is not None:
            population = retention_model.sample_many(rng, total_rows)
            retentions = np.sort(population)[:len(weak_rows)]
        else:
            retentions = retention_floor * rng.lognormal(
                0.0, 0.5, size=len(weak_rows))
    else:
        retentions = np.empty(0)
    weak_cells = tuple(
        WeakCell(block=int(r) // rows_per_block,
                 row=int(r) % rows_per_block,
                 retention_time=float(t))
        for r, t in zip(weak_rows, retentions))

    stuck_rows = np.sort(pick_rows(stuck_bit_fraction))
    stuck_bits = tuple(
        StuckBit(block=int(r) // rows_per_block,
                 row=int(r) % rows_per_block,
                 bit=int(rng.integers(word_bits)),
                 stuck_value=int(rng.integers(2)))
        for r in stuck_rows)

    n_outliers = min(int(round(sa_outlier_fraction * n_blocks)), n_blocks)
    outlier_blocks = (np.sort(rng.choice(n_blocks, size=n_outliers,
                                         replace=False))
                      if n_outliers else np.empty(0, dtype=int))
    sa_outliers = tuple(
        SenseAmpOutlier(block=int(b),
                        offset_multiplier=float(
                            1.0 + abs(rng.normal(0.0, sa_outlier_sigma))))
        for b in outlier_blocks)

    dropped = pick_rows(refresh_drop_fraction)
    late = pick_rows(refresh_late_fraction)
    late = late[~np.isin(late, dropped)]  # a dead driver cannot be late
    refresh_faults = tuple(
        RefreshFault(row=int(r), kind="drop") for r in np.sort(dropped)
    ) + tuple(
        RefreshFault(row=int(r), kind="late",
                     delay_cycles=int(rng.integers(1, max_late_cycles + 1)))
        for r in np.sort(late))

    return FaultPlan(
        seed=seed,
        n_blocks=n_blocks,
        rows_per_block=rows_per_block,
        word_bits=word_bits,
        weak_cells=weak_cells,
        stuck_bits=stuck_bits,
        sa_outliers=sa_outliers,
        refresh_faults=refresh_faults,
    )
