"""ECC + spare-row repair: fault plans become *degraded*, not *dead*.

A production macro survives the faults of :mod:`repro.faults.plan`
through two mechanisms, modelled here in the order hardware applies
them:

1. **Spare rows** (row redundancy) remap the worst rows at test time.
   Allocation is greedy by severity: rows with more stuck bits than ECC
   can correct first (they would corrupt data on every access), then
   the weakest-retention rows (they force the fastest refresh).
2. **ECC** corrects up to ``correctable_bits`` per word at access time;
   stuck bits that remain after repair and fit within that budget cost
   only corrected-error events, not data.

What cannot be repaired is *degraded around*: rows that are
uncorrectable and unrepaired are mapped out (capacity loss), and the
weakest surviving weak cell drags the refresh period down
(refresh-rate uplift).  :func:`assess_macro` reports all of this in a
:class:`DegradedMacroReport` instead of a pass/fail verdict — the
degraded-but-functional accounting the resilience layer is built
around.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Tuple

from repro import obs
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.units import si_format


@dataclasses.dataclass(frozen=True)
class RepairModel:
    """Repair resources of one macro.

    ``spare_rows_per_block`` rows of row redundancy per local block and
    an ECC able to correct ``correctable_bits`` per word.  Construction
    validates types only; ``repro check`` rule M212 flags physically
    inconsistent combinations (e.g. repair capacity exceeding the spare
    rows a block can hold) without crashing the loader.
    """

    spare_rows_per_block: int = 2
    correctable_bits: int = 1
    #: Refresh runs this much faster than the weakest surviving cell.
    retention_guard: float = 2.0

    @property
    def has_spares(self) -> bool:
        return self.spare_rows_per_block > 0


@dataclasses.dataclass(frozen=True)
class DegradedMacroReport:
    """How one macro functions under a fault plan after repair.

    All counts are post-repair.  ``functional`` is False only when an
    uncorrectable error pattern survives both ECC and row repair *and*
    could not be mapped out (never the case with map-out capacity
    accounting, unless the plan kills every row of a block).
    """

    plan_fingerprint: str
    total_rows: int
    spare_rows_used: int
    spare_rows_available: int
    repaired_rows: int  # remapped onto spares
    mapped_out_rows: int  # uncorrectable + unrepaired: capacity lost
    corrected_bits_per_access: int  # stuck bits ECC absorbs, worst word
    correctable_rows: int  # rows relying on ECC every access
    surviving_weak_cells: int
    base_refresh_period: float  # seconds, fault-free design point
    degraded_refresh_period: float  # seconds, after surviving weak cells
    sa_margin_multiplier: float  # worst surviving SA offset uplift

    @property
    def functional(self) -> bool:
        return self.mapped_out_rows < self.total_rows

    @property
    def capacity_loss_fraction(self) -> float:
        return self.mapped_out_rows / self.total_rows

    @property
    def refresh_rate_uplift(self) -> float:
        """How much faster refresh must run than the fault-free design
        point (1.0 = no uplift)."""
        # isclose(inf, inf) is True, so never-refreshed static cells
        # (both periods infinite) report no uplift.
        if math.isclose(self.degraded_refresh_period,
                        self.base_refresh_period):
            return 1.0
        return self.base_refresh_period / self.degraded_refresh_period

    def summary(self) -> Dict[str, float]:
        return {
            "spare_rows_used": float(self.spare_rows_used),
            "repaired_rows": float(self.repaired_rows),
            "mapped_out_rows": float(self.mapped_out_rows),
            "capacity_loss_fraction": self.capacity_loss_fraction,
            "correctable_rows": float(self.correctable_rows),
            "surviving_weak_cells": float(self.surviving_weak_cells),
            "refresh_rate_uplift": self.refresh_rate_uplift,
            "sa_margin_multiplier": self.sa_margin_multiplier,
        }

    def describe(self) -> str:
        lines = [
            f"degraded-mode report (plan {self.plan_fingerprint}):",
            f"  spare rows       : {self.spare_rows_used}"
            f"/{self.spare_rows_available} used"
            f" ({self.repaired_rows} rows repaired)",
            f"  mapped out       : {self.mapped_out_rows} rows"
            f" ({100 * self.capacity_loss_fraction:.3g}% capacity loss)",
            f"  ECC-reliant rows : {self.correctable_rows}"
            f" (worst word corrects {self.corrected_bits_per_access}"
            " bit(s) per access)",
            f"  refresh period   : "
            f"{si_format(self.degraded_refresh_period, 's')}"
            f" (x{self.refresh_rate_uplift:.2f} rate uplift, "
            f"{self.surviving_weak_cells} weak cells survive)",
            f"  SA margin        : x{self.sa_margin_multiplier:.2f}"
            " required-signal uplift",
            f"  functional       : {'yes' if self.functional else 'NO'}",
        ]
        return "\n".join(lines)


def assess_plan(plan: FaultPlan, repair: RepairModel,
                base_refresh_period: float) -> DegradedMacroReport:
    """Apply ``repair`` to ``plan`` and account for what survives.

    ``base_refresh_period`` is the fault-free design point (seconds);
    the degraded period can only be shorter.  Pure function of its
    arguments — :meth:`repro.array.macro.MacroDesign.fault_assessment`
    wires in the macro's own organization and refresh period.
    """
    if base_refresh_period <= 0:
        raise ConfigurationError("base refresh period must be positive")

    # Severity-ordered repair queue: uncorrectable stuck rows first
    # (data corruption on every access), then weakest retention.
    stuck_per_row: Dict[Tuple[int, int], int] = {}
    for stuck in plan.stuck_bits:
        key = (stuck.block, stuck.row)
        stuck_per_row[key] = stuck_per_row.get(key, 0) + 1
    uncorrectable = [key for key, count in sorted(stuck_per_row.items())
                     if count > repair.correctable_bits]
    weak_sorted = sorted(plan.weak_cells, key=lambda c: c.retention_time)
    queue = ([("stuck", key) for key in uncorrectable]
             + [("weak", (c.block, c.row)) for c in weak_sorted])

    spares: Dict[int, int] = {b: repair.spare_rows_per_block
                              for b in range(plan.n_blocks)}
    repaired: set = set()
    for _kind, (block, row) in queue:
        if (block, row) in repaired:
            continue
        if spares.get(block, 0) > 0:
            spares[block] -= 1
            repaired.add((block, row))

    mapped_out = [key for key in uncorrectable if key not in repaired]
    correctable_rows = [key for key, count in stuck_per_row.items()
                        if count <= repair.correctable_bits
                        and key not in repaired]
    survivors = [c for c in plan.weak_cells
                 if (c.block, c.row) not in repaired]

    degraded_period = base_refresh_period
    if survivors:
        worst = min(c.retention_time for c in survivors)
        degraded_period = min(base_refresh_period,
                              worst / repair.retention_guard)

    spare_total = repair.spare_rows_per_block * plan.n_blocks
    report = DegradedMacroReport(
        plan_fingerprint=plan.fingerprint(),
        total_rows=plan.total_rows,
        spare_rows_used=spare_total - sum(spares.values()),
        spare_rows_available=spare_total,
        repaired_rows=len(repaired),
        mapped_out_rows=len(mapped_out),
        corrected_bits_per_access=max(
            (stuck_per_row[key] for key in correctable_rows), default=0),
        correctable_rows=len(correctable_rows),
        surviving_weak_cells=len(survivors),
        base_refresh_period=base_refresh_period,
        degraded_refresh_period=degraded_period,
        sa_margin_multiplier=plan.worst_sa_multiplier(),
    )
    m = obs.metrics()
    m.counter("faults.rows_repaired").inc(report.repaired_rows)
    m.counter("faults.rows_mapped_out").inc(report.mapped_out_rows)
    m.gauge("faults.refresh_rate_uplift").set(report.refresh_rate_uplift)
    return report


def plan_for_organization(organization, **kwargs) -> FaultPlan:
    """Draw a fault plan sized for one array organization."""
    from repro.faults.plan import generate_fault_plan
    return generate_fault_plan(
        n_blocks=organization.n_localblocks,
        rows_per_block=organization.cells_per_lbl,
        word_bits=organization.word_bits,
        **kwargs)
