"""repro.obs — instrumentation: metrics, span tracing, run reports.

The layer every performance claim in this repo reports through.  Three
pieces:

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  in a :class:`MetricsRegistry`;
* :mod:`repro.obs.tracing` — nested wall-time spans
  (``with span("newton.solve"):``) folded into a per-run tree;
* :mod:`repro.obs.report` — serialises one run (span tree + metrics +
  config fingerprint) to JSON.

Instrumentation is **disabled by default**.  Library code calls
:func:`span` and :func:`metrics` unconditionally; while disabled those
return shared no-op objects, so the cost at every call site is a flag
test plus an empty ``with`` block — bounded below 2 % of the Fig. 5
simulation loop by ``benchmarks/test_obs_overhead.py``.  The CLI's
``--profile`` / ``--metrics-out`` flags (and tests, via
:func:`instrumented`) switch the real implementations in.

Typical library-side usage::

    from repro import obs

    with obs.span("simulate", cycles=n):
        ...
        obs.metrics().counter("refresh.stall_cycles").inc(stalls)

Typical harness-side usage::

    obs.enable()
    run_the_thing()
    report = obs.run_report("fig5", config={...})
    obs.disable()
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, Optional, Union

from repro.obs.metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                               MetricsRegistry, NULL_REGISTRY, NullRegistry)
from repro.obs.report import (REPORT_SCHEMA, build_run_report,
                              config_fingerprint, write_run_report)
from repro.obs.tracing import (NOOP_SPAN, Span, Tracer, _NoopSpan,
                               format_span_tree)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "NULL_REGISTRY", "DEFAULT_BUCKETS",
    "Span", "Tracer", "NOOP_SPAN", "format_span_tree",
    "REPORT_SCHEMA", "build_run_report", "config_fingerprint",
    "write_run_report",
    "enable", "disable", "is_enabled", "reset", "instrumented",
    "metrics", "tracer", "span", "run_report",
]

# Process-global default instances.  ``enable()`` may swap in injected
# ones; the defaults persist so repeated enable/disable cycles keep
# accumulating into the same registry until ``reset()``.
_enabled: bool = False
_registry: MetricsRegistry = MetricsRegistry()
_tracer: Tracer = Tracer()


def is_enabled() -> bool:
    """Is instrumentation currently recording?"""
    return _enabled


def enable(registry: Optional[MetricsRegistry] = None,
           tracer: Optional[Tracer] = None) -> None:
    """Turn instrumentation on, optionally injecting instances."""
    global _enabled, _registry, _tracer
    if registry is not None:
        _registry = registry
    if tracer is not None:
        _tracer = tracer
    _enabled = True


def disable() -> None:
    """Turn instrumentation off (recorded data stays until reset)."""
    global _enabled
    _enabled = False


def reset() -> None:
    """Clear every recorded metric and span on the default instances."""
    _registry.reset()
    _tracer.reset()


def metrics() -> Union[MetricsRegistry, NullRegistry]:
    """The active registry — the null registry while disabled."""
    return _registry if _enabled else NULL_REGISTRY


def tracer() -> Tracer:
    """The active tracer (even while disabled, for inspection)."""
    return _tracer


def span(name: str, **attrs: Any) -> Union[Span, _NoopSpan]:
    """Open a (nested) timed span; no-op while disabled."""
    if not _enabled:
        return NOOP_SPAN
    return _tracer.span(name, **attrs)


def run_report(command: str, config: Dict[str, Any]) -> Dict[str, Any]:
    """Build the JSON-serialisable report of the current run."""
    return build_run_report(command, config, _registry, _tracer)


@contextlib.contextmanager
def instrumented(registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None) -> Iterator[MetricsRegistry]:
    """Temporarily enable instrumentation (tests' main entry point).

    Yields the active registry; on exit the previous global state —
    enabled flag, registry, tracer — is restored exactly.
    """
    global _enabled, _registry, _tracer
    saved = (_enabled, _registry, _tracer)
    try:
        enable(registry=registry or MetricsRegistry(),
               tracer=tracer or Tracer())
        yield _registry
    finally:
        _enabled, _registry, _tracer = saved
