"""repro.obs — instrumentation: metrics, spans, events, time series.

The layer every performance claim in this repo reports through.  Five
pieces:

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  in a :class:`MetricsRegistry`;
* :mod:`repro.obs.tracing` — nested wall-time spans
  (``with span("newton.solve"):``) folded into a per-run tree;
* :mod:`repro.obs.events` — a bounded, timestamped structured-event
  log (in-memory ring + optional JSONL sink);
* :mod:`repro.obs.timeseries` — windowed samplers with bounded-memory
  decimation for time-resolved statistics on million-step runs;
* :mod:`repro.obs.report` — serialises one run (span tree + metrics +
  events + series + config fingerprint) to JSON.

Offline tooling lives beside them: :mod:`repro.obs.export` renders a
run report as a Chrome-trace (Perfetto-viewable), CSV, or
Prometheus-textfile document; :mod:`repro.obs.diff` computes
threshold-gated metric deltas between two reports; and
:mod:`repro.obs.progress` drives the live sweep progress line.

Instrumentation is **disabled by default**.  Library code calls
:func:`span`, :func:`metrics`, :func:`event` and :func:`timeseries`
unconditionally; while disabled those return shared no-op objects, so
the cost at every call site is a flag test plus an empty call —
bounded below 2 % of the Fig. 5 simulation loop by
``benchmarks/test_obs_overhead.py``.  The CLI's ``--profile`` /
``--metrics-out`` / ``--events-out`` flags (and tests, via
:func:`instrumented`) switch the real implementations in.

Typical library-side usage::

    from repro import obs

    with obs.span("simulate", cycles=n):
        ...
        obs.metrics().counter("refresh.stall_cycles").inc(stalls)
        obs.event("refresh.dropped", index=i, cycle=cycle)
        obs.timeseries().series("refresh.busy_fraction").sample(cycle, f)

Typical harness-side usage::

    obs.enable()
    run_the_thing()
    report = obs.run_report("fig5", config={...})
    obs.disable()
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, Optional, Union

from repro.analysis.effects import mutates_global_state, observational
from repro.obs.events import (DEFAULT_EVENT_CAPACITY, Event, EventLog,
                              NULL_EVENT_LOG, NullEventLog)
from repro.obs.metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                               MetricsRegistry, NULL_REGISTRY, NullRegistry)
from repro.obs.report import (REPORT_SCHEMA, build_run_report,
                              config_fingerprint, write_run_report)
from repro.obs.timeseries import (NULL_TIMESERIES, NullTimeSeriesRecorder,
                                  TimeSeries, TimeSeriesRecorder)
from repro.obs.tracing import (NOOP_SPAN, Span, Tracer, _NoopSpan,
                               format_span_tree)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "NULL_REGISTRY", "DEFAULT_BUCKETS",
    "Span", "Tracer", "NOOP_SPAN", "format_span_tree",
    "Event", "EventLog", "NullEventLog", "NULL_EVENT_LOG",
    "DEFAULT_EVENT_CAPACITY",
    "TimeSeries", "TimeSeriesRecorder", "NullTimeSeriesRecorder",
    "NULL_TIMESERIES",
    "REPORT_SCHEMA", "build_run_report", "config_fingerprint",
    "write_run_report",
    "enable", "disable", "is_enabled", "reset", "instrumented",
    "metrics", "tracer", "span", "event", "events", "timeseries",
    "run_report",
]

# Process-global default instances.  ``enable()`` may swap in injected
# ones; the defaults persist so repeated enable/disable cycles keep
# accumulating into the same registry until ``reset()``.
_enabled: bool = False
_registry: MetricsRegistry = MetricsRegistry()
_tracer: Tracer = Tracer()
_events: EventLog = EventLog()
_timeseries: TimeSeriesRecorder = TimeSeriesRecorder()


@observational
def is_enabled() -> bool:
    """Is instrumentation currently recording?"""
    return _enabled


@mutates_global_state
def enable(registry: Optional[MetricsRegistry] = None,
           tracer: Optional[Tracer] = None,
           events: Optional[EventLog] = None,
           timeseries: Optional[TimeSeriesRecorder] = None) -> None:
    """Turn instrumentation on, optionally injecting instances."""
    global _enabled, _registry, _tracer, _events, _timeseries
    if registry is not None:
        _registry = registry
    if tracer is not None:
        _tracer = tracer
    if events is not None:
        _events = events
    if timeseries is not None:
        _timeseries = timeseries
    _enabled = True


@mutates_global_state
def disable() -> None:
    """Turn instrumentation off (recorded data stays until reset)."""
    global _enabled
    _enabled = False


@mutates_global_state
def reset() -> None:
    """Clear every recorded metric, span, event and series."""
    _registry.reset()
    _tracer.reset()
    _events.reset()
    _timeseries.reset()


@observational
def metrics() -> Union[MetricsRegistry, NullRegistry]:
    """The active registry — the null registry while disabled."""
    return _registry if _enabled else NULL_REGISTRY


@observational
def tracer() -> Tracer:
    """The active tracer (even while disabled, for inspection)."""
    return _tracer


@observational
def span(name: str, **attrs: Any) -> Union[Span, _NoopSpan]:
    """Open a (nested) timed span; no-op while disabled."""
    if not _enabled:
        return NOOP_SPAN
    return _tracer.span(name, **attrs)


@observational
def events() -> Union[EventLog, NullEventLog]:
    """The active event log — the null log while disabled."""
    return _events if _enabled else NULL_EVENT_LOG


@observational
def event(kind: str, **payload: Any) -> None:
    """Emit one structured event; no-op while disabled.

    The hot-path spelling of ``obs.events().emit(...)`` — one flag
    test, then either nothing or a ring append (plus the JSONL sink
    write when one is attached).
    """
    if _enabled:
        _events.emit(kind, **payload)


@observational
def timeseries() -> Union[TimeSeriesRecorder, NullTimeSeriesRecorder]:
    """The active time-series recorder — the null one while disabled."""
    return _timeseries if _enabled else NULL_TIMESERIES


@observational
def run_report(command: str, config: Dict[str, Any]) -> Dict[str, Any]:
    """Build the JSON-serialisable report of the current run."""
    return build_run_report(command, config, _registry, _tracer,
                            events=_events, timeseries=_timeseries)


@mutates_global_state
@contextlib.contextmanager
def instrumented(registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 events: Optional[EventLog] = None,
                 timeseries: Optional[TimeSeriesRecorder] = None
                 ) -> Iterator[MetricsRegistry]:
    """Temporarily enable instrumentation (tests' main entry point).

    Yields the active registry; on exit the previous global state —
    enabled flag, registry, tracer, event log, series recorder — is
    restored exactly.
    """
    global _enabled, _registry, _tracer, _events, _timeseries
    saved = (_enabled, _registry, _tracer, _events, _timeseries)
    try:
        # Explicit None checks: an empty EventLog is falsy (it has a
        # __len__), so ``events or EventLog()`` would silently discard
        # an injected-but-still-empty log (and its JSONL sink).
        enable(registry=registry if registry is not None
               else MetricsRegistry(),
               tracer=tracer if tracer is not None else Tracer(),
               events=events if events is not None else EventLog(),
               timeseries=timeseries if timeseries is not None
               else TimeSeriesRecorder())
        yield _registry
    finally:
        (_enabled, _registry, _tracer, _events, _timeseries) = saved
