"""Mechanical run comparison: threshold-gated metric deltas.

``repro obs diff A.json B.json`` answers "did anything move, and did
it move the wrong way?" without a human eyeballing two JSON files.  It
accepts both document shapes this repo produces:

* **run reports** (``--metrics-out``): counters/gauges flatten to
  their values, histograms to ``<name>.mean``/``<name>.count``, plus
  ``total_duration_s``;
* **benchmark reports** (``BENCH_solver.json``/``BENCH_sweep.json``):
  every top-level numeric key.

Each metric is classified by name into a *direction*: higher-better
(throughputs, speedups, rates, hits), lower-better (durations, stalls,
misses, failures) or neutral.  A relative change beyond the threshold
against a metric's good direction is a **regression**; the CLI exits
non-zero when any exists, which is what lets CI gate on
``repro obs diff BENCH_solver.json benchmarks/results/BENCH_solver.json``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import re
from typing import Any, Dict, List

from repro.errors import ConfigurationError

#: Default relative-change gate, matching the perf-smoke tolerance.
DEFAULT_THRESHOLD = 0.25

_HIGHER_BETTER_RE = re.compile(
    r"per_sec|per_second|speedup|throughput|rate|ratio|hits|reuse|useful"
    r"|completed|efficiency", re.IGNORECASE)
_LOWER_BETTER_RE = re.compile(
    r"duration|seconds|elapsed|latency|_time|stall|miss|fail|drop|crash"
    r"|exhausted|error|retries|refactor", re.IGNORECASE)


@dataclasses.dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between two reports."""

    name: str
    before: float
    after: float
    direction: str  # "higher_better" | "lower_better" | "neutral"
    threshold: float

    @property
    def rel_change(self) -> float:
        """(after - before) / |before|; +/-inf for a vanished baseline."""
        # Exact-zero sentinels: a counter that was literally 0 has no
        # relative scale, so tolerance comparison would be wrong here.
        if self.before == 0.0:  # noqa: L102
            return 0.0 if self.after == 0.0 else float(  # noqa: L102
                "inf" if self.after > 0 else "-inf")
        return (self.after - self.before) / abs(self.before)

    @property
    def exceeds_threshold(self) -> bool:
        return abs(self.rel_change) >= self.threshold

    @property
    def regressed(self) -> bool:
        """Did the metric move the wrong way beyond the threshold?"""
        if not self.exceeds_threshold:
            return False
        if self.direction == "higher_better":
            return self.rel_change < 0
        if self.direction == "lower_better":
            return self.rel_change > 0
        return False

    def describe(self) -> str:
        flag = "  REGRESSION" if self.regressed else ""
        return (f"{self.name:<44} {self.before:>14.6g} {self.after:>14.6g} "
                f"{100 * self.rel_change:>+9.1f}%{flag}")


def metric_direction(name: str) -> str:
    """Classify a metric name as higher/lower-better or neutral.

    Lower-better wins ties (``convergence_failure_rate`` is a failure
    count first), which keeps the gate conservative: an ambiguous
    metric that doubles is flagged.
    """
    if _LOWER_BETTER_RE.search(name):
        return "lower_better"
    if _HIGHER_BETTER_RE.search(name):
        return "higher_better"
    return "neutral"


def flatten_metrics(doc: Dict[str, Any]) -> Dict[str, float]:
    """Flatten either report shape into ``{metric_name: value}``."""
    if not isinstance(doc, dict):
        raise ConfigurationError("report must be a JSON object")
    flat: Dict[str, float] = {}
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):  # a run report
        for name, value in metrics.get("counters", {}).items():
            flat[name] = float(value)
        for name, value in metrics.get("gauges", {}).items():
            flat[name] = float(value)
        for name, state in metrics.get("histograms", {}).items():
            count = int(state.get("count", 0))
            flat[f"{name}.count"] = float(count)
            if count:
                flat[f"{name}.mean"] = float(state.get("sum", 0.0)) / count
        if isinstance(doc.get("total_duration_s"), (int, float)):
            flat["total_duration_s"] = float(doc["total_duration_s"])
        return flat
    for name, value in doc.items():  # a flat benchmark report
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        flat[str(name)] = float(value)
    return flat


def load_report(path: "str | pathlib.Path") -> Dict[str, Any]:
    """Load one report JSON with a one-line diagnostic on failure."""
    target = pathlib.Path(path)
    try:
        return json.loads(target.read_text())
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read report {target}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"report {target} is not valid JSON: {exc}") from exc


def diff_reports(before: Dict[str, Any], after: Dict[str, Any],
                 threshold: float = DEFAULT_THRESHOLD) -> List[MetricDelta]:
    """Compare two reports; returns one delta per shared numeric metric.

    Metrics present in only one report are skipped (a new counter is
    not a regression); the caller can detect them by comparing
    :func:`flatten_metrics` key sets.
    """
    if threshold <= 0:
        raise ConfigurationError(
            f"threshold must be positive, got {threshold:g}")
    flat_a = flatten_metrics(before)
    flat_b = flatten_metrics(after)
    deltas = [
        MetricDelta(name=name, before=flat_a[name], after=flat_b[name],
                    direction=metric_direction(name), threshold=threshold)
        for name in sorted(flat_a.keys() & flat_b.keys())
    ]
    return deltas


def format_diff(deltas: List[MetricDelta],
                threshold: float = DEFAULT_THRESHOLD) -> str:
    """Human-readable diff: changed metrics, then a one-line verdict."""
    changed = [d for d in deltas if d.exceeds_threshold]
    regressions = [d for d in deltas if d.regressed]
    lines: List[str] = []
    if changed:
        lines.append(f"{'metric':<44} {'before':>14} {'after':>14} "
                     f"{'change':>10}")
        lines.extend(d.describe() for d in changed)
    lines.append(
        f"{len(deltas)} metric(s) compared, {len(changed)} beyond "
        f"±{100 * threshold:g}% threshold, "
        f"{len(regressions)} regression(s)")
    return "\n".join(lines)


def diff_to_json(deltas: List[MetricDelta]) -> str:
    """Machine-readable diff (sorted, schema-stable)."""
    return json.dumps({
        "schema": 1,
        "metrics_compared": len(deltas),
        "regressions": sum(1 for d in deltas if d.regressed),
        "deltas": [
            {
                "name": d.name,
                "before": d.before,
                "after": d.after,
                "rel_change": d.rel_change,
                "direction": d.direction,
                "exceeds_threshold": d.exceeds_threshold,
                "regressed": d.regressed,
            }
            for d in deltas if d.exceeds_threshold
        ],
    }, indent=2) + "\n"
