"""Structured event log: a bounded ring of timestamped facts.

Metrics answer "how much"; spans answer "how long"; events answer
"*what happened, when*".  An :class:`Event` is one discrete occurrence
— a recovery-ladder escalation, a dropped refresh, a cache eviction, a
checkpoint write — with a dotted lowercase ``kind`` and a small JSON-
serialisable payload.  Call sites emit through
:func:`repro.obs.event` (a no-op while instrumentation is disabled)::

    obs.event("spice.recovery.recovered", circuit="senseamp",
              rung="gmin", attempts=4)

The :class:`EventLog` is **bounded**: it keeps the newest ``capacity``
events in an in-memory ring and counts (never stores) everything it
had to drop, so a million-step run cannot exhaust memory through its
own instrumentation.  An optional JSONL sink streams *every* event to
disk as it is emitted — the ring bounds memory, the sink preserves the
full history for offline tooling (``repro obs export``).

Event kinds follow the same dotted ``lower_snake.case`` discipline as
metric names, and one kind keeps one payload-key signature across the
codebase — both enforced statically by lint rule ``L108``.
"""

from __future__ import annotations

import collections
import json
import logging
import pathlib
import time
from typing import Any, Deque, Dict, Iterable, List, Optional, Union

from repro.errors import ConfigurationError

_log = logging.getLogger(__name__)

#: Default ring capacity — newest events kept in memory per run.
DEFAULT_EVENT_CAPACITY = 4096


class Event:
    """One timestamped occurrence.

    ``t`` is :func:`time.perf_counter` at emission — the same clock
    spans use for ``start``, so events and spans land on one timeline
    in the exported Chrome trace.
    """

    __slots__ = ("t", "kind", "payload")

    def __init__(self, t: float, kind: str,
                 payload: Optional[Dict[str, Any]] = None) -> None:
        self.t = t
        self.kind = kind
        self.payload: Dict[str, Any] = payload or {}

    def to_dict(self) -> Dict[str, Any]:
        node: Dict[str, Any] = {"t": self.t, "kind": self.kind}
        if self.payload:
            node["payload"] = dict(self.payload)
        return node

    @classmethod
    def from_dict(cls, node: Dict[str, Any]) -> "Event":
        return cls(t=float(node["t"]), kind=str(node["kind"]),
                   payload=dict(node.get("payload", {})))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event(t={self.t:.6f}, kind={self.kind!r}, {self.payload})"


class EventLog:
    """Bounded in-memory event ring with an optional JSONL sink.

    The ring keeps the newest ``capacity`` events; older ones are
    dropped (counted in :attr:`dropped`).  With ``jsonl_path`` every
    event is additionally appended to that file as one JSON object per
    line; the parent directory is created if missing, and an unwritable
    path fails at construction with a one-line
    :class:`~repro.errors.ConfigurationError` instead of a traceback
    from deep inside a run.

    A sink that fails **mid-run** (disk full, filesystem yanked) must
    not kill the sweep that is being observed: the sink is closed, the
    failure is counted in :attr:`sink_errors` and logged once, and the
    log degrades to in-memory-only for the rest of the run.
    """

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY,
                 jsonl_path: "str | pathlib.Path | None" = None) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"event log capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: Deque[Event] = collections.deque(maxlen=capacity)
        self.emitted = 0
        self.dropped = 0
        self._sink = None
        self.sink_errors = 0
        self.sink_path: Optional[pathlib.Path] = None
        if jsonl_path is not None:
            self.sink_path = pathlib.Path(jsonl_path)
            try:
                self.sink_path.parent.mkdir(parents=True, exist_ok=True)
                self._sink = open(self.sink_path, "w")
            except OSError as exc:
                raise ConfigurationError(
                    f"cannot open event sink {self.sink_path}: "
                    f"{exc}") from exc

    # -- emission --------------------------------------------------------------

    def emit(self, kind: str, **payload: Any) -> Event:
        """Record one event; returns it (timestamped now)."""
        event = Event(time.perf_counter(), kind, payload)
        self._append(event)
        return event

    def _append(self, event: Event) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        self.emitted += 1
        if self._sink is not None:
            try:
                self._sink.write(
                    json.dumps(event.to_dict(), default=repr) + "\n")
            except (OSError, ValueError) as exc:
                # Disk full / sink torn away mid-run: telemetry must
                # never kill the run it observes.  Degrade to the
                # in-memory ring and say so once.
                self.sink_errors += 1
                sink, self._sink = self._sink, None
                try:
                    sink.close()
                except (OSError, ValueError):
                    pass
                _log.warning(
                    "event sink %s failed (%s); continuing in-memory only",
                    self.sink_path, exc)

    def extend(self, events: Iterable[Union[Event, Dict[str, Any]]]) -> int:
        """Fold already-timestamped events in, preserving their order.

        The parallel executor ships each worker's events back as dicts
        and the parent folds them here in submission order — the
        deterministic merge the progress/diff tooling relies on.
        Returns how many events were appended.
        """
        count = 0
        for item in events:
            event = item if isinstance(item, Event) else Event.from_dict(item)
            self._append(event)
            count += 1
        return count

    # -- introspection ---------------------------------------------------------

    def events(self) -> List[Event]:
        """The retained events, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Serialisable view of the retained ring (for run reports)."""
        return [event.to_dict() for event in self._ring]

    def kinds(self) -> Dict[str, int]:
        """Retained event count per kind (a cheap run summary)."""
        counts: Dict[str, int] = {}
        for event in self._ring:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Flush and close the JSONL sink (idempotent)."""
        if self._sink is not None:
            try:
                self._sink.close()
            finally:
                self._sink = None

    def reset(self) -> None:
        """Drop the retained ring and counters (the sink stays open)."""
        self._ring.clear()
        self.emitted = 0
        self.dropped = 0


class NullEventLog:
    """Event-log twin that discards everything (the disabled path)."""

    capacity = 0
    emitted = 0
    dropped = 0
    sink_errors = 0
    sink_path = None

    def emit(self, kind: str, **payload: Any) -> None:
        pass

    def extend(self, events: Iterable[Any]) -> int:
        return 0

    def events(self) -> List[Event]:
        return []

    def __len__(self) -> int:
        return 0

    def to_dicts(self) -> List[Dict[str, Any]]:
        return []

    def kinds(self) -> Dict[str, int]:
        return {}

    def close(self) -> None:
        pass

    def reset(self) -> None:
        pass


NULL_EVENT_LOG = NullEventLog()
