"""Render run reports for external tooling.

Three renderers over one input — the run-report dict produced by
:func:`repro.obs.build_run_report` (``--metrics-out`` files):

* :func:`chrome_trace` — Chrome trace-event JSON.  Load the output in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` to see the
  span tree as nested slices and every structured event as an instant
  marker on its own track.
* :func:`render_csv` — flat ``section,name,key,value`` rows covering
  metrics, time-series points and events; trivially greppable and
  spreadsheet-ready.
* :func:`render_prometheus` — Prometheus *textfile-collector* format
  (``node_exporter --collector.textfile``), so a fleet of runs can push
  end-of-run metrics into standard scrape infrastructure.

:func:`validate_chrome_trace` is the schema gate the test suite (and
``repro obs export --check``) runs over every produced trace: required
keys per phase, non-negative durations, correct nesting of complete
events, and monotonic instant-event timestamps per track.

Schema-1 reports (before spans carried ``start_s``) still export: the
renderer synthesises a sequential layout — each child starts where its
previous sibling ended — which preserves nesting exactly even though
the absolute offsets are reconstructed.
"""

from __future__ import annotations

import csv
import io
import json
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Trace track (tid) assignments: spans on 1, instant events on 2.
SPAN_TID = 1
EVENT_TID = 2
_PID = 1

_PROM_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_]")


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------

def chrome_trace(report: Dict[str, Any]) -> Dict[str, Any]:
    """Render a run report as a Chrome trace-event document.

    Spans become complete (``"ph": "X"``) events on track ``SPAN_TID``;
    structured events become instant (``"ph": "i"``) events on track
    ``EVENT_TID``, sorted by timestamp.  All timestamps are microseconds
    relative to the earliest span/event in the report.
    """
    spans = report.get("spans", [])
    events = report.get("events", [])
    laid_out = [_layout_span(node, None) for node in spans]
    t0_candidates = [start for node in laid_out
                     for start in _all_starts(node)]
    t0_candidates.extend(float(e["t"]) for e in events if "t" in e)
    t0 = min(t0_candidates) if t0_candidates else 0.0

    trace_events: List[Dict[str, Any]] = [
        _thread_meta(SPAN_TID, "spans"),
        _thread_meta(EVENT_TID, "events"),
    ]
    for node in laid_out:
        _emit_span(node, t0, trace_events)
    instants = []
    for node in events:
        instant = {
            "name": str(node.get("kind", "event")),
            "cat": "event",
            "ph": "i",
            "s": "t",
            "ts": _us(float(node.get("t", t0)) - t0),
            "pid": _PID,
            "tid": EVENT_TID,
        }
        payload = node.get("payload")
        if payload:
            instant["args"] = dict(payload)
        instants.append(instant)
    instants.sort(key=lambda e: e["ts"])
    trace_events.extend(instants)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "command": report.get("command"),
            "fingerprint": report.get("fingerprint"),
            "schema": report.get("schema"),
        },
    }


def _thread_meta(tid: int, name: str) -> Dict[str, Any]:
    return {"name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
            "args": {"name": name}}


def _us(seconds: float) -> float:
    from repro.units import us
    return round(seconds / us, 3)


def _layout_span(node: Dict[str, Any],
                 cursor: Optional[float]) -> Dict[str, Any]:
    """Resolve a span node's absolute start, synthesising if absent.

    ``cursor`` is where a schema-1 span (no ``start_s``) should begin:
    its parent's start for a first child, the end of the previous
    sibling otherwise.  Children are laid out recursively; a copy of
    the node annotated with ``_start`` is returned.
    """
    start = node.get("start_s")
    if start is None:
        start = cursor if cursor is not None else 0.0
    start = float(start)
    resolved = dict(node)
    resolved["_start"] = start
    child_cursor = start
    children = []
    for child in node.get("children", []):
        laid = _layout_span(child, child_cursor)
        child_cursor = laid["_start"] + float(laid.get("duration_s", 0.0))
        children.append(laid)
    resolved["children"] = children
    return resolved


def _all_starts(node: Dict[str, Any]) -> List[float]:
    starts = [node["_start"]]
    for child in node.get("children", []):
        starts.extend(_all_starts(child))
    return starts


def _emit_span(node: Dict[str, Any], t0: float,
               out: List[Dict[str, Any]]) -> None:
    duration = float(node.get("duration_s", 0.0))
    entry: Dict[str, Any] = {
        "name": str(node.get("name", "span")),
        "cat": "span",
        "ph": "X",
        "ts": _us(node["_start"] - t0),
        "dur": _us(duration),
        "pid": _PID,
        "tid": SPAN_TID,
    }
    args = dict(node.get("attrs", {}))
    if node.get("error") is not None:
        args["error"] = node["error"]
    if args:
        entry["args"] = args
    out.append(entry)
    for child in node.get("children", []):
        _emit_span(child, t0, out)


def validate_chrome_trace(trace: Dict[str, Any]) -> List[str]:
    """Check a trace document against the trace-event schema.

    Returns a list of human-readable problems (empty = valid):

    * the document must carry a ``traceEvents`` list;
    * every event needs ``ph``/``pid``/``tid``/``name``, plus ``ts``
      (and non-negative ``dur`` for complete events);
    * complete events on one track must nest — a span may not
      partially overlap another;
    * instant events on one track must appear in non-decreasing
      timestamp order (monotonic per track).
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["document has no traceEvents list"]
    tracks: Dict[Tuple[Any, Any], List[Dict[str, Any]]] = {}
    for index, entry in enumerate(events):
        ph = entry.get("ph")
        if ph is None:
            problems.append(f"event #{index} has no phase ('ph')")
            continue
        if "name" not in entry:
            problems.append(f"event #{index} ({ph}) has no name")
        if ph == "M":
            continue
        for key in ("ts", "pid", "tid"):
            if key not in entry:
                problems.append(
                    f"event #{index} ({entry.get('name')!r}) lacks {key!r}")
        if ph == "X":
            dur = entry.get("dur")
            if dur is None:
                problems.append(
                    f"complete event {entry.get('name')!r} has no dur")
            elif dur < 0:
                problems.append(
                    f"complete event {entry.get('name')!r} has negative "
                    f"dur {dur}")
        if "ts" in entry:
            tracks.setdefault(
                (entry.get("pid"), entry.get("tid")), []).append(entry)
    for (pid, tid), entries in sorted(tracks.items(),
                                      key=lambda kv: str(kv[0])):
        problems.extend(_validate_track(pid, tid, entries))
    return problems


def _validate_track(pid: Any, tid: Any,
                    entries: List[Dict[str, Any]]) -> List[str]:
    problems: List[str] = []
    # Complete events must nest.  Sorted by (ts, -dur) an enclosing
    # span always precedes its children; a stack of span end-times then
    # catches any partial overlap.
    complete = sorted((e for e in entries if e.get("ph") == "X"),
                      key=lambda e: (e["ts"], -e.get("dur", 0.0)))
    stack: List[Tuple[float, str]] = []  # (end_ts, name)
    epsilon = 1e-3  # one nanosecond in microsecond units
    for entry in complete:
        ts, dur = entry["ts"], entry.get("dur", 0.0)
        while stack and ts >= stack[-1][0] - epsilon:
            stack.pop()
        if stack and ts + dur > stack[-1][0] + epsilon:
            problems.append(
                f"track {pid}/{tid}: span {entry['name']!r} "
                f"[{ts}, {ts + dur}] overlaps the end of enclosing span "
                f"{stack[-1][1]!r} at {stack[-1][0]}")
        stack.append((ts + dur, entry["name"]))
    # Instant events must be monotonic in document order.
    last_ts: Optional[float] = None
    for entry in entries:
        if entry.get("ph") != "i":
            continue
        ts = entry["ts"]
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"track {pid}/{tid}: instant event {entry['name']!r} at "
                f"ts={ts} breaks monotonic order (previous {last_ts})")
        last_ts = ts
    return problems


# ---------------------------------------------------------------------------
# CSV
# ---------------------------------------------------------------------------

def render_csv(report: Dict[str, Any]) -> str:
    """Flatten a run report into ``section,name,key,value`` CSV rows."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["section", "name", "key", "value"])
    metrics = report.get("metrics", {})
    for name, value in metrics.get("counters", {}).items():
        writer.writerow(["counter", name, "value", value])
    for name, value in metrics.get("gauges", {}).items():
        writer.writerow(["gauge", name, "value", value])
    for name, state in metrics.get("histograms", {}).items():
        writer.writerow(["histogram", name, "count", state.get("count", 0)])
        writer.writerow(["histogram", name, "sum", state.get("sum", 0.0)])
    for name, state in report.get("timeseries", {}).items():
        for t, value in state.get("points", []):
            writer.writerow(["timeseries", name, t, value])
    for node in report.get("events", []):
        writer.writerow([
            "event", node.get("kind", ""), node.get("t", ""),
            json.dumps(node.get("payload", {}), sort_keys=True,
                       default=repr)])
    return buffer.getvalue()


# ---------------------------------------------------------------------------
# Prometheus textfile
# ---------------------------------------------------------------------------

def render_prometheus(report: Dict[str, Any],
                      prefix: str = "repro") -> str:
    """Render the metrics section in Prometheus textfile format.

    Dotted metric names become underscore-joined and ``prefix``-ed
    (``refresh.stall_cycles`` -> ``repro_refresh_stall_cycles``);
    histograms expand into ``_bucket``/``_sum``/``_count`` families
    with cumulative ``le`` labels, per the exposition format.
    """
    metrics = report.get("metrics", {})
    lines: List[str] = []
    for name, value in metrics.get("counters", {}).items():
        prom = _prom_name(prefix, name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, value in metrics.get("gauges", {}).items():
        prom = _prom_name(prefix, name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, state in metrics.get("histograms", {}).items():
        prom = _prom_name(prefix, name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        counts = state.get("counts", [])
        buckets = state.get("buckets", [])
        for bound, count in zip(buckets, counts):
            cumulative += count
            lines.append(
                f'{prom}_bucket{{le="{_prom_value(bound)}"}} {cumulative}')
        cumulative += counts[-1] if len(counts) > len(buckets) else 0
        lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{prom}_sum {_prom_value(state.get('sum', 0.0))}")
        lines.append(f"{prom}_count {state.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(prefix: str, name: str) -> str:
    sanitized = _PROM_SANITIZE_RE.sub("_", name)
    return f"{prefix}_{sanitized}" if prefix else sanitized


def _prom_value(value: Any) -> str:
    number = float(value)
    # The bound keeps int rendering within float's exact-integer range
    # (a digit-precision limit, not a physical quantity).
    if number.is_integer() and abs(number) < 1e15:  # noqa: L101
        return str(int(number))
    return repr(number)


# ---------------------------------------------------------------------------
# Entry point shared by the CLI
# ---------------------------------------------------------------------------

#: Export formats understood by ``repro obs export``.
EXPORT_FORMATS = ("chrome", "csv", "prom")


def render_report(report: Dict[str, Any], fmt: str) -> str:
    """Render ``report`` in export format ``fmt`` (see EXPORT_FORMATS)."""
    if fmt == "chrome":
        trace = chrome_trace(report)
        problems = validate_chrome_trace(trace)
        if problems:
            raise ConfigurationError(
                "exported trace failed schema validation: "
                + "; ".join(problems[:3]))
        return json.dumps(trace, indent=2, default=repr) + "\n"
    if fmt == "csv":
        return render_csv(report)
    if fmt == "prom":
        return render_prometheus(report)
    raise ConfigurationError(
        f"unknown export format {fmt!r}; use one of {EXPORT_FORMATS}")
