"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` owns named instruments.  Instruments are
created on first use (``registry.counter("refresh.stalls")``) and
accumulate until :meth:`MetricsRegistry.reset`.  The registry is plain
in-process bookkeeping — no background threads, no exporters — so it is
cheap enough to leave compiled into the hot paths and serialise at the
end of a run (:mod:`repro.obs.report`).

Instrumented code should fetch instruments through
:func:`repro.obs.metrics` (the process-global default), which returns
no-op instruments while instrumentation is disabled; this module's
classes are the *enabled* implementations plus their null twins.

>>> registry = MetricsRegistry()
>>> registry.counter("hits").inc()
>>> registry.counter("hits").inc(2)
>>> registry.counter("hits").value
3.0
>>> registry.histogram("lat", buckets=(1, 10)).observe(5)
>>> registry.snapshot()["histograms"]["lat"]["counts"]
[0, 1, 0]
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Default histogram buckets — upper bounds, ascending; a final +inf
#: overflow bucket is implicit.  Chosen to resolve iteration counts and
#: millisecond-scale durations alike.
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (a level, a fraction, a size)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram of observations.

    ``buckets`` are ascending upper bounds; an implicit +inf bucket
    catches overflow, so ``counts`` has ``len(buckets) + 1`` entries.
    """

    __slots__ = ("name", "buckets", "counts", "_sum", "_count")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(f"histogram {name!r} needs >= 1 bucket")
        if any(nxt <= prev for prev, nxt in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} buckets must strictly ascend: {bounds}")
        self.name = name
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    def observe_many(self, value: float, n: int) -> None:
        """Record ``n`` identical observations in one call.

        Hot loops (the batched Newton driver observes one iteration
        count per converged sample) fold a whole batch into a single
        bucket update instead of ``n`` Python calls.
        """
        if n <= 0:
            return
        self.counts[bisect.bisect_left(self.buckets, value)] += n
        self._sum += value * n
        self._count += n

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def merge(self, counts: Sequence[int], total: float, count: int) -> None:
        """Fold another histogram's state (same buckets) into this one.

        Used when merging worker-process snapshots into the parent
        registry; a bucket-count mismatch means the two processes
        registered the instrument differently and is a hard error.
        """
        if len(counts) != len(self.counts):
            raise ConfigurationError(
                f"histogram {self.name!r} merge needs {len(self.counts)} "
                f"bucket counts, got {len(counts)}")
        for i, c in enumerate(counts):
            self.counts[i] += c
        self._sum += total
        self._count += count


class _NullCounter:
    """No-op counter handed out while instrumentation is disabled."""

    __slots__ = ()
    name = "<null>"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "<null>"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "<null>"
    buckets: Tuple[float, ...] = ()
    counts: List[int] = []
    count = 0
    sum = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, value: float, n: int) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instruments, created on first use.

    A name is bound to exactly one instrument kind for the registry's
    lifetime; asking for the same name as a different kind (or a
    histogram with different buckets) raises
    :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors ------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_unbound(name, self._counters)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_unbound(name, self._gauges)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_unbound(name, self._histograms)
            instrument = self._histograms[name] = Histogram(
                name, buckets if buckets is not None else DEFAULT_BUCKETS)
        elif (buckets is not None
              and tuple(float(b) for b in buckets) != instrument.buckets):
            raise ConfigurationError(
                f"histogram {name!r} already registered with buckets "
                f"{instrument.buckets}")
        return instrument

    def _check_unbound(self, name: str, own_kind: Dict[str, object]) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own_kind and name in kind:
                raise ConfigurationError(
                    f"metric name {name!r} already bound to another kind")

    # -- introspection -------------------------------------------------------

    def names(self) -> Iterable[str]:
        yield from self._counters
        yield from self._gauges
        yield from self._histograms

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Serialisable view of every instrument's current state."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        The parallel sweep executor ships each worker's registry back
        as a snapshot and merges them here in completion order:
        counters accumulate, histograms merge bucket-wise (mismatched
        buckets raise), and gauges take the snapshot's value
        (last-write-wins, like sequential execution would).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, state in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, state["buckets"])
            histogram.merge(state["counts"], state["sum"], state["count"])

    def reset(self) -> None:
        """Drop every instrument (tests call this between cases)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class NullRegistry:
    """Registry twin whose instruments discard everything.

    Returned by :func:`repro.obs.metrics` while instrumentation is
    disabled, so call sites never branch — they always fetch and update
    an instrument, and the disabled path costs two no-op calls.
    """

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def names(self) -> Iterable[str]:
        return ()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        pass


NULL_REGISTRY = NullRegistry()
