"""Live sweep progress: rate, ETA and failure counts on stderr.

Long sweeps (``repro mc --jobs 8``, ``repro optimize --jobs 4``) used
to be silent until done.  :class:`SweepProgress` renders a single
self-overwriting status line::

    mc:  1337/10000  412.3/s  eta 21s  failures 2

It is deliberately dumb and cheap: the sweep harnesses call
:meth:`advance` once per merged item, and the reporter re-renders at
most every ``min_interval`` seconds.  By default the line only appears
when the stream is a TTY (CI logs stay clean); ``enabled=True`` forces
it (the ``--progress`` flag), ``enabled=False`` silences it.

The counts come from the parent's deterministic ordered merge — the
executor forwards worker results (and their telemetry) in submission
order — so the progress line never observes a state the final
:class:`~repro.checkpoint.SweepOutcome` would not.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Optional, TextIO


class SweepProgress:
    """Single-line progress reporter for keyed sweeps."""

    def __init__(self, total: int, label: str = "sweep",
                 stream: Optional[TextIO] = None,
                 enabled: Optional[bool] = None,
                 min_interval: float = 0.2) -> None:
        self.total = max(0, int(total))
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            enabled = bool(getattr(self.stream, "isatty", lambda: False)())
        self.enabled = enabled
        self.min_interval = min_interval
        self.completed = 0
        self.failed = 0
        self.restored = 0
        self._started = time.monotonic()
        self._last_render = 0.0
        self._line_open = False

    # -- accounting ------------------------------------------------------------

    def note_restored(self, count: int) -> None:
        """Items already done (checkpoint resume) — excluded from rate."""
        self.restored += count
        self.completed += count
        self.render()

    def advance(self, completed: int = 0, failed: int = 0) -> None:
        """Record merged items; re-renders the line when due."""
        self.completed += completed
        self.failed += failed
        self.render()

    # -- rendering -------------------------------------------------------------

    def _rate(self) -> float:
        fresh = (self.completed - self.restored) + self.failed
        elapsed = time.monotonic() - self._started
        return fresh / elapsed if elapsed > 0 and fresh > 0 else 0.0

    def _eta_seconds(self) -> Optional[float]:
        rate = self._rate()
        if rate <= 0:
            return None
        remaining = self.total - self.completed - self.failed
        return max(0.0, remaining / rate)

    def status_line(self) -> str:
        parts = [f"{self.label}: {self.completed:>4}/{self.total}"]
        rate = self._rate()
        if rate > 0:
            parts.append(f"{rate:.1f}/s")
        eta = self._eta_seconds()
        if eta is not None:
            parts.append(f"eta {_format_seconds(eta)}")
        if self.failed:
            parts.append(f"failures {self.failed}")
        return "  ".join(parts)

    def render(self, force: bool = False) -> None:
        if not self.enabled:
            return
        now = time.monotonic()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        self.stream.write("\r\x1b[2K" + self.status_line())
        self.stream.flush()
        self._line_open = True

    def finish(self) -> None:
        """Final render plus the newline that releases the line."""
        if not self.enabled:
            return
        self.render(force=True)
        if self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False


class BatchSampleProgress:
    """Adapt a per-item reporter to per-*sample* counts for ``--batch``.

    When each sweep item is a whole batch of Monte-Carlo samples, the
    executor's one-``advance``-per-merged-item contract would make the
    rate/ETA line count *batches*.  This adapter sits between the sweep
    and a :class:`SweepProgress` built with ``total=samples``: items
    arrive in submission order (the executor's ordered-merge promise),
    so the ``k``-th advance corresponds to the ``k``-th batch and is
    forwarded scaled by that batch's known sample count.

    A batch that comes back *failed* at the item level (worker crash)
    marks all of its samples failed.  Per-sample failures hidden inside
    a successfully returned batch are reconciled by the caller's final
    accounting, not the live line — the line may briefly overcount
    completions by at most one batch's worth.
    """

    def __init__(self, inner: SweepProgress,
                 sizes: "list[int]") -> None:
        self._inner = inner
        self._sizes = list(sizes)
        self._index = 0

    def _next_size(self) -> int:
        size = (self._sizes[self._index]
                if self._index < len(self._sizes) else 1)
        self._index += 1
        return size

    def note_restored(self, count: int) -> None:
        """``count`` leading items already done (restores are a prefix
        of the submission order in the sequential MC schema)."""
        samples = sum(self._sizes[:count])
        self._index = count
        self._inner.note_restored(samples)

    def advance(self, completed: int = 0, failed: int = 0) -> None:
        for _ in range(completed):
            self._inner.advance(completed=self._next_size())
        for _ in range(failed):
            self._inner.advance(failed=self._next_size())


def _format_seconds(seconds: float) -> str:
    if seconds < 90:
        return f"{seconds:.0f}s"
    if seconds < 5400:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def progress_for_args(args: Any, total: int, label: str) -> SweepProgress:
    """Build the CLI's progress reporter from parsed arguments.

    ``--progress`` forces the line on; without it the reporter
    auto-enables only on a TTY stderr.
    """
    forced = bool(getattr(args, "progress", False))
    return SweepProgress(total=total, label=label,
                         enabled=True if forced else None)
