"""Live sweep progress: rate, ETA and failure counts on stderr.

Long sweeps (``repro mc --jobs 8``, ``repro optimize --jobs 4``) used
to be silent until done.  :class:`SweepProgress` renders a single
self-overwriting status line::

    mc:  1337/10000  412.3/s  eta 21s  failures 2

It is deliberately dumb and cheap: the sweep harnesses call
:meth:`advance` once per merged item, and the reporter re-renders at
most every ``min_interval`` seconds.  By default the line only appears
when the stream is a TTY (CI logs stay clean); ``enabled=True`` forces
it (the ``--progress`` flag), ``enabled=False`` silences it.

The counts come from the parent's deterministic ordered merge — the
executor forwards worker results (and their telemetry) in submission
order — so the progress line never observes a state the final
:class:`~repro.checkpoint.SweepOutcome` would not.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Optional, TextIO


class SweepProgress:
    """Single-line progress reporter for keyed sweeps."""

    def __init__(self, total: int, label: str = "sweep",
                 stream: Optional[TextIO] = None,
                 enabled: Optional[bool] = None,
                 min_interval: float = 0.2) -> None:
        self.total = max(0, int(total))
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            enabled = bool(getattr(self.stream, "isatty", lambda: False)())
        self.enabled = enabled
        self.min_interval = min_interval
        self.completed = 0
        self.failed = 0
        self.restored = 0
        self._started = time.monotonic()
        self._last_render = 0.0
        self._line_open = False

    # -- accounting ------------------------------------------------------------

    def note_restored(self, count: int) -> None:
        """Items already done (checkpoint resume) — excluded from rate."""
        self.restored += count
        self.completed += count
        self.render()

    def advance(self, completed: int = 0, failed: int = 0) -> None:
        """Record merged items; re-renders the line when due."""
        self.completed += completed
        self.failed += failed
        self.render()

    # -- rendering -------------------------------------------------------------

    def _rate(self) -> float:
        fresh = (self.completed - self.restored) + self.failed
        elapsed = time.monotonic() - self._started
        return fresh / elapsed if elapsed > 0 and fresh > 0 else 0.0

    def _eta_seconds(self) -> Optional[float]:
        rate = self._rate()
        if rate <= 0:
            return None
        remaining = self.total - self.completed - self.failed
        return max(0.0, remaining / rate)

    def status_line(self) -> str:
        parts = [f"{self.label}: {self.completed:>4}/{self.total}"]
        rate = self._rate()
        if rate > 0:
            parts.append(f"{rate:.1f}/s")
        eta = self._eta_seconds()
        if eta is not None:
            parts.append(f"eta {_format_seconds(eta)}")
        if self.failed:
            parts.append(f"failures {self.failed}")
        return "  ".join(parts)

    def render(self, force: bool = False) -> None:
        if not self.enabled:
            return
        now = time.monotonic()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        self.stream.write("\r\x1b[2K" + self.status_line())
        self.stream.flush()
        self._line_open = True

    def finish(self) -> None:
        """Final render plus the newline that releases the line."""
        if not self.enabled:
            return
        self.render(force=True)
        if self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False


def _format_seconds(seconds: float) -> str:
    if seconds < 90:
        return f"{seconds:.0f}s"
    if seconds < 5400:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def progress_for_args(args: Any, total: int, label: str) -> SweepProgress:
    """Build the CLI's progress reporter from parsed arguments.

    ``--progress`` forces the line on; without it the reporter
    auto-enables only on a TTY stderr.
    """
    forced = bool(getattr(args, "progress", False))
    return SweepProgress(total=total, label=label,
                         enabled=True if forced else None)
