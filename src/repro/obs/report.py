"""Run reports: one JSON document per instrumented run.

A run report bundles everything the instrumentation layer captured —
the span tree, the metrics snapshot, the structured event ring, the
decimated time series, and a fingerprint of the run's configuration —
into a single serialisable dict, so a benchmark result or a CLI
invocation can be archived, exported as a Chrome trace
(``repro obs export``) and diffed against later runs
(``repro obs diff``, ``python -m repro fig5 --profile --metrics-out
run.json``).

Schema history: 1 = spans + metrics (PR 1); 2 adds ``events``,
``timeseries`` and per-span ``start_s`` (spans without it still
export — the trace renderer synthesises a sequential layout).
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import platform
from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

#: Bumped whenever the report layout changes incompatibly.
REPORT_SCHEMA = 2


def config_fingerprint(config: Dict[str, Any]) -> str:
    """Stable short hash of a configuration mapping.

    Key order does not matter; values are canonicalised through JSON
    (falling back to ``repr`` for non-JSON types), so two runs with the
    same effective configuration share a fingerprint.
    """
    canonical = json.dumps(config, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def build_run_report(command: str, config: Dict[str, Any],
                     registry: MetricsRegistry,
                     tracer: Tracer,
                     events: Optional[Any] = None,
                     timeseries: Optional[Any] = None) -> Dict[str, Any]:
    """Assemble the serialisable report for one finished run.

    ``events`` (an :class:`~repro.obs.events.EventLog`) and
    ``timeseries`` (a :class:`~repro.obs.timeseries.TimeSeriesRecorder`)
    are optional for backward compatibility; without them the report
    carries empty ``events``/``timeseries`` sections.
    """
    from repro import __version__

    roots = tracer.finished_roots()
    report = {
        "schema": REPORT_SCHEMA,
        "command": command,
        "config": {key: _jsonable(value) for key, value in config.items()},
        "fingerprint": config_fingerprint(config),
        "repro_version": __version__,
        "python": platform.python_version(),
        "total_duration_s": sum(root.duration for root in roots),
        "span_count": tracer.total_spans(),
        "spans": tracer.to_dict(),
        "metrics": registry.snapshot(),
        "events": [] if events is None else [
            {key: _jsonable(value) for key, value in node.items()}
            for node in events.to_dicts()],
        "timeseries": {} if timeseries is None else timeseries.snapshot(),
    }
    if events is not None:
        report["event_count"] = events.emitted
        report["events_dropped"] = events.dropped
    return report


def write_run_report(path: "str | pathlib.Path", command: str,
                     config: Dict[str, Any],
                     registry: Optional[MetricsRegistry] = None,
                     tracer: Optional[Tracer] = None,
                     report: Optional[Dict[str, Any]] = None,
                     events: Optional[Any] = None,
                     timeseries: Optional[Any] = None
                     ) -> Dict[str, Any]:
    """Serialise the run report to ``path``; returns the report dict.

    Either pass ``registry`` + ``tracer`` (plus optional ``events`` and
    ``timeseries``) to build the report here, or a prebuilt ``report``
    dict (in which case they are ignored).  Missing parent directories
    are created; an unwritable path raises :class:`OSError`, which the
    CLI turns into a one-line diagnostic.
    """
    if report is None:
        if registry is None or tracer is None:
            raise ValueError("need registry and tracer, or a report")
        report = build_run_report(command, config, registry, tracer,
                                  events=events, timeseries=timeseries)
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2, default=repr) + "\n")
    return report


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)
