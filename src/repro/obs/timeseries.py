"""Low-overhead windowed time series with bounded-memory decimation.

A :class:`TimeSeries` records ``(t, value)`` samples from a hot loop —
Newton iterations per accepted timestep, the refresh simulator's
windowed busy fraction, the stamp plan's LU reuse ratio — while
guaranteeing that memory stays bounded no matter how long the run is:

* the series stores at most ``capacity`` points;
* when full it **decimates** — keeps every other stored point and
  doubles its acceptance stride, so future samples are recorded at half
  the previous rate.

A million-step run therefore ends with ~``capacity`` points spread
evenly over the whole run (log2 decimation passes), and summary
statistics (``count``/``min``/``max``/``sum``/``last``) are exact over
*every* sample, stored or not.

Like metrics, series live in a registry (:class:`TimeSeriesRecorder`)
fetched through :func:`repro.obs.timeseries`, which hands out no-op
twins while instrumentation is disabled — the hot-path cost of a
disabled sampler is one flag test plus a null method call, covered by
``benchmarks/test_obs_overhead.py``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Default per-series point budget (decimation triggers above it).
DEFAULT_CAPACITY = 256


class TimeSeries:
    """One named, bounded series of ``(t, value)`` samples."""

    __slots__ = ("name", "capacity", "points", "stride", "_skip",
                 "count", "_sum", "_min", "_max", "last")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 2:
            raise ConfigurationError(
                f"time series {name!r} capacity must be >= 2, "
                f"got {capacity}")
        self.name = name
        self.capacity = capacity
        self.points: List[Tuple[float, float]] = []
        self.stride = 1  # accept every stride-th sample
        self._skip = 0
        self.count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self.last: Optional[float] = None

    def sample(self, t: float, value: float) -> None:
        """Record one observation at time ``t`` (any monotonic axis)."""
        value = float(value)
        self.count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self.last = value
        self._skip += 1
        if self._skip < self.stride:
            return
        self._skip = 0
        self.points.append((float(t), value))
        if len(self.points) >= self.capacity:
            self._decimate()

    def _decimate(self) -> None:
        """Halve the stored resolution; double the acceptance stride."""
        self.points = self.points[::2]
        self.stride *= 2

    # -- statistics ------------------------------------------------------------

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    # -- serialisation ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "stride": self.stride,
            "count": self.count,
            "sum": self._sum,
            "min": self.min,
            "max": self.max,
            "last": self.last,
            "points": [[t, v] for t, v in self.points],
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another series' snapshot into this one.

        Stored points are appended in the order given (the executor
        merges workers in submission order, keeping the result
        deterministic), then re-decimated down to ``capacity``; the
        summary statistics merge exactly.  ``last`` takes the
        snapshot's value — last-write-wins, like gauges.
        """
        count = int(snapshot.get("count", 0))
        if count == 0:
            return
        self.count += count
        self._sum += float(snapshot.get("sum", 0.0))
        self._min = min(self._min, float(snapshot["min"]))
        self._max = max(self._max, float(snapshot["max"]))
        if snapshot.get("last") is not None:
            self.last = float(snapshot["last"])
        self.stride = max(self.stride, int(snapshot.get("stride", 1)))
        for t, v in snapshot.get("points", []):
            self.points.append((float(t), float(v)))
        while len(self.points) >= self.capacity:
            self._decimate()


class TimeSeriesRecorder:
    """Named time series, created on first use (like metrics)."""

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}

    def series(self, name: str,
               capacity: Optional[int] = None) -> TimeSeries:
        instance = self._series.get(name)
        if instance is None:
            instance = self._series[name] = TimeSeries(
                name, capacity if capacity is not None else DEFAULT_CAPACITY)
        elif capacity is not None and capacity != instance.capacity:
            raise ConfigurationError(
                f"time series {name!r} already registered with capacity "
                f"{instance.capacity}")
        return instance

    def names(self) -> Iterable[str]:
        yield from self._series

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Serialisable view of every series (sorted by name)."""
        return {name: series.snapshot()
                for name, series in sorted(self._series.items())}

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` from another recorder into this one."""
        for name, state in snapshot.items():
            self.series(name, state.get("capacity")).merge(state)

    def reset(self) -> None:
        self._series.clear()


class _NullTimeSeries:
    """Shared no-op series handed out while instrumentation is off."""

    __slots__ = ()
    name = "<null>"
    capacity = 0
    stride = 1
    points: List[Tuple[float, float]] = []
    count = 0
    sum = 0.0
    mean = 0.0
    min = 0.0
    max = 0.0
    last = None

    def sample(self, t: float, value: float) -> None:
        pass


class NullTimeSeriesRecorder:
    """Recorder twin whose series discard everything."""

    def series(self, name: str,
               capacity: Optional[int] = None) -> _NullTimeSeries:
        return _NULL_SERIES

    def names(self) -> Iterable[str]:
        return ()

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {}

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        pass

    def reset(self) -> None:
        pass


_NULL_SERIES = _NullTimeSeries()
NULL_TIMESERIES = NullTimeSeriesRecorder()
