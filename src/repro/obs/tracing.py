"""Span-based tracing: nested wall-time regions via context managers.

A span is one timed region of a run::

    with span("newton.solve", circuit="senseamp"):
        ...

Spans nest: a span opened while another is active becomes its child,
so a whole run folds into a tree (``Tracer.finished_roots``).  Wall
time comes from :func:`time.perf_counter`; a span that exits via an
exception is still closed (and tagged with the exception type), so the
tree stays consistent under failures.

When instrumentation is disabled, :func:`repro.obs.span` returns the
module-level :data:`NOOP_SPAN` singleton instead of touching any
tracer — the disabled path is one flag test plus an empty ``with``
block, which is what keeps the overhead below the benchmarked bound
(``benchmarks/test_obs_overhead.py``).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.units import ms as _MS


class Span:
    """One timed region; a node of the run's span tree."""

    __slots__ = ("name", "attrs", "children", "start", "duration", "error",
                 "_tracer")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List[Span] = []
        self.start = 0.0
        self.duration = 0.0
        self.error: Optional[str] = None
        self._tracer = tracer

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        if exc_type is not None:
            self.error = exc_type.__name__
        self._tracer._pop(self)
        return False  # never swallow the exception

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        node: Dict[str, Any] = {
            "name": self.name,
            "start_s": self.start,
            "duration_s": self.duration,
        }
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.error is not None:
            node["error"] = self.error
        if self.children:
            node["children"] = [c.to_dict() for c in self.children]
        return node

    def total_spans(self) -> int:
        return 1 + sum(c.total_spans() for c in self.children)

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for the first span named ``name``."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None


class Tracer:
    """Owns the active span stack and the finished root spans."""

    def __init__(self) -> None:
        self._stack: List[Span] = []
        self._roots: List[Span] = []

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs)

    # -- stack maintenance (called by Span.__enter__/__exit__) ---------------

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate a corrupted stack (a span closed twice) rather than
        # masking the caller's exception with an internal one.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
            if not self._stack:
                self._roots.append(span)

    # -- introspection --------------------------------------------------------

    @property
    def active(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def finished_roots(self) -> List[Span]:
        return list(self._roots)

    def total_spans(self) -> int:
        return sum(root.total_spans() for root in self._roots)

    def to_dict(self) -> List[Dict[str, Any]]:
        return [root.to_dict() for root in self._roots]

    def reset(self) -> None:
        self._stack.clear()
        self._roots.clear()


class _NoopSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()
    name = "<noop>"
    duration = 0.0
    error = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


def format_span_tree(roots: List[Span]) -> str:
    """Indented text rendering of a span forest (the --profile view)."""
    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        attrs = ""
        if span.attrs:
            attrs = " " + " ".join(f"{k}={v}" for k, v in span.attrs.items())
        error = f" !{span.error}" if span.error else ""
        lines.append(f"{'  ' * depth}{span.name:<{max(1, 40 - 2 * depth)}}"
                     f"{span.duration / _MS:10.3f} ms{attrs}{error}")
        for child in span.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
