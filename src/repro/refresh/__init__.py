"""Cycle-level refresh/access interference simulation (paper Fig. 5).

The paper's localized refresh turns refresh from a whole-memory stall
into a per-local-block affair that runs concurrently with accesses to
other blocks.  This package quantifies the difference:

* :mod:`repro.refresh.traces` — access-stream generators,
* :mod:`repro.refresh.controller` — monoblock vs localized refresh
  scheduling policies,
* :mod:`repro.refresh.simulator` — the cycle-accurate simulator that
  produces the busy-cycle percentages of Fig. 5.
"""

from repro.refresh.traces import (
    uniform_random_trace,
    bursty_trace,
    sequential_trace,
    hot_block_trace,
)
from repro.refresh.controller import (
    RefreshPolicy,
    MonoblockRefresh,
    LocalizedRefresh,
    RefreshOperation,
)
from repro.refresh.simulator import (
    RefreshSimulator,
    SimulationStats,
    analytic_busy_fraction,
)
from repro.refresh.adaptive import (
    TemperatureAdaptiveRefresh,
    RefreshBin,
    BinnedRefreshPlan,
    plan_binned_refresh,
)

__all__ = [
    "uniform_random_trace",
    "bursty_trace",
    "sequential_trace",
    "hot_block_trace",
    "RefreshPolicy",
    "MonoblockRefresh",
    "LocalizedRefresh",
    "RefreshOperation",
    "RefreshSimulator",
    "SimulationStats",
    "analytic_busy_fraction",
    "TemperatureAdaptiveRefresh",
    "RefreshBin",
    "BinnedRefreshPlan",
    "plan_binned_refresh",
]
