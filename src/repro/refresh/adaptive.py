"""Adaptive refresh extensions (the paper's future-work direction).

The paper refreshes the whole matrix at the single worst cell's rate —
"very conservative" by its own admission.  Two standard refinements are
implemented here, both enabled by the localized-refresh architecture
(per-block refresh is exactly what Fig. 4 makes cheap):

* :class:`TemperatureAdaptiveRefresh` — the refresh period tracks the
  die temperature through the retention derating (junction leakage
  doubles every ~10 K), instead of sitting at the hot worst case.
* :func:`plan_binned_refresh` — RAIDR-style retention binning: each
  local block is refreshed at a rate set by *its own* worst cell,
  quantised to power-of-two multiples of the base period.  Because the
  worst cell of the whole matrix is an extreme-tail event, most blocks
  can refresh far less often.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.variability.retention import RetentionModel
from repro.units import pJ


@dataclasses.dataclass(frozen=True)
class TemperatureAdaptiveRefresh:
    """Temperature-tracking refresh period.

    Parameters
    ----------
    base_retention:
        Worst-case retention at ``base_temperature``, seconds.
    base_temperature:
        Temperature of the calibration point, kelvin.
    doubling_interval:
        Kelvins of temperature rise that halve retention (~10 K for
        junction-dominated leakage).
    guard:
        Refresh-period guard band below the retention.
    """

    base_retention: float
    base_temperature: float = 300.0
    doubling_interval: float = 10.0
    guard: float = 2.0

    def __post_init__(self) -> None:
        if self.base_retention <= 0:
            raise ConfigurationError("base retention must be positive")
        if self.doubling_interval <= 0:
            raise ConfigurationError("doubling interval must be positive")
        if self.guard < 1.0:
            raise ConfigurationError("guard must be >= 1")

    def retention_at(self, temperature: float) -> float:
        """Worst-case retention at ``temperature``, seconds."""
        delta = temperature - self.base_temperature
        return self.base_retention * 2.0 ** (-delta / self.doubling_interval)

    def refresh_period_at(self, temperature: float) -> float:
        """Refresh period the controller programs at ``temperature``."""
        return self.retention_at(temperature) / self.guard

    def power_saving_vs_fixed(self, temperature: float,
                              fixed_worst_temperature: float) -> float:
        """Refresh-power ratio fixed-worst-case / adaptive (>= 1).

        A fixed controller must assume ``fixed_worst_temperature``; the
        adaptive one refreshes at the actual temperature's rate.
        """
        if temperature > fixed_worst_temperature:
            raise ConfigurationError(
                "operating temperature exceeds the fixed design point")
        fixed = self.refresh_period_at(fixed_worst_temperature)
        adaptive = self.refresh_period_at(temperature)
        return adaptive / fixed


@dataclasses.dataclass(frozen=True)
class RefreshBin:
    """One retention bin of the binned-refresh plan."""

    period: float  # seconds between refreshes of blocks in this bin
    block_count: int

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError("bin period must be positive")
        if self.block_count < 0:
            raise ConfigurationError("bin block count must be >= 0")


@dataclasses.dataclass(frozen=True)
class BinnedRefreshPlan:
    """Outcome of retention binning over a matrix."""

    bins: List[RefreshBin]
    rows_per_block: int
    base_period: float
    uniform_period: float  # what a single worst-case controller would use

    def __post_init__(self) -> None:
        if not self.bins:
            raise ConfigurationError("plan needs at least one bin")

    @property
    def n_blocks(self) -> int:
        return sum(b.block_count for b in self.bins)

    def refresh_power(self, row_energy: float) -> float:
        """Total refresh power under the plan, watts.

        ``row_energy`` is the energy of one row refresh, joules.
        """
        if row_energy <= 0:
            raise ConfigurationError("row energy must be positive")
        return sum(
            bin_.block_count * self.rows_per_block * row_energy / bin_.period
            for bin_ in self.bins
        )

    def uniform_power(self, row_energy: float) -> float:
        """Refresh power of the paper's uniform worst-case scheme.

        ``row_energy`` is the energy of one row refresh, joules.
        """
        if row_energy <= 0:
            raise ConfigurationError("row energy must be positive")
        rows = self.n_blocks * self.rows_per_block
        return rows * row_energy / self.uniform_period

    def saving_factor(self, row_energy: float = 1 * pJ) -> float:
        """uniform / binned refresh power (>= 1 when binning helps).

        The ratio is independent of ``row_energy`` (joules); the
        default only has to be positive.
        """
        return self.uniform_power(row_energy) / self.refresh_power(row_energy)


def plan_binned_refresh(retention: RetentionModel,
                        n_blocks: int,
                        rows_per_block: int,
                        word_bits: int = 32,
                        n_bins: int = 4,
                        guard: float = 2.0,
                        seed: int = 0) -> BinnedRefreshPlan:
    """Build a RAIDR-style binned refresh plan for one matrix.

    Samples the retention of every cell (``rows_per_block * word_bits``
    per block), takes each block's worst cell, and assigns the block the
    longest power-of-two multiple of the base period that still clears
    its guard-banded worst retention.  The base period is the
    guard-banded matrix-wide worst case (bin 0 = the paper's uniform
    rate).
    """
    if n_blocks < 1 or rows_per_block < 1 or word_bits < 1:
        raise ConfigurationError("matrix dimensions must be >= 1")
    if n_bins < 1:
        raise ConfigurationError("need at least one bin")
    if guard < 1.0:
        raise ConfigurationError("guard must be >= 1")

    rng = np.random.default_rng(seed)
    cells_per_block = rows_per_block * word_bits
    samples = retention.sample_many(rng, n_blocks * cells_per_block)
    per_block_worst = samples.reshape(n_blocks, cells_per_block).min(axis=1)

    matrix_worst = float(per_block_worst.min())
    base_period = matrix_worst / guard

    counts = [0] * n_bins
    for worst in per_block_worst:
        allowed = worst / guard
        index = int(math.floor(math.log2(max(allowed / base_period, 1.0))))
        counts[min(index, n_bins - 1)] += 1

    bins = [RefreshBin(period=base_period * 2.0 ** i, block_count=c)
            for i, c in enumerate(counts)]
    return BinnedRefreshPlan(
        bins=bins,
        rows_per_block=rows_per_block,
        base_period=base_period,
        uniform_period=base_period,
    )
