"""Refresh scheduling policies.

All rows must be refreshed once per refresh period.  The scheduler
spreads the row refreshes evenly (distributed refresh — the standard
scheme).  The two policies differ in *what an ongoing refresh blocks*:

* :class:`MonoblockRefresh` — the conventional organization: a refresh
  occupies the whole matrix; every concurrent access stalls.
* :class:`LocalizedRefresh` — the paper's scheme (Fig. 4): a refresh is
  internal to one local block; only accesses to that block stall.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class RefreshOperation:
    """One scheduled row refresh."""

    start_cycle: int
    duration: int  # cycles
    block: int | None  # None = whole memory blocked

    @property
    def end_cycle(self) -> int:
        return self.start_cycle + self.duration

    def blocks_access(self, cycle: int, target_block: int) -> bool:
        """Does this refresh stall an access to ``target_block`` now?"""
        if not self.start_cycle <= cycle < self.end_cycle:
            return False
        return self.block is None or self.block == target_block


@dataclasses.dataclass(frozen=True)
class RefreshPolicy:
    """Base distributed-refresh schedule.

    Parameters
    ----------
    n_blocks / rows_per_block:
        Matrix organization (128 blocks x 32 rows for the 128 kb DRAM).
    refresh_period_cycles:
        Every row must be refreshed once per this many cycles
        (= retention / guard band x clock frequency).
    refresh_duration_cycles:
        Cycles one row refresh occupies its victim (2 at 500 MHz: the
        local read + write-back of paper Fig. 4).
    """

    n_blocks: int
    rows_per_block: int
    refresh_period_cycles: int
    refresh_duration_cycles: int = 2

    def __post_init__(self) -> None:
        if self.n_blocks < 1 or self.rows_per_block < 1:
            raise ConfigurationError("organization sizes must be >= 1")
        if self.refresh_period_cycles < 1:
            raise ConfigurationError("refresh period must be >= 1 cycle")
        if self.refresh_duration_cycles < 1:
            raise ConfigurationError("refresh duration must be >= 1 cycle")

    @property
    def total_rows(self) -> int:
        return self.n_blocks * self.rows_per_block

    @property
    def interval_cycles(self) -> float:
        """Cycles between consecutive row refreshes (may be < 1:
        refreshes then overlap back-to-back and the memory saturates)."""
        return self.refresh_period_cycles / self.total_rows

    def refresh_starting_at(self, index: int) -> RefreshOperation:
        """The ``index``-th row refresh of the schedule."""
        start = int(round(index * self.interval_cycles))
        row = index % self.total_rows
        return RefreshOperation(
            start_cycle=start,
            duration=self.refresh_duration_cycles,
            block=self._blocked_scope(row),
        )

    def _blocked_scope(self, row: int) -> int | None:
        raise NotImplementedError

    def utilisation(self) -> float:
        """Fraction of time the *victim scope* spends refreshing."""
        return min(1.0, self.refresh_duration_cycles / self.interval_cycles)


@dataclasses.dataclass(frozen=True)
class MonoblockRefresh(RefreshPolicy):
    """Refresh blocks the entire memory (conventional DRAM)."""

    def _blocked_scope(self, row: int) -> int | None:
        return None


@dataclasses.dataclass(frozen=True)
class LocalizedRefresh(RefreshPolicy):
    """Refresh blocks only the local block holding the row (the paper).

    Rows are walked block-major (all rows of block 0, then block 1, ...)
    so consecutive refreshes mostly stay in one block — the pattern that
    maximises the window other blocks stay accessible.
    """

    def _blocked_scope(self, row: int) -> int | None:
        return row // self.rows_per_block
