"""Cycle-accurate refresh/access interference simulator (paper Fig. 5).

The memory is single-ported per local block.  Each trace cycle may issue
one access; if the targeted scope is refreshing, the access stalls (it
and everything behind it wait — an in-order memory port).  The reported
``busy_fraction`` is the fraction of cycles lost to refresh-induced
stalls, the paper's "percentage of busy cycles due to refresh".

``analytic_busy_fraction`` gives the closed-form expectation for uniform
random traffic; tests cross-check the simulator against it.
"""

from __future__ import annotations

import dataclasses
import logging

import numpy as np

from repro import obs
from repro.errors import ConfigurationError, SimulationError
from repro.refresh.controller import RefreshOperation, RefreshPolicy
from repro.refresh.traces import IDLE

_log = logging.getLogger(__name__)

#: Cycles per busy-fraction telemetry sample (window width).  Wide
#: enough that the enabled-path sampler call amortises to noise over
#: the cycle loop; the series' own decimation bounds memory after that.
_BUSY_SAMPLE_WINDOW = 4096


@dataclasses.dataclass(frozen=True)
class SimulationStats:
    """Outcome of one refresh-interference simulation.

    The fault counters stay zero for a healthy policy; they fill in
    when the policy is a
    :class:`~repro.faults.injector.FaultyRefreshPolicy`.  A dropped
    refresh never restores its row, so every one is also a data-loss
    event (the row decays past the readable margin before its next
    slot).
    """

    total_cycles: int
    accesses: int
    completed: int
    stall_cycles: int
    refreshes_issued: int
    dropped_refreshes: int = 0
    late_refreshes: int = 0
    data_loss_events: int = 0

    @property
    def busy_fraction(self) -> float:
        """Fraction of all cycles lost to refresh stalls.

        An empty simulation (zero cycles) is defined as 0.0 busy, not a
        division error:

        >>> SimulationStats(total_cycles=0, accesses=0, completed=0,
        ...                 stall_cycles=0, refreshes_issued=0).busy_fraction
        0.0
        >>> SimulationStats(total_cycles=100, accesses=50, completed=50,
        ...                 stall_cycles=25, refreshes_issued=3).busy_fraction
        0.25
        """
        if self.total_cycles == 0:
            return 0.0
        return self.stall_cycles / self.total_cycles

    @property
    def access_delay_ratio(self) -> float:
        """Average extra cycles per access due to refresh.

        An idle trace (zero accesses) experiences no delay by
        definition, even if refreshes were issued:

        >>> SimulationStats(total_cycles=100, accesses=0, completed=0,
        ...                 stall_cycles=0, refreshes_issued=5
        ...                 ).access_delay_ratio
        0.0
        >>> SimulationStats(total_cycles=100, accesses=10, completed=10,
        ...                 stall_cycles=5, refreshes_issued=3
        ...                 ).access_delay_ratio
        0.5
        """
        if self.accesses == 0:
            return 0.0
        return self.stall_cycles / self.accesses


@dataclasses.dataclass(frozen=True)
class RefreshSimulator:
    """Runs a trace against a refresh policy."""

    policy: RefreshPolicy

    def run(self, trace: np.ndarray) -> SimulationStats:
        """Simulate ``trace`` and count refresh-induced stall cycles.

        The access stream is in order: a stalled access keeps retrying
        on subsequent cycles and pushes later trace accesses back.
        """
        if trace.ndim != 1:
            raise SimulationError("trace must be one-dimensional")
        policy = self.policy
        scope = type(policy).__name__
        with obs.span("refresh.run", policy=scope,
                      n_blocks=policy.n_blocks, cycles=len(trace)):
            stats = self._run(trace)
        m = obs.metrics()
        m.counter("refresh.runs").inc()
        m.counter("refresh.stall_cycles").inc(stats.stall_cycles)
        m.counter("refresh.refreshes_issued").inc(stats.refreshes_issued)
        m.counter("refresh.accesses").inc(stats.accesses)
        m.counter("refresh.completed").inc(stats.completed)
        m.gauge(f"refresh.busy_fraction.{scope}").set(stats.busy_fraction)
        if stats.dropped_refreshes or stats.late_refreshes:
            m.counter("refresh.dropped").inc(stats.dropped_refreshes)
            m.counter("refresh.late").inc(stats.late_refreshes)
            m.counter("refresh.data_loss_events").inc(
                stats.data_loss_events)
        _log.debug("refresh run (%s): %d cycles, %d stalls, %d refreshes",
                   scope, stats.total_cycles, stats.stall_cycles,
                   stats.refreshes_issued)
        return stats

    def _run(self, trace: np.ndarray) -> SimulationStats:
        policy = self.policy
        n_cycles = len(trace)
        pending = [int(b) for b in trace if b != IDLE]
        arrival = [i for i, b in enumerate(trace) if b != IDLE]
        if any(not 0 <= b < policy.n_blocks for b in pending):
            raise SimulationError("trace targets a block outside the matrix")

        fault_kind = getattr(policy, "fault_kind", None)
        refresh_index = 0
        active: RefreshOperation | None = None
        stall_cycles = 0
        completed = 0
        dropped = 0
        late = 0
        queue_pos = 0
        cycle = 0
        # Hoisted once per run: the disabled path pays one None check
        # per cycle, never a sampler call.
        if obs.is_enabled():
            busy_series = obs.timeseries().series("refresh.busy_fraction")
        else:
            busy_series = None
        window_stalls = 0
        next_sample = _BUSY_SAMPLE_WINDOW
        # The simulation must drain the queue even past the trace end.
        horizon = n_cycles + 10 * policy.refresh_duration_cycles * (
            1 + len(pending))
        while queue_pos < len(pending) and cycle < horizon:
            if busy_series is not None and cycle >= next_sample:
                busy_series.sample(
                    cycle,
                    (stall_cycles - window_stalls) / _BUSY_SAMPLE_WINDOW)
                window_stalls = stall_cycles
                next_sample += _BUSY_SAMPLE_WINDOW
            # Advance the refresh schedule.
            next_op = policy.refresh_starting_at(refresh_index)
            if active is not None and cycle >= active.end_cycle:
                active = None
            if active is None and cycle >= next_op.start_cycle:
                active = next_op
                if fault_kind is not None:
                    kind = fault_kind(refresh_index)
                    if kind == "drop":
                        dropped += 1
                        obs.event("refresh.dropped", index=refresh_index,
                                  cycle=cycle)
                    elif kind == "late":
                        late += 1
                        obs.event("refresh.late_start", index=refresh_index,
                                  cycle=cycle)
                refresh_index += 1
            # Serve the head access if it has arrived.
            if arrival[queue_pos] > cycle:
                cycle += 1
                continue
            block = pending[queue_pos]
            if active is not None and active.blocks_access(cycle, block):
                stall_cycles += 1
            else:
                completed += 1
                queue_pos += 1
            cycle += 1
        if queue_pos < len(pending):
            raise SimulationError(
                "memory saturated: refresh load exceeds available cycles "
                f"(period {policy.refresh_period_cycles} cycles for "
                f"{policy.total_rows} rows)"
            )
        return SimulationStats(
            total_cycles=max(n_cycles, cycle),
            accesses=len(pending),
            completed=completed,
            stall_cycles=stall_cycles,
            refreshes_issued=refresh_index,
            dropped_refreshes=dropped,
            late_refreshes=late,
            # A dropped refresh never restores its row: the stored
            # level decays past the readable margin before the next
            # slot, so every drop is one data-loss event.
            data_loss_events=dropped,
        )


def analytic_busy_fraction(policy: RefreshPolicy, activity: float) -> float:
    """Expected busy fraction under uniform random traffic.

    The victim scope is refreshing a fraction ``u`` of the time
    (``policy.utilisation``).  A random access collides with probability
    ``u`` (monoblock) or ``u / n_blocks`` (localized: it must also hit
    the refreshed block).  Each collision costs about half a refresh
    duration of stalling.
    """
    if not 0.0 <= activity <= 1.0:
        raise ConfigurationError("activity must lie in [0, 1]")
    utilisation = policy.utilisation()
    hit_probability = utilisation
    scope_blocks = policy.n_blocks
    blocked_whole_memory = policy.refresh_starting_at(0).block is None
    if not blocked_whole_memory:
        hit_probability = utilisation / scope_blocks
    mean_stall = 0.5 * policy.refresh_duration_cycles
    return activity * hit_probability * mean_stall
