"""Cycle-accurate refresh/access interference simulator (paper Fig. 5).

The memory is single-ported per local block.  Each trace cycle may issue
one access; if the targeted scope is refreshing, the access stalls (it
and everything behind it wait — an in-order memory port).  The reported
``busy_fraction`` is the fraction of cycles lost to refresh-induced
stalls, the paper's "percentage of busy cycles due to refresh".

``analytic_busy_fraction`` gives the closed-form expectation for uniform
random traffic; tests cross-check the simulator against it.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.refresh.controller import RefreshOperation, RefreshPolicy
from repro.refresh.traces import IDLE


@dataclasses.dataclass(frozen=True)
class SimulationStats:
    """Outcome of one refresh-interference simulation."""

    total_cycles: int
    accesses: int
    completed: int
    stall_cycles: int
    refreshes_issued: int

    @property
    def busy_fraction(self) -> float:
        """Fraction of all cycles lost to refresh stalls."""
        if self.total_cycles == 0:
            return 0.0
        return self.stall_cycles / self.total_cycles

    @property
    def access_delay_ratio(self) -> float:
        """Average extra cycles per access due to refresh."""
        if self.accesses == 0:
            return 0.0
        return self.stall_cycles / self.accesses


@dataclasses.dataclass(frozen=True)
class RefreshSimulator:
    """Runs a trace against a refresh policy."""

    policy: RefreshPolicy

    def run(self, trace: np.ndarray) -> SimulationStats:
        """Simulate ``trace`` and count refresh-induced stall cycles.

        The access stream is in order: a stalled access keeps retrying
        on subsequent cycles and pushes later trace accesses back.
        """
        if trace.ndim != 1:
            raise SimulationError("trace must be one-dimensional")
        policy = self.policy
        n_cycles = len(trace)
        pending = [int(b) for b in trace if b != IDLE]
        arrival = [i for i, b in enumerate(trace) if b != IDLE]
        if any(not 0 <= b < policy.n_blocks for b in pending):
            raise SimulationError("trace targets a block outside the matrix")

        refresh_index = 0
        active: RefreshOperation | None = None
        stall_cycles = 0
        completed = 0
        queue_pos = 0
        cycle = 0
        # The simulation must drain the queue even past the trace end.
        horizon = n_cycles + 10 * policy.refresh_duration_cycles * (
            1 + len(pending))
        while queue_pos < len(pending) and cycle < horizon:
            # Advance the refresh schedule.
            next_op = policy.refresh_starting_at(refresh_index)
            if active is not None and cycle >= active.end_cycle:
                active = None
            if active is None and cycle >= next_op.start_cycle:
                active = next_op
                refresh_index += 1
            # Serve the head access if it has arrived.
            if arrival[queue_pos] > cycle:
                cycle += 1
                continue
            block = pending[queue_pos]
            if active is not None and active.blocks_access(cycle, block):
                stall_cycles += 1
            else:
                completed += 1
                queue_pos += 1
            cycle += 1
        if queue_pos < len(pending):
            raise SimulationError(
                "memory saturated: refresh load exceeds available cycles "
                f"(period {policy.refresh_period_cycles} cycles for "
                f"{policy.total_rows} rows)"
            )
        return SimulationStats(
            total_cycles=max(n_cycles, cycle),
            accesses=len(pending),
            completed=completed,
            stall_cycles=stall_cycles,
            refreshes_issued=refresh_index,
        )


def analytic_busy_fraction(policy: RefreshPolicy, activity: float) -> float:
    """Expected busy fraction under uniform random traffic.

    The victim scope is refreshing a fraction ``u`` of the time
    (``policy.utilisation``).  A random access collides with probability
    ``u`` (monoblock) or ``u / n_blocks`` (localized: it must also hit
    the refreshed block).  Each collision costs about half a refresh
    duration of stalling.
    """
    if not 0.0 <= activity <= 1.0:
        raise ConfigurationError("activity must lie in [0, 1]")
    utilisation = policy.utilisation()
    hit_probability = utilisation
    scope_blocks = policy.n_blocks
    blocked_whole_memory = policy.refresh_starting_at(0).block is None
    if not blocked_whole_memory:
        hit_probability = utilisation / scope_blocks
    mean_stall = 0.5 * policy.refresh_duration_cycles
    return activity * hit_probability * mean_stall
