"""Access-stream generators for the refresh simulator.

A trace is an integer numpy array, one entry per clock cycle: the local
block targeted by the access issued that cycle, or ``IDLE`` (-1) for no
access.  The paper's Fig. 5 uses random accesses; the other generators
exist to probe the policies under less friendly traffic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

IDLE = -1


def _check(n_cycles: int, n_blocks: int, activity: float) -> None:
    if n_cycles < 1:
        raise ConfigurationError("trace needs at least one cycle")
    if n_blocks < 1:
        raise ConfigurationError("need at least one block")
    if not 0.0 <= activity <= 1.0:
        raise ConfigurationError("activity must lie in [0, 1]")


def uniform_random_trace(n_cycles: int, n_blocks: int, activity: float,
                         rng: np.random.Generator) -> np.ndarray:
    """Each cycle: with probability ``activity`` access a uniform block."""
    _check(n_cycles, n_blocks, activity)
    accesses = rng.random(n_cycles) < activity
    blocks = rng.integers(0, n_blocks, size=n_cycles)
    return np.where(accesses, blocks, IDLE)


def bursty_trace(n_cycles: int, n_blocks: int, activity: float,
                 rng: np.random.Generator,
                 burst_length: int = 16) -> np.ndarray:
    """Bursts of back-to-back accesses to one block, then idle gaps.

    The long-run activity matches ``activity``; within a burst the
    memory is accessed every cycle (a cache-line fill pattern).
    """
    _check(n_cycles, n_blocks, activity)
    if burst_length < 1:
        raise ConfigurationError("burst length must be >= 1")
    trace = np.full(n_cycles, IDLE, dtype=np.int64)
    # Each idle-cycle decision either starts an L-cycle burst (prob p) or
    # idles one cycle; long-run activity a = pL / (pL + 1 - p), hence:
    start_probability = activity / (burst_length * (1.0 - activity)
                                    + activity)
    cycle = 0
    while cycle < n_cycles:
        if rng.random() < start_probability:
            block = int(rng.integers(0, n_blocks))
            end = min(n_cycles, cycle + burst_length)
            trace[cycle:end] = block
            cycle = end
        else:
            cycle += 1
    return trace


def sequential_trace(n_cycles: int, n_blocks: int,
                     activity: float,
                     rng: np.random.Generator) -> np.ndarray:
    """Streaming access: blocks visited in order (row-major walk)."""
    _check(n_cycles, n_blocks, activity)
    accesses = rng.random(n_cycles) < activity
    order = np.cumsum(accesses) % n_blocks
    return np.where(accesses, order, IDLE)


def hot_block_trace(n_cycles: int, n_blocks: int, activity: float,
                    rng: np.random.Generator,
                    hot_fraction: float = 0.8) -> np.ndarray:
    """``hot_fraction`` of accesses hammer block 0, the rest uniform.

    The adversarial case for localized refresh: accesses pile onto the
    very block being refreshed more often than uniform traffic would.
    """
    _check(n_cycles, n_blocks, activity)
    if not 0.0 <= hot_fraction <= 1.0:
        raise ConfigurationError("hot fraction must lie in [0, 1]")
    accesses = rng.random(n_cycles) < activity
    hot = rng.random(n_cycles) < hot_fraction
    blocks = np.where(hot, 0, rng.integers(0, n_blocks, size=n_cycles))
    return np.where(accesses, blocks, IDLE)
