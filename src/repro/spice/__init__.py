"""A small MNA-based circuit simulator.

This package stands in for the SPICE box of the paper's methodology flow
(Fig. 6).  It supports exactly what memory-array verification needs:

* linear R, C, independent V/I sources (DC, pulse, PWL),
* a nonlinear MOSFET element driven by the :mod:`repro.tech` device
  curves (bidirectional, so pass transistors and charge sharing work),
* a DC operating-point solver (Newton + gmin stepping),
* a fixed-step transient engine (backward Euler or trapezoidal) with
  Newton iteration per step,
* waveform measurements (crossings, delays, swings, source energy).

It is intentionally dense-matrix and small-circuit oriented: the circuits
simulated here (a local block, a sense amplifier, a bitline) have tens of
nodes, where dense numpy linear algebra is both simplest and fastest.
"""

from repro.spice.netlist import Circuit, GROUND
from repro.spice.elements import (
    Resistor,
    Capacitor,
    VoltageSource,
    CurrentSource,
    Diode,
    Switch,
    dc,
    pulse,
    pwl,
)
from repro.spice.mosfet import MosfetElement
from repro.spice.subckt import Scope
from repro.spice.stdcells import (
    add_inverter,
    add_inverter_chain,
    add_latch_sense_amp,
    build_ring_oscillator,
)
from repro.spice.op import solve_dc
from repro.spice.stampplan import StampPlan, stamping_order
from repro.spice.export import save_waveforms, waveforms_to_csv
from repro.spice.transient import TransientResult, simulate_transient
from repro.spice.batch import (
    BatchTransientModel,
    batch_transient_outcomes,
    eval_model_batch,
    simulate_transient_batch,
)
from repro.spice.measure import (
    crossing_time,
    delay_between,
    signal_swing,
    source_charge,
    source_energy,
)

__all__ = [
    "Circuit",
    "GROUND",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "Diode",
    "Switch",
    "MosfetElement",
    "Scope",
    "add_inverter",
    "add_inverter_chain",
    "add_latch_sense_amp",
    "build_ring_oscillator",
    "dc",
    "save_waveforms",
    "waveforms_to_csv",
    "pulse",
    "pwl",
    "solve_dc",
    "StampPlan",
    "stamping_order",
    "TransientResult",
    "simulate_transient",
    "BatchTransientModel",
    "batch_transient_outcomes",
    "eval_model_batch",
    "simulate_transient_batch",
    "crossing_time",
    "delay_between",
    "signal_swing",
    "source_charge",
    "source_energy",
]
