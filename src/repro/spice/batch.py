"""Batched sample-axis transient solver: the Monte-Carlo fast path.

Variability sweeps evaluate the *same* circuit topology hundreds of
times with perturbed device parameters.  The scalar fast path
(:mod:`repro.spice.stampplan`) makes one solve cheap, but each sample
still pays a full Python Newton loop.  This module stacks **B**
parameter-perturbed instances of one topology on a shared sample axis
and advances them through one vectorised Newton loop:

* the per-sample linear bases become a ``(B, n, n)`` stack, sliced to
  the live rows once per step and copied per iterate (the batched twin
  of the scalar plan's ``np.copyto`` from its cached base);
* the nonlinear companion values are computed by *group fillers* —
  one vectorised evaluator per element class over ``(L, E)`` arrays,
  with the MOSFET model's three finite-difference probes stacked on a
  leading axis so the magnitude model runs once per iterate — and
  scattered into the matrix stack over precomputed row-offset flat
  indices, stable-partitioned into a unique-destination prefix (plain
  fancy ``+=``, no collision possible) and a shared-destination
  remainder (unbuffered ``np.add.at``, which preserves each cell's
  accumulation order; see below);
* the linear solve loops LAPACK's fused factor+solve over the rows
  whose matrix changed (:func:`repro.spice.linalg.solve_fresh_row`)
  and the plain substitution over rows with valid cached factors;
  substitution stays per-sample because a vectorised triangular solve
  would change BLAS reduction order.  Checking for factor reuse costs
  a per-row array compare, so it runs on probation: a few thousand
  consecutive row-solves without one hit (the Newton-active regime —
  every iterate changes every matrix) switch the batch to an
  unconditionally-refactoring loop
  (:func:`repro.spice.linalg.solve_rows_t_into`) that skips the
  compare and the cache bookkeeping; ``dgesv`` *is* ``dgetrf`` +
  ``dgetrs``, so a fresh factor+solve returns the same bits a cache
  hit would have, and the skip is invisible in the results.

**Bit-identity contract.**  Converged batch samples are bit-identical
to scalar ``simulate_transient`` runs because every elementwise IEEE
operation (add, subtract, multiply, divide, abs, compare, select) is
applied to the same operand pairs in the same order as the scalar
plan, and transcendentals (``exp``, ``10**x``, ``x**a``) are routed
through the *same libm calls* via per-element loops — numpy's SIMD
``np.exp``/``np.power`` differ from libm in the last ulp, so they are
never used on the value path.  Branches become either ``np.where``
selections (both arms exception-free, NaN following the scalar branch
form) or mask partitions (``np.nonzero`` gather / compute / scatter)
where one arm must not be evaluated out of domain.  Stacking the three
MOSFET probes is bit-safe because the magnitude model is elementwise:
the vds-derived subterms the scalar code shares between the operating
point and the gate probe are recomputed from identical inputs, which
yields identical bits.  The companion scatter *is* the scalar plan's
``np.add.at``, batched: each live row's frozen in-row indices are
offset by the row's stride into the raveled stack, so the scatter
replays every sample's duplicate-preserving add sequence — same
cells, same order, same partial sums, same bits — while amortising
the fancy-indexing dispatch over the whole batch.  Splitting off the
unique-destination entries is bit-safe because a cell hit exactly
once has no accumulation order to preserve: one add is one add,
whether ``np.add.at`` or fancy ``+=`` performs it.

**Active set and ejection.**  Samples drop out of the active set the
iterate they converge (masked dropout), and the whole batch marches to
the next timestep together.  A sample is *ejected* — removed from the
batch and rerun from t=0 on the scalar path — when it

* hits a singular matrix (the scalar path raises a structural
  diagnosis; the rerun reproduces it),
* exhausts the Newton budget (the scalar path escalates the recovery
  ladder, which the batch does not replicate),
* drives its oscillation-guard damping to the 1/256 floor (a
  heuristic: such samples are headed for the ladder), or
* any unexpected exception escapes the batch internals, in which case
  *all* remaining active samples are ejected.

Ejection is always bit-safe: the rerun is a complete, independent
scalar simulation, so its result (or exception) is the serial
reference *by definition* — the ejection rules are pure performance
heuristics and can never change a waveform.

Observability: ``spice.batch.samples`` / ``spice.batch.ejected`` /
``spice.batch.batches`` / ``spice.batch.fallback`` counters, a
``spice.batch.occupancy`` time series (active fraction per step), and
the shared ``spice.lu.*`` and ``spice.newton.iterations`` instruments.
"""

from __future__ import annotations

import dataclasses
import itertools
import logging
import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.analysis.effects import deterministic_under_seed
from repro.errors import ReproError, SimulationError
from repro.exec.supervise import tick as _supervision_tick
from repro.spice import linalg
from repro.spice.elements import Diode, Switch, VoltageSource
from repro.spice.mna import MnaSystem
from repro.spice.mosfet import _FD_STEP, MosfetElement
from repro.spice.netlist import Circuit
from repro.spice.recovery import DEFAULT_RECOVERY, RecoveryConfig
from repro.spice.stampplan import (_LINEAR_TYPES, _mosfet_constants,
                                   resolve_backend, SPARSE_AUTO_THRESHOLD,
                                   StampPlan, stamping_order)
from repro.spice.transient import (_DAMP_LIMIT, _MAX_NEWTON, _NEWTON_BUCKETS,
                                   _V_TOL, _initial_state, _validate_time_grid,
                                   TransientResult, simulate_transient)
from repro.tech.node import Polarity

_log = logging.getLogger(__name__)

#: Outcome of one sample: (True, TransientResult | measured value) or
#: (False, ReproError).  Non-ReproError exceptions always propagate.
Outcome = Tuple[bool, Any]


class _BatchUnsupported(Exception):
    """The circuit stack cannot run batched; fall back to scalar."""


#: Row-solves without a single LU-cache hit before a run stops paying
#: for the content-key compare (see ``BatchStampPlan._solve_rows``).
_LU_TRIAL = 2048


# -- libm routing --------------------------------------------------------------
#
# numpy's vectorised exp/power use SIMD kernels that differ from libm
# in the last ulp on this platform; the scalar fast path calls
# math.exp / float.__pow__.  Bit-identity therefore requires looping
# transcendentals through the exact same libm entry points.  map() at
# C speed over tolist() floats beats a Python-level comprehension by
# ~30% at these sizes; math.pow and float.__pow__ both call libm pow
# on finite positive bases (verified bit-equal on this platform).

def _libm_exp(values: np.ndarray) -> np.ndarray:
    lst = values.tolist()
    return np.fromiter(map(math.exp, lst), dtype=float, count=len(lst))


try:
    # scipy's expit computes 1/(1+exp(-x)) through the same libm exp
    # as the scalar sigmoid — bit-identical on the switch's (-40, 40)
    # mid branch (verified on this platform over 250k points), at one
    # C call instead of a Python-level map.
    from scipy.special import expit as _expit
except ImportError:  # pragma: no cover - the CI image ships scipy
    _expit = None


def _libm_pow10(values: np.ndarray) -> np.ndarray:
    lst = values.tolist()
    return np.fromiter(map(math.pow, itertools.repeat(10.0), lst),
                       dtype=float, count=len(lst))


def _libm_pow(bases: np.ndarray, exponents: np.ndarray) -> np.ndarray:
    lst = bases.tolist()
    return np.fromiter(map(math.pow, lst, exponents.tolist()),
                       dtype=float, count=len(lst))


def _gather_cols(names: Sequence[str], index: Callable[[str], int],
                 pad: int) -> np.ndarray:
    """Column gather indices for one terminal across a group (ground
    maps to the pad column, which is pinned to 0.0)."""
    cols = np.empty(len(names), dtype=np.intp)
    for j, node in enumerate(names):
        idx = index(node)
        cols[j] = idx if idx >= 0 else pad
    return cols


def _const_stack(grids: List[List[List[float]]]) -> np.ndarray:
    """A (K, B, E) constant stack from per-constant per-sample grids."""
    return np.array(grids, dtype=float)


def _scatter_keep(idx: np.ndarray, limit: Optional[int] = None
                  ) -> Tuple[Optional[np.ndarray], np.ndarray]:
    """Pad-filter a scatter-index array for batched ``np.add.at``.

    Positions whose destination is ``>= limit`` are dropped entirely:
    the scalar path scatters them into a pad slot that is never read,
    so skipping the adds cannot change an observable value.  Returns
    ``(keep, dst)`` where ``keep`` selects the surviving term columns
    (``None`` when nothing is dropped) and ``dst`` their in-row
    destinations.  The batched scatter offsets ``dst`` per live row and
    performs one unbuffered ``np.add.at`` over the whole stack — the
    very construct the scalar plan applies per sample, with each row's
    adds in the identical duplicate-preserving order, so every cell
    accumulates the same partial sums to the last bit.
    """
    idx = np.asarray(idx, dtype=np.intp)
    if limit is None or bool((idx < limit).all()):
        return None, idx.copy()
    keep = np.nonzero(idx < limit)[0]
    return keep, idx[keep]


def _split_unique(slot: np.ndarray, sign: np.ndarray, dst: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Stable-partition a scatter into unique-destination and shared
    columns.

    Destinations hit exactly once take a plain fancy add (no atomics,
    no ordering concern — one IEEE add each, exactly the scalar's);
    destinations hit more than once stay on ``np.add.at``, in their
    original relative order so each cell accumulates its partial sums
    in the scalar sequence.  Returns the permuted (slot, sign, dst)
    plus the unique-prefix length.
    """
    if dst.size == 0:
        return slot.copy(), sign.copy(), dst.copy(), 0
    counts = np.bincount(dst)
    uniq = counts[dst] == 1
    order = np.concatenate([np.nonzero(uniq)[0], np.nonzero(~uniq)[0]])
    return (np.asarray(slot)[order], np.asarray(sign)[order],
            dst[order], int(np.count_nonzero(uniq)))


class _DiodeGroup:
    """Vectorised twin of StampPlan._compile_diode across (L, E)."""

    def __init__(self, grid: List[List[Diode]], index, pad: int,
                 slots: List[int]) -> None:
        row0 = grid[0]
        self.a_cols = _gather_cols([e.anode for e in row0], index, pad)
        self.c_cols = _gather_cols([e.cathode for e in row0], index, pad)
        self.s_g = np.array(slots, dtype=np.intp)
        self.s_res = self.s_g + 1
        # The clamp branch recomputes exp(v_clip/v_t) from constants
        # every scalar call; hoisting it is bit-safe (same libm call,
        # same argument, every time).
        self.consts = _const_stack([
            [[e.i_sat for e in row] for row in grid],
            [[e.v_t for e in row] for row in grid],
            [[e.v_clip for e in row] for row in grid],
            [[e.i_sat * math.exp(e.v_clip / e.v_t) / e.v_t for e in row]
             for row in grid],                               # g_clip
            [[e.i_sat * (math.exp(e.v_clip / e.v_t) - 1.0) for e in row]
             for row in grid]])                              # i_clip

    def fill(self, xpad: np.ndarray, vals: np.ndarray,
             c: np.ndarray) -> None:
        i_sat, v_t, v_clip, g_clip, i_clip = c
        v = xpad[:, self.a_cols] - xpad[:, self.c_cols]
        g = np.empty_like(v)
        i = np.empty_like(v)
        vr, gr, ir = v.ravel(), g.ravel(), i.ravel()
        clip = (v <= v_clip).ravel()
        lo = np.nonzero(clip)[0]
        if lo.size:
            vtf = v_t.reshape(-1)[lo]
            isf = i_sat.reshape(-1)[lo]
            e = _libm_exp(vr[lo] / vtf)
            ir[lo] = isf * (e - 1.0)
            gr[lo] = isf * e / vtf
        hi = np.nonzero(~clip)[0]
        if hi.size:
            gc = g_clip.reshape(-1)[hi]
            gr[hi] = gc
            ir[hi] = (i_clip.reshape(-1)[hi]
                      + gc * (vr[hi] - v_clip.reshape(-1)[hi]))
        vals[:, self.s_g] = g
        vals[:, self.s_res] = i - g * v


class _SwitchGroup:
    """Vectorised twin of StampPlan._compile_switch across (L, E)."""

    def __init__(self, grid: List[List[Switch]], index, pad: int,
                 slots: List[int]) -> None:
        row0 = grid[0]
        self.cp_cols = _gather_cols([e.ctrl_p for e in row0], index, pad)
        self.cn_cols = _gather_cols([e.ctrl_n for e in row0], index, pad)
        self.s_g = np.array(slots, dtype=np.intp)
        self.consts = _const_stack([
            [[e.threshold for e in row] for row in grid],
            [[e.transition for e in row] for row in grid],
            [[e.g_off for e in row] for row in grid],
            [[e.g_on - e.g_off for e in row] for row in grid]])  # g_span
        self._scratch: Dict[int, Dict[str, np.ndarray]] = {}

    def _buffers(self, live: int, e_all: int) -> Dict[str, np.ndarray]:
        s = self._scratch.get(live)
        if s is None:
            d2 = (live, e_all)
            s = {"cp": np.empty(d2), "cn": np.empty(d2),
                 "frac": np.empty(d2),
                 "hi": np.empty(d2, dtype=bool), "lo": np.empty(d2, bool)}
            self._scratch[live] = s
        return s

    def fill(self, xpad: np.ndarray, vals: np.ndarray,
             c: np.ndarray) -> None:
        threshold, transition, g_off, g_span = c
        live = xpad.shape[0]
        s = self._buffers(live, self.cp_cols.shape[0])
        cp = xpad.take(self.cp_cols, axis=1, out=s["cp"])
        cn = xpad.take(self.cn_cols, axis=1, out=s["cn"])
        arg = np.subtract(cp, cn, out=cp)
        np.subtract(arg, threshold, out=arg)
        np.divide(arg, transition, out=arg)
        ar = arg.ravel()
        hi = np.greater(ar, 40, out=s["hi"].reshape(-1))
        lo = np.less(ar, -40, out=s["lo"].reshape(-1))
        # bool->float casts hi to exactly 1.0 and everything else to
        # 0.0 (the scalar's deep-off value); mid cells are overwritten.
        frac = s["frac"].reshape(-1)
        np.copyto(frac, hi, casting="unsafe")
        np.logical_or(hi, lo, out=hi)
        np.logical_not(hi, out=hi)
        mid = hi.nonzero()[0]
        if mid.size:
            if _expit is not None:
                frac[mid] = _expit(ar[mid])
            else:
                e = _libm_exp(-ar[mid])
                frac[mid] = 1.0 / (1.0 + e)
        frac2 = s["frac"]
        np.multiply(g_span, frac2, out=frac2)
        np.add(g_off, frac2, out=frac2)
        vals[:, self.s_g] = frac2


class _MosfetGroup:
    """Vectorised twin of StampPlan._compile_mosfet across (L, E).

    Both polarities share one group: columns are ordered NMOS-first,
    and the direction dispatch collapses to a single compare by giving
    every column a ``(lhs, rhs)`` operand pair — drain/source for
    NMOS, source/drain for PMOS — so ``cond = lhs >= rhs`` reproduces
    each polarity's branch condition and one ``np.where`` selects each
    branch's operand pair.  The three probe evaluations (operating
    point, drain probe, gate probe) are stacked on a leading axis so
    the magnitude model runs *once* per iterate over a (3, L*E) view.
    Stacking is bit-safe because the magnitude model is elementwise:
    the vds-derived subterms the scalar code shares between the
    operating point and the gate probe (both use the operating-point
    vds) are recomputed from identical inputs, which yields identical
    bits.
    """

    def __init__(self, grid: List[List[MosfetElement]], index, pad: int,
                 slots: List[int], nmos_flags: List[bool]) -> None:
        order = ([j for j, f in enumerate(nmos_flags) if f]
                 + [j for j, f in enumerate(nmos_flags) if not f])
        self.kn = sum(nmos_flags)
        row0 = [grid[0][j] for j in order]
        self.d_cols = _gather_cols([e.drain for e in row0], index, pad)
        self.g_cols = _gather_cols([e.gate for e in row0], index, pad)
        self.s_cols = _gather_cols([e.source for e in row0], index, pad)
        s = np.array([slots[j] for j in order], dtype=np.intp)
        self.s_gd = s
        self.s_gm = s + 1
        self.s_res = s + 2
        # Reversed-mode flag per column: NMOS current is negated when
        # the device is reversed (~cond), PMOS when it is *forward*
        # (cond), so neg = cond XOR (column is NMOS).
        self._flip = np.zeros(len(order), dtype=bool)
        self._flip[:self.kn] = True
        # Constant order mirrors _mosfet_constants: vth0, dibl, alpha,
        # swing, vt_thermal, five_vt, vth_at_ioff, sub_scale,
        # drive_width.
        per_sample = [[_mosfet_constants(row[j]) for j in order]
                      for row in grid]
        self.consts = _const_stack([
            [[consts[k] for consts in row] for row in per_sample]
            for k in range(9)])
        # Per-live-count scratch buffers: the fill runs once per Newton
        # iterate, so reusing output buffers (via ufunc ``out=`` /
        # ``np.copyto`` forms that compute the identical values) keeps
        # ~25 short-lived allocations per iterate out of the hot loop.
        self._scratch: Dict[int, Dict[str, np.ndarray]] = {}

    def _buffers(self, live: int, e_all: int) -> Dict[str, np.ndarray]:
        s = self._scratch.get(live)
        if s is None:
            d2 = (live, e_all)
            d3 = (3, live, e_all)
            s = {name: np.empty(d2) for name in
                 ("vd", "vg", "vs", "dpf", "u0", "u1", "gd", "gm", "ta",
                  "tb")}
            s.update({name: np.empty(d3) for name in
                      ("u", "dd", "w", "gg", "t1", "t2", "t3", "t4")})
            s.update({name: np.empty(d3, dtype=bool) for name in
                      ("neg", "cond", "mask")})
            self._scratch[live] = s
        return s

    def _magnitude(self, vgs: np.ndarray, vds: np.ndarray,
                   c: np.ndarray, s: Dict[str, np.ndarray]) -> np.ndarray:
        """Channel-current magnitude over the (3, L*E) probe stack.

        ``c`` rows are flat (L*E,) constants that broadcast over the
        probe axis; partition gathers recover the element column of a
        flat index with ``% lf``.  Writes flow through the (3, L*E)
        scratch views in ``s``; every rewritten expression performs
        the scalar sequence of IEEE operations on the same operands.
        """
        (vth0, dibl, alpha, swing, vt_thermal, five_vt, vth_at_ioff,
         sub_scale, drive_width) = c
        lf = vds.shape[1]
        sh = vds.shape
        vth = s["t1"].reshape(sh)
        vod = s["t2"].reshape(sh)
        vgs_c = s["t3"].reshape(sh)
        tmp = s["t4"].reshape(sh)
        mask = s["mask"].reshape(sh)
        # The caller's vds is already |drain - source| (>= +0.0), so
        # the scalar model's abs() is the identity here, to the bit.
        np.multiply(dibl, vds, out=vth)
        np.subtract(vth0, vth, out=vth)
        # where(vth > 0.05, vth, 0.05): np.maximum picks the same value
        # for every comparable pair; NaN disagreement is unreachable
        # because a NaN voltage NaNs vgs/vod too, so the sample's
        # currents are NaN either way (and the sample gets ejected).
        np.maximum(vth, 0.05, out=vth)
        np.subtract(vgs, vth, out=vod)
        # where(vth < vgs, vth, vgs), same minimum/where equivalence
        vgs_c = np.minimum(vth, vgs, out=vgs_c)
        np.subtract(vth, vth_at_ioff, out=tmp)
        exponent = np.subtract(vgs_c, tmp, out=vgs_c)
        np.divide(exponent, swing, out=exponent)
        i_sub = _libm_pow10(exponent.ravel()).reshape(sh)
        np.multiply(sub_scale, i_sub, out=i_sub)
        # Short-channel flag (vds < five_vt): probe 2 bumps the gate
        # only, so vds[2] is vds[0] bit-for-bit and probe 2's flag set
        # and exp factors equal probe 0's exactly — evaluate libm exp
        # on probes {0, 1} and replay probe 0's factors onto probe 2.
        np.less(vds[:2], five_vt, out=mask[:2])
        flag01 = mask[:2].ravel().nonzero()[0]
        if flag01.size:
            args = (-vds.ravel()[flag01]) / vt_thermal[flag01 % lf]
            fac = 1.0 - _libm_exp(args)
            i_sub.ravel()[flag01] *= fac
            k0 = int(np.searchsorted(flag01, lf))
            if k0:
                i_sub[2].ravel()[flag01[:k0]] *= fac[:k0]
        # Weak-inversion elements carry i_sub through unchanged; the
        # strong-element subthreshold leak is gathered *before* the
        # in-place rewrite, so ``m`` can alias ``i_sub``.
        m = i_sub
        mr = m.ravel()
        np.greater(vod, 0, out=mask)
        st = mask.ravel().nonzero()[0]
        if st.size:
            col = st % lf
            vod_s = vod.ravel()[st]
            vds_s = vds.ravel()[st]
            i_sub_s = mr[st]
            i_dsat = drive_width[col] * _libm_pow(vod_s, alpha[col])
            # where(vdsat > 0.05, vdsat, 0.05): the st set has vod > 0,
            # so vdsat is finite and maximum picks the identical value.
            vdsat = np.maximum(0.5 * vod_s, 0.05)
            sat = vds_s >= vdsat
            ratio = vds_s / vdsat
            mr[st] = np.where(
                sat,
                i_dsat * (1.0 + 0.05 * (vds_s - vdsat)) + i_sub_s,
                i_dsat * ratio * (2.0 - ratio) + i_sub_s)
        return m

    def fill(self, xpad: np.ndarray, vals: np.ndarray,
             c: np.ndarray) -> None:
        fd = _FD_STEP
        kn = self.kn
        live = xpad.shape[0]
        e_all = self.d_cols.shape[0]
        s = self._buffers(live, e_all)
        vd = xpad.take(self.d_cols, axis=1, out=s["vd"])
        vg = xpad.take(self.g_cols, axis=1, out=s["vg"])
        vs = xpad.take(self.s_cols, axis=1, out=s["vs"])
        # Probe stacks: probe 0 is the operating point, probe 1 bumps
        # the drain, probe 2 bumps the gate (scalar probe order).  The
        # polarity dispatch runs on u = drain - source: the rounded
        # difference of two doubles keeps their comparison's sign
        # exactly (a nonzero real difference is >= the smallest
        # subnormal, so it never rounds to zero), which makes
        # ``u >= 0`` the NMOS forward test and ``u <= 0`` the PMOS one,
        # |u| both polarities' vds, and one effective-source select
        # both polarities' vgs, all to the scalar's exact bits (the
        # only divergence is the sign of a zero vds when drain and
        # source compare equal, which the model erases at its
        # unconditionally positive ``+ i_sub`` terms).
        dpf = np.add(vd, fd, out=s["dpf"])
        u0 = np.subtract(vd, vs, out=s["u0"])
        u1 = np.subtract(dpf, vs, out=s["u1"])
        u = s["u"]
        u[0] = u0
        u[1] = u1
        u[2] = u0
        neg = s["neg"]
        np.less(u[:, :, :kn], 0.0, out=neg[:, :, :kn])
        np.less_equal(u[:, :, kn:], 0.0, out=neg[:, :, kn:])
        cond = np.bitwise_xor(neg, self._flip, out=s["cond"])
        # u is done informing the sign tests; fold it to |u| in place.
        vds = np.abs(u, out=u)
        dd = s["dd"]
        dd[0] = vd
        dd[1] = dpf
        dd[2] = vd
        # Effective source: the terminal the gate voltage is measured
        # against (source when forward, drain when reversed).
        w = s["w"]
        np.copyto(w, dd)
        np.copyto(w, vs, where=cond)
        gg = s["gg"]
        gg[0] = vg
        gg[1] = vg
        np.add(vg, fd, out=gg[2])
        # NMOS vgs is gate - effective source; PMOS is the negation,
        # which IEEE negation makes bitwise equal to the scalar's
        # (effective source - gate) subtraction.
        vgs = np.subtract(gg, w, out=gg)
        np.negative(vgs[:, :, kn:], out=vgs[:, :, kn:])
        lf = live * e_all
        m = self._magnitude(vgs.reshape(3, lf), vds.reshape(3, lf),
                            c.reshape(9, -1), s)
        # where(neg, -m, m): negation in place is exact.
        np.negative(m, out=m, where=neg.reshape(3, lf))
        cur = m.reshape(3, live, e_all)
        i0, i1, i2 = cur[0], cur[1], cur[2]
        gd = np.subtract(i1, i0, out=s["gd"])
        np.divide(gd, fd, out=gd)
        gm = np.subtract(i2, i0, out=s["gm"])
        np.divide(gm, fd, out=gm)
        # where(0.0 > gd, 0.0, gd) + gmin: maximum keeps NaN rows NaN
        # like where does, and a -0.0/+0.0 split is erased by + gmin.
        np.maximum(gd, 0.0, out=gd)
        np.add(gd, 1e-12, out=gd)  # noqa: L101 - gmin, siemens
        vals[:, self.s_gd] = gd
        vals[:, self.s_gm] = gm
        ta = np.multiply(gd, u0, out=s["ta"])
        tb = np.subtract(vg, vs, out=s["tb"])
        np.multiply(gm, tb, out=tb)
        i_lin = np.add(ta, tb, out=ta)
        vals[:, self.s_res] = np.subtract(i0, i_lin, out=i_lin)


@dataclasses.dataclass
class _BatchStep:
    """Everything fixed across the Newton iterates of one timestep."""

    rows: np.ndarray                 # sample ids, one per live row
    rhs_point: np.ndarray            # (L, n) linear RHS
    base: np.ndarray                 # (L, n, n) linear base slice
    group_consts: List[np.ndarray]   # one (K, L, E) stack per group

    def mask(self, keep: np.ndarray) -> "_BatchStep":
        return _BatchStep(
            rows=self.rows[keep], rhs_point=self.rhs_point[keep],
            base=self.base[keep],
            group_consts=[t[:, keep] for t in self.group_consts])


class BatchStampPlan:
    """B same-topology circuits compiled for simultaneous solves.

    Construction raises :class:`_BatchUnsupported` (caught by
    :func:`batch_transient_outcomes`, which falls back to the scalar
    path) when the stack is not batchable: mismatched topologies, or
    element types the stamp-plan compiler itself cannot batch.
    """

    def __init__(self, circuits: Sequence[Circuit]) -> None:
        self.circuits = list(circuits)
        self.batch = len(self.circuits)
        self.systems = [MnaSystem(c) for c in self.circuits]
        self.plans = [StampPlan(s) for s in self.systems]
        plan0 = self.plans[0]
        self.size = plan0.size
        self.n_nodes = len(self.systems[0].node_index)
        self._check_stack()
        # Scalar plan 0 owns the canonical scatter geometry; the
        # topology check above guarantees every sample shares it.
        _, m_dst = _scatter_keep(plan0._m_idx)
        # The matrix stack is stored *transposed* (each row holds A.T,
        # i.e. A in LAPACK's native Fortran order) so dgesv can factor
        # in place with no layout copy.  Flat index r*n+c becomes
        # c*n+r: the add sequence hitting each destination is
        # unchanged, only its storage address moves.
        n = self.size
        m_dst = (m_dst % n) * n + (m_dst // n)
        (self._m_slot, self._m_sign, self._m_dst,
         self._m_n_uniq) = _split_unique(
            plan0._m_slot, plan0._m_sign, m_dst)
        _, r_dst = _scatter_keep(plan0._r_idx)
        (self._r_slot, self._r_sign, self._r_dst,
         self._r_n_uniq) = _split_unique(
            plan0._r_slot, plan0._r_sign, r_dst)
        self._n_slots = len(plan0._nl_vals)
        self._groups = self._compile_groups()
        # Linear RHS machinery: capacitor companions are stacked per
        # sample; sources shared across samples (the common case: the
        # builder reuses one waveform object) are evaluated once.  The
        # scalar path scatters grounded-capacitor terms into a pad row
        # it then slices off, so those writes are dropped here.
        self._n_caps = len(plan0._cap_c)
        self._cap_ia = plan0._cap_ia
        self._cap_ib = plan0._cap_ib
        self._cap_keep, self._cap_dst = _scatter_keep(
            plan0._cap_rhs_idx, limit=self.size)
        self._cap_c_stack = (np.array([p._cap_c for p in self.plans])
                             if self._n_caps else None)
        # Flat add.at index stacks, built lazily per live-row count
        # (the count shrinks as samples converge or eject).
        self._flat_cache: Dict[
            int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        # Per-live-count iterate buffers (xpad, vals, m-terms, r-terms):
        # reused across iterates; only values that must outlive the
        # iterate (matrix factors, solutions) get fresh allocations.
        self._iter_scratch: Dict[int, Tuple[np.ndarray, ...]] = {}
        self._step_scratch: Dict[int, Tuple[np.ndarray, ...]] = {}
        self._geq_stack: Optional[np.ndarray] = None
        self._vsrc_rows = [br for _el, br, _ip, _in in plan0._vsources]
        self._vsrc_br = np.array(self._vsrc_rows, dtype=np.intp)
        self._vsrc_shared = [
            all(p._vsources[j][0] is plan0._vsources[j][0]
                for p in self.plans)
            for j in range(len(plan0._vsources))]
        self._vsrc_all_shared = all(self._vsrc_shared)
        self._isrc_rows = [(i_from, i_to)
                           for _el, i_from, i_to in plan0._isources]
        self._isrc_shared = [
            all(p._isources[j][0] is plan0._isources[j][0]
                for p in self.plans)
            for j in range(len(plan0._isources))]
        self._base_stack: Optional[np.ndarray] = None
        self._base_stack_key: Optional[Tuple] = None
        # Live-set caches: ejection is rare, so consecutive steps see
        # the identical `rows` array object and can reuse its gathers.
        self._live_rows: Optional[np.ndarray] = None
        self._live_base: Optional[np.ndarray] = None
        self._live_consts: List[np.ndarray] = []
        self._live_geq: Optional[np.ndarray] = None
        # Per-sample LU caches, keyed like the scalar inputs-mode key:
        # the base is fixed per run, so equal companion values mean an
        # equal assembled matrix (NaN rows never compare equal, which
        # conservatively forces a refactor).
        self._factors: List[Optional[linalg.LuFactors]] = [None] * self.batch
        self._lu_have = np.zeros(self.batch, dtype=bool)
        self._lu_vals = np.full((self.batch, self._n_slots), np.nan)
        # Reuse probation: a fresh factor+solve of an unchanged matrix
        # returns the same bits as a substitution with cached factors,
        # so the content-key compare is a pure heuristic.  If the first
        # _LU_TRIAL row-solves of a run never hit (a moving transient
        # refactors every iterate), stop paying for the compare.
        self._lu_skip = False
        self._lu_trial = _LU_TRIAL
        self._ok_true: Dict[int, np.ndarray] = {}
        self._c_reuse = obs.metrics().counter("spice.lu.reuse")
        self._c_refactor = obs.metrics().counter("spice.lu.refactor")

    # -- compilation -----------------------------------------------------------

    def _check_stack(self) -> None:
        if self.batch < 2:
            raise _BatchUnsupported("batch needs at least two samples")
        sys0 = self.systems[0]
        for sys_b in self.systems[1:]:
            if (sys_b.size != sys0.size
                    or sys_b.node_index != sys0.node_index
                    or sys_b.branch_index != sys0.branch_index):
                raise _BatchUnsupported(
                    "samples must share one circuit topology")
        plan0 = self.plans[0]
        if not plan0._batched:
            raise _BatchUnsupported(
                "circuit carries elements the stamp-plan compiler "
                "cannot batch")
        sig0 = self._signature(self.circuits[0])
        for circuit in self.circuits[1:]:
            if self._signature(circuit) != sig0:
                raise _BatchUnsupported(
                    "samples must share one element sequence")
        v_rows0 = [(br, ip, in_) for _el, br, ip, in_ in plan0._vsources]
        i_rows0 = [(i_f, i_t) for _el, i_f, i_t in plan0._isources]
        for plan in self.plans[1:]:
            if not plan._batched:
                raise _BatchUnsupported(
                    "circuit carries elements the stamp-plan compiler "
                    "cannot batch")
            for name in ("_m_idx", "_m_slot", "_m_sign",
                         "_r_idx", "_r_slot", "_r_sign",
                         "_cap_rhs_idx", "_cap_ia", "_cap_ib"):
                if not np.array_equal(getattr(plan, name),
                                      getattr(plan0, name)):
                    raise _BatchUnsupported(
                        "samples compiled to different scatter geometry")
            if ([(br, ip, in_) for _el, br, ip, in_ in plan._vsources]
                    != v_rows0
                    or [(i_f, i_t) for _el, i_f, i_t in plan._isources]
                    != i_rows0):
                raise _BatchUnsupported(
                    "samples compiled to different source rows")

    @staticmethod
    def _signature(circuit: Circuit) -> List[Tuple]:
        """Element sequence signature: type, name, terminals, polarity."""
        sig: List[Tuple] = []
        for el in stamping_order(circuit):
            entry: Tuple
            if type(el) is MosfetElement:
                entry = ("mosfet", el.name, el.drain, el.gate, el.source,
                         el.device.polarity is Polarity.NMOS)
            elif type(el) is Diode:
                entry = ("diode", el.name, el.anode, el.cathode)
            elif type(el) is Switch:
                entry = ("switch", el.name, el.node_a, el.node_b,
                         el.ctrl_p, el.ctrl_n)
            else:
                entry = (type(el).__name__, el.name)
            sig.append(entry)
        return sig

    def _compile_groups(self) -> List[Any]:
        """Group the nonlinear elements by class (one MOSFET group).

        Groups write disjoint slot columns, so their evaluation order
        does not matter; the flat add.at scatter preserves the
        canonical write order regardless.
        """
        ordered = [el for el in stamping_order(self.circuits[0])
                   if type(el) not in _LINEAR_TYPES]
        by_sample = [
            [el for el in stamping_order(c)
             if type(el) not in _LINEAR_TYPES]
            for c in self.circuits]
        buckets: Dict[str, Tuple[List[int], List[int]]] = {}
        slot = 0
        for j, el in enumerate(ordered):
            if type(el) is Diode:
                kind, n_slots = "diode", 2
            elif type(el) is Switch:
                kind, n_slots = "switch", 1
            else:
                kind, n_slots = "mosfet", 3
            positions, slots = buckets.setdefault(kind, ([], []))
            positions.append(j)
            slots.append(slot)
            slot += n_slots
        index = self.systems[0].index
        pad = self.size
        groups: List[Any] = []
        for kind, (positions, slots) in buckets.items():
            grid = [[row[j] for j in positions] for row in by_sample]
            if kind == "diode":
                groups.append(_DiodeGroup(grid, index, pad, slots))
            elif kind == "switch":
                groups.append(_SwitchGroup(grid, index, pad, slots))
            else:
                flags = [ordered[j].device.polarity is Polarity.NMOS
                         for j in positions]
                groups.append(_MosfetGroup(grid, index, pad, slots, flags))
        return groups

    # -- per-step / per-iterate API --------------------------------------------

    def begin_run(self, dt: float, integrator: str) -> None:
        """Stack the per-sample linear bases once per (dt, integrator).

        A base change invalidates every cached factorisation: the LU
        key compares companion values only, which is sound only while
        the underlying base stack is fixed.
        """
        key = (dt, integrator, 1e-12)  # noqa: L101 - gmin, siemens
        if self._base_stack_key != key:
            # Transposed per sample to match the transposed `_m_dst`
            # scatter map (see __init__): row b holds base_b.T.
            self._base_stack = np.stack(
                [plan._base(dt, integrator, 1e-12).T  # noqa: L101 - gmin, siemens
                 for plan in self.plans]).copy()
            self._base_stack_key = key
            self._lu_have[:] = False
        self._lu_skip = False
        self._lu_trial = _LU_TRIAL
        self._live_rows = None
        if self._n_caps:
            # Scalar: geq = cap_c / dt, elementwise per sample.
            self._geq_stack = self._cap_c_stack / dt

    def _flat_indices(self, live: int
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray, np.ndarray]:
        """Flat scatter indices for ``live`` rows.

        Matrix and RHS indices are *entry-major* — index ``[e, i]`` is
        scatter entry ``e`` of sample row ``i`` — split at the
        unique-destination prefix (``_split_unique``): the unique part
        takes a plain fancy ``+=``; the shared part replays each
        cell's scalar accumulation order under ``np.add.at`` (for one
        destination cell, entries keep ascending ``e`` order, and
        different rows never collide).  Capacitor indices stay
        row-major to match the ``(L, 2C)`` companion value layout.
        """
        cached = self._flat_cache.get(live)
        if cached is None:
            n = self.size
            col_m = np.arange(live, dtype=np.intp)[None, :] * (n * n)
            col_r = np.arange(live, dtype=np.intp)[None, :] * n
            row_r = np.arange(live, dtype=np.intp)[:, None] * n
            m_flat = (self._m_dst[:, None] + col_m).reshape(-1)
            r_flat = (self._r_dst[:, None] + col_r).reshape(-1)
            ku, kr = self._m_n_uniq * live, self._r_n_uniq * live
            cached = (m_flat[:ku], m_flat[ku:],
                      r_flat[:kr], r_flat[kr:],
                      (row_r + self._cap_dst).ravel())
            self._flat_cache[live] = cached
        return cached

    def _refresh_live(self, rows: np.ndarray) -> None:
        self._live_rows = rows
        self._live_base = self._base_stack[rows]
        self._live_consts = [g.consts[:, rows] for g in self._groups]
        if self._n_caps:
            self._live_geq = self._geq_stack[rows]

    def begin_step(self, rows: np.ndarray, x_hist: np.ndarray, t: float,
                   dt: float, integrator: str) -> _BatchStep:
        """Precompute one timestep's per-sample linear RHS rows.

        Vectorised transcription of ``StampPlan._point_rhs`` (backward
        Euler; the trapezoidal path never reaches the batch).  Order is
        preserved per RHS cell: capacitor companions first (one flat
        add.at), then voltage sources (disjoint branch rows), then
        current sources — exactly the scalar C, V, I sequence.  Shared
        source elements are evaluated once and broadcast; the value is
        what the scalar path computes for every sample by definition.
        """
        if rows is not self._live_rows:
            self._refresh_live(rows)
        live = rows.shape[0]
        n = self.size
        # rhs is this step's point-RHS: iterate() only ever copies it,
        # so the buffer can be recycled once the next step begins.
        scratch = self._step_scratch.get(live)
        if scratch is None:
            scratch = (np.zeros((live, n)), np.empty((live, n + 1)),
                       np.empty((live, self._n_caps)),
                       np.empty((live, 2 * self._n_caps)))
            self._step_scratch[live] = scratch
        rhs, xg, ieq, cap_vals = scratch
        rhs[:] = 0.0
        if self._n_caps:
            xg[:, :n] = x_hist
            xg[:, n] = 0.0
            np.subtract(xg[:, self._cap_ia], xg[:, self._cap_ib], out=ieq)
            np.multiply(self._live_geq, ieq, out=ieq)
            np.negative(ieq, out=cap_vals[:, 0::2])
            cap_vals[:, 1::2] = ieq
            cv = cap_vals
            if self._cap_keep is not None:
                cv = cap_vals[:, self._cap_keep]
            if self._cap_dst.size:
                cap_flat = self._flat_indices(live)[4]
                np.add.at(rhs.reshape(-1), cap_flat, cv.reshape(-1))
        plans = self.plans
        if self._vsrc_all_shared:
            if self._vsrc_rows:
                # Branch rows are unique per source, so one fancy add
                # performs exactly one IEEE add per cell (scalar order:
                # sources after capacitors, disjoint rows).
                values = np.array([src.waveform(t)
                                   for src, _br, _ip, _in
                                   in plans[0]._vsources])
                rhs[:, self._vsrc_br] += values
        else:
            for j, br in enumerate(self._vsrc_rows):
                if self._vsrc_shared[j]:
                    rhs[:, br] += plans[0]._vsources[j][0].waveform(t)
                else:
                    col = rhs[:, br]
                    for i, b in enumerate(rows.tolist()):
                        col[i] += plans[b]._vsources[j][0].waveform(t)
        for j, (i_from, i_to) in enumerate(self._isrc_rows):
            if self._isrc_shared[j]:
                current = plans[0]._isources[j][0].waveform(t)
                if i_from >= 0:
                    rhs[:, i_from] -= current
                if i_to >= 0:
                    rhs[:, i_to] += current
            else:
                for i, b in enumerate(rows.tolist()):
                    current = plans[b]._isources[j][0].waveform(t)
                    if i_from >= 0:
                        rhs[i, i_from] -= current
                    if i_to >= 0:
                        rhs[i, i_to] += current
        return _BatchStep(rows=rows, rhs_point=rhs, base=self._live_base,
                          group_consts=self._live_consts)

    def iterate(self, step: _BatchStep, x: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble and solve one Newton iterate for every live row.

        Returns ``(x_new, ok)``; rows with a singular matrix come back
        ``ok=False`` with NaN solutions and must be ejected by the
        caller before the next iterate.
        """
        n = self.size
        live = step.rows.shape[0]
        scratch = self._iter_scratch.get(live)
        if scratch is None:
            xpad = np.empty((live, n + 1))
            # The ground pad column is read-only after this: every fill
            # gathers from xpad, nothing writes it.
            xpad[:, n] = 0.0
            scratch = (xpad,
                       np.empty((live, self._n_slots)),
                       np.empty((self._m_slot.shape[0], live)),
                       np.empty((self._r_slot.shape[0], live)),
                       np.empty((live, n, n)))
            self._iter_scratch[live] = scratch
        xpad, vals, mterm, rterm, mat_scratch = scratch
        xpad[:, :n] = x
        for group, consts in zip(self._groups, step.group_consts):
            group.fill(xpad, vals, consts)
        # `rhs` stays a fresh allocation on purpose: it is handed back
        # as the solution vector.  `matrices` must also outlive the
        # iterate while the LU cache is active (the in-place dgesv
        # turns its buffer into the cached factors); once the reuse
        # probation expires the factors are discarded and the per-live
        # scratch buffer serves instead.
        if self._lu_skip:
            np.copyto(mat_scratch, step.base)
            matrices = mat_scratch
        else:
            matrices = step.base.copy()
        rhs = step.rhs_point.copy()
        if self._n_slots:
            mu, md, ru, rd, _cap = self._flat_indices(live)
            ku, kr = self._m_n_uniq, self._r_n_uniq
            # Entry-major terms: row e holds scatter entry e across the
            # live samples, so the unique/shared split is contiguous.
            vals_t = vals.T
            terms = vals_t.take(self._m_slot, axis=0, out=mterm)
            np.multiply(terms, self._m_sign[:, None], out=terms)
            flat = matrices.reshape(-1)
            flat[mu] += terms[:ku].reshape(-1)
            np.add.at(flat, md, terms[ku:].reshape(-1))
            terms = vals_t.take(self._r_slot, axis=0, out=rterm)
            np.multiply(terms, self._r_sign[:, None], out=terms)
            flat = rhs.reshape(-1)
            flat[ru] += terms[:kr].reshape(-1)
            np.add.at(flat, rd, terms[kr:].reshape(-1))
        return self._solve_rows(step, matrices, rhs, vals)

    def _solve_rows(self, step: _BatchStep, matrices: np.ndarray,
                    rhs: np.ndarray, vals: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row LU with the scalar plan's inputs-mode content key.

        The solution is written in place into ``rhs`` (the caller owns
        that buffer and never reads the RHS again).  Rows whose
        companion values changed go through the fused factor+solve;
        rows with valid cached factors reuse them via substitution.
        """
        rows = step.rows
        live = rows.shape[0]
        if self._lu_skip:
            # Probation expired without a hit: factor every row without
            # consulting the cache.  The factors land in the caller's
            # recycled scratch and are discarded; the cached (factors,
            # vals, have) triple is never touched, so it stays coherent
            # and a later run may resume comparing against it.
            bad = linalg.solve_rows_t_into(matrices, rhs)
            if bad:
                ok = np.ones(live, dtype=bool)
                ok[bad] = False
                rhs[bad] = np.nan
            else:
                # The all-ok vector is never mutated downstream, so the
                # common case shares one cached buffer per live count.
                ok = self._ok_true.get(live)
                if ok is None:
                    ok = self._ok_true[live] = np.ones(live, dtype=bool)
            self._c_refactor.inc(live)
            return rhs, ok
        ok = np.ones(live, dtype=bool)
        full = live == self.batch   # rows must then be 0..batch-1
        same = self._lu_have if full else self._lu_have[rows]
        if self._n_slots:
            lu_vals = self._lu_vals if full else self._lu_vals[rows]
            same = same & (vals == lu_vals).all(axis=1)  # noqa: L102 - exact content key, like tobytes
        factors = self._factors
        rows_list = rows.tolist()
        backsolve = linalg.lu_backsolve_into
        n_fresh = 0
        if same.all():
            for i in range(live):
                backsolve(factors[rows_list[i]], rhs[i])
        else:
            if full:
                self._lu_vals[:] = vals
            else:
                self._lu_vals[rows] = vals
            # `matrices` rows hold A.T (see __init__) and are a fresh
            # per-iterate copy, so the in-place factorisation can own
            # the buffer: cached factors alias it, and the next
            # iterate's `step.base.copy()` never touches it again.
            solve_fresh = linalg.solve_fresh_row_t
            if not same.any():
                # Companion values changed for every row — the common
                # case mid-transient — so skip the per-row reuse test.
                for i in range(live):
                    fac = solve_fresh(matrices[i], rhs[i])
                    factors[rows_list[i]] = fac
                    if fac is None:
                        ok[i] = False
                        rhs[i] = np.nan
                n_fresh = live
            else:
                same_list = same.tolist()
                for i in range(live):
                    b = rows_list[i]
                    if same_list[i]:
                        backsolve(factors[b], rhs[i])
                        continue
                    n_fresh += 1
                    fac = solve_fresh(matrices[i], rhs[i])
                    factors[b] = fac
                    if fac is None:
                        ok[i] = False
                        rhs[i] = np.nan
            have = ok if n_fresh == live else (same | ok)
            if full:
                self._lu_have[:] = have
            else:
                self._lu_have[rows] = have
        if n_fresh:
            self._c_refactor.inc(n_fresh)
        if live - n_fresh:
            self._c_reuse.inc(live - n_fresh)
            self._lu_trial = _LU_TRIAL
        else:
            self._lu_trial -= live
            if self._lu_trial <= 0:
                self._lu_skip = True
        return rhs, ok


# -- the batched Newton driver -------------------------------------------------

def _normalize_initials(initial_voltages: Any, batch: int
                        ) -> List[Optional[Dict[str, float]]]:
    """One initial-voltage dict per sample (a single dict is shared)."""
    if initial_voltages is None or isinstance(initial_voltages, dict):
        return [initial_voltages] * batch
    initials = list(initial_voltages)
    if len(initials) != batch:
        raise SimulationError(
            f"{len(initials)} initial-voltage dicts for {batch} samples")
    return initials


def _run_batch(plan: BatchStampPlan, t_stop: float, dt: float,
               initials: List[Optional[Dict[str, float]]], integrator: str,
               recovery: Optional[RecoveryConfig],
               scalar_run: Callable[[int], Outcome]) -> List[Outcome]:
    """March the stack through every timestep; eject stragglers.

    The Newton loop is a row-parallel transcription of
    :func:`repro.spice.transient._solve_point` at recovery rung 0
    (plain Newton, ``initial_damping=1.0``, ``gmin=1e-12``): same
    pre-clip ``max_step``, same clipped-delta oscillation guard, same
    update-before-convergence-check ordering.  Any sample that leaves
    rung-0 behaviour — singular matrix, damping floor, exhausted
    budget — is ejected and rerun via ``scalar_run``.
    """
    circuits = plan.circuits
    batch = plan.batch
    config = recovery if recovery is not None else DEFAULT_RECOVERY
    budget = _MAX_NEWTON if config.max_newton is None else config.max_newton
    steps = int(round(t_stop / dt))
    if steps < 1:
        raise SimulationError("t_stop shorter than one time step")
    n = plan.size
    n_nodes = plan.n_nodes
    times = np.linspace(0.0, steps * dt, steps + 1)
    data = np.empty((batch, steps + 1, n))
    for b in range(batch):
        data[b, 0] = _initial_state(circuits[b], plan.systems[b],
                                    initials[b])
    plan.begin_run(dt, integrator)
    active = np.arange(batch)
    ejected: List[int] = []
    metrics = obs.metrics()
    metrics.counter("spice.batch.batches").inc()
    metrics.counter("spice.batch.samples").inc(batch)
    damping_counter = metrics.counter("spice.damping_events")
    histogram = metrics.histogram("spice.newton.iterations", _NEWTON_BUCKETS)
    occupancy = (obs.timeseries().series("spice.batch.occupancy")
                 if obs.is_enabled() else None)
    floor_limit = 1.0 / 256.0
    abs_scratch: Dict[int, np.ndarray] = {}
    dot_scratch: Dict[int, np.ndarray] = {}
    try:
        with obs.span("spice.batch.transient", circuit=circuits[0].name,
                      batch=batch, steps=steps, integrator=integrator):
            for step in range(1, steps + 1):
                if not active.size:
                    break
                _supervision_tick()
                t = times[step]
                # The scalar ladder solves rung 0 at t_start + sub_dt
                # with t_start = t - dt; (t - dt) + dt need not round
                # back to t, so replicate the exact expression.
                t_point = (t - dt) + dt
                if occupancy is not None:
                    occupancy.sample(float(t), active.size / batch)
                x_hist = data[active, step - 1, :]
                ctx = plan.begin_step(active, x_hist, t_point, dt,
                                      integrator)
                x = x_hist.copy()
                prev_delta: Optional[np.ndarray] = None
                damping = np.ones(active.size)
                damping_one = True   # all damping factors still == 1.0
                damping_events = np.zeros(active.size, dtype=np.intp)
                eject_now: List[int] = []
                for iteration in range(1, budget + 1):
                    x_new, ok = plan.iterate(ctx, x)
                    if not ok.all():
                        # Singular rows: the scalar path raises the
                        # structural diagnosis; the rerun reproduces it.
                        eject_now.extend(ctx.rows[~ok].tolist())
                        ctx = ctx.mask(ok)
                        x, x_new = x[ok], x_new[ok]
                        damping = damping[ok]
                        damping_events = damping_events[ok]
                        if prev_delta is not None:
                            prev_delta = prev_delta[ok]
                        if not ctx.rows.size:
                            break
                    # x_new is this iterate's private solution buffer;
                    # consuming it in place saves an allocation.
                    delta = np.subtract(x_new, x, out=x_new)
                    live = ctx.rows.shape[0]
                    if n_nodes:
                        ab = abs_scratch.get(live)
                        if ab is None:
                            ab = abs_scratch[live] = np.empty(
                                (live, n_nodes))
                        np.abs(delta[:, :n_nodes], out=ab)
                        max_step = ab.max(axis=1)
                    else:
                        max_step = np.zeros(live)
                    clip = max_step > _DAMP_LIMIT
                    if clip.any():
                        delta[clip] *= (_DAMP_LIMIT / max_step[clip])[:, None]
                    osc_any = False
                    if prev_delta is not None:
                        # Batched (L,1,n)@(L,n,1) matmul runs the same
                        # ddot kernel per row as the scalar path's
                        # np.dot (bit-verified); an einsum would not.
                        dot = dot_scratch.get(live)
                        if dot is None:
                            dot = dot_scratch[live] = np.empty(
                                (live, 1, 1))
                        np.matmul(delta[:, None, :],
                                  prev_delta[:, :, None], out=dot)
                        dots = dot.ravel()
                        osc = dots < 0.0
                        osc_any = bool(osc.any())
                        if osc_any:
                            damping = np.where(
                                osc,
                                np.maximum(damping * 0.5, floor_limit),
                                np.minimum(1.0, damping * 1.5))
                            damping_one = False
                            damping_events = damping_events + osc
                        elif not damping_one:
                            # Scalar growth path: min(1, d * 1.5).
                            damping = np.minimum(1.0, damping * 1.5)
                            damping_one = bool((damping == 1.0).all())  # noqa: L102 - exact saturation check
                    prev_delta = delta
                    # x + delta * 1.0 is bitwise x + delta, so skip the
                    # broadcast multiply while no row is damped; x is a
                    # driver-private buffer, so the add runs in place.
                    if damping_one:
                        x = np.add(x, delta, out=x)
                    else:
                        x = np.add(x, delta * damping[:, None], out=x)
                    converged = max_step < _V_TOL
                    if osc_any:
                        floor = osc & (damping <= floor_limit) & ~converged
                        floor_any = bool(floor.any())
                    else:
                        floor_any = False
                    conv_any = bool(converged.any())
                    if conv_any:
                        done_rows = ctx.rows[converged]
                        data[done_rows, step, :] = x[converged]
                        histogram.observe_many(iteration, done_rows.size)
                        conv_events = damping_events[converged]
                        if conv_events.any():
                            conv_idx = np.nonzero(converged)[0]
                            for k in np.nonzero(conv_events)[0].tolist():
                                i = int(conv_idx[k])
                                events = int(damping_events[i])
                                damping_counter.inc(events)
                                obs.event(
                                    "spice.newton.damped",
                                    circuit=circuits[int(ctx.rows[i])].name,
                                    time=float(t_point), events=events)
                    if floor_any:
                        eject_now.extend(ctx.rows[floor].tolist())
                        histogram.observe_many(iteration, int(floor.sum()))
                        drop = converged | floor
                    elif conv_any:
                        drop = converged
                    else:
                        continue
                    keep = ~drop
                    if not keep.any():
                        break
                    ctx = ctx.mask(keep)
                    x = x[keep]
                    prev_delta = prev_delta[keep]
                    damping = damping[keep]
                    damping_events = damping_events[keep]
                else:
                    # Newton budget exhausted: the scalar path would
                    # raise ConvergenceError and walk the recovery
                    # ladder, which the batch does not replicate.
                    histogram.observe_many(budget, int(ctx.rows.size))
                    eject_now.extend(ctx.rows.tolist())
                if eject_now:
                    ejected.extend(eject_now)
                    eject_set = set(eject_now)
                    active = np.array(
                        [b for b in active.tolist() if b not in eject_set],
                        dtype=np.intp)
                    metrics.counter("spice.batch.ejected").inc(len(eject_now))
                    obs.event("spice.batch.ejected",
                              circuit=circuits[0].name,
                              time=float(t_point), samples=len(eject_now))
            if active.size:
                metrics.counter("spice.timesteps").inc(steps * active.size)
    except ReproError:
        raise
    except Exception:
        # A defect in the batch machinery must never take down a sweep
        # the scalar path could complete: eject everything still active
        # and let the scalar reruns produce the authoritative results
        # (or the authoritative per-sample exceptions).
        _log.exception("batch solver aborted; ejecting %d active samples",
                       active.size)
        obs.event("spice.batch.abort", circuit=circuits[0].name,
                  samples=int(active.size))
        if active.size:
            metrics.counter("spice.batch.ejected").inc(active.size)
            ejected.extend(active.tolist())
        active = np.empty(0, dtype=np.intp)
    survivors = set(active.tolist())
    outcomes: List[Outcome] = []
    for b in range(batch):
        if b in survivors:
            outcomes.append((True, TransientResult(
                circuit=circuits[b], time=times, data=data[b],
                node_index=dict(plan.systems[b].node_index),
                branch_index=dict(plan.systems[b].branch_index))))
        else:
            outcomes.append(scalar_run(b))
    return outcomes


def batch_transient_outcomes(
        circuits: Sequence[Circuit], t_stop: float, dt: float,
        initial_voltages: Any = None, integrator: str = "be",
        recovery: Optional[RecoveryConfig] = None,
        backend: str = "auto") -> List[Outcome]:
    """Simulate a stack of same-topology circuits, one outcome each.

    Returns ``(True, TransientResult)`` or ``(False, ReproError)`` per
    sample, in input order.  Results are bit-identical to per-sample
    :func:`repro.spice.transient.simulate_transient` calls — samples
    the batch cannot carry (and whole stacks it cannot represent) are
    transparently evaluated on the scalar path.  Configuration errors
    (bad time grid, unknown integrator) raise immediately; per-sample
    :class:`repro.errors.ReproError` failures are captured in the
    outcome list; any other exception propagates.

    ``backend`` is the linear-kernel selector of
    :func:`repro.spice.transient.simulate_transient`.  The batched
    sample-axis solver is inherently dense (it row-solves small
    per-sample systems), so when the backend resolves to ``"sparse"``
    for this topology the whole stack ejects to the scalar path — each
    sample then runs scalar-sparse, never scalar-dense.
    """
    _validate_time_grid(t_stop, dt)
    if integrator not in ("be", "trap"):
        raise SimulationError(f"unknown integrator {integrator!r}")
    stack = list(circuits)
    if not stack:
        return []
    initials = _normalize_initials(initial_voltages, len(stack))

    def scalar_run(b: int) -> Outcome:
        try:
            return (True, simulate_transient(
                stack[b], t_stop, dt, initial_voltages=initials[b],
                integrator=integrator, recovery=recovery,
                backend=backend))
        except ReproError as exc:
            return (False, exc)

    if backend not in ("dense", "sparse", "auto"):
        resolve_backend(backend, 0)  # raises ConfigurationError
    # MNA size without allocating the dense system: non-ground nodes
    # plus one branch current per voltage source.  The auto threshold
    # is compared inline so the decision counter stays owned by the
    # per-plan resolve_backend call inside each solve.
    size = len(stack[0].nodes()) + sum(
        1 for el in stack[0].elements if type(el) is VoltageSource)
    reason = None
    if backend == "sparse" or (backend == "auto"
                               and size >= SPARSE_AUTO_THRESHOLD):
        reason = "sparse backend solves per sample"
    elif len(stack) == 1:
        reason = "single sample"
    elif integrator == "trap":
        reason = "trapezoidal capacitor history is scalar-only"
    plan = None
    if reason is None:
        try:
            plan = BatchStampPlan(stack)
        except _BatchUnsupported as exc:
            reason = str(exc)
    if plan is None:
        obs.metrics().counter("spice.batch.fallback").inc(len(stack))
        obs.event("spice.batch.fallback", samples=len(stack), reason=reason)
        return [scalar_run(b) for b in range(len(stack))]
    return _run_batch(plan, t_stop, dt, initials, integrator, recovery,
                      scalar_run)


def simulate_transient_batch(
        circuits: Sequence[Circuit], t_stop: float, dt: float,
        initial_voltages: Any = None, integrator: str = "be",
        recovery: Optional[RecoveryConfig] = None,
        backend: str = "auto") -> List[TransientResult]:
    """Like :func:`batch_transient_outcomes`, raising the first
    (sample-order) captured failure instead of returning it."""
    results: List[TransientResult] = []
    for ok, payload in batch_transient_outcomes(
            circuits, t_stop, dt, initial_voltages=initial_voltages,
            integrator=integrator, recovery=recovery, backend=backend):
        if not ok:
            raise payload
        results.append(payload)
    return results


# -- the Monte-Carlo batching contract -----------------------------------------

class BatchTransientModel:
    """A Monte-Carlo model the batched solver knows how to stack.

    Subclasses implement ``draw`` (rng -> sample parameters), ``build``
    (parameters -> Circuit), optionally ``initial_voltages``, and
    ``measure`` (TransientResult -> float), plus the ``t_stop`` / ``dt``
    class attributes.  Calling the model with a generator runs one
    sample on the scalar path — that keeps a model instance directly
    usable by ``run_monte_carlo(model, ...)`` at ``batch=1`` — while
    :func:`eval_model_batch` stacks many draws through the batched
    solver with bit-identical results.
    """

    t_stop: float
    dt: float
    integrator: str = "be"
    recovery: Optional[RecoveryConfig] = None
    backend: str = "auto"

    def draw(self, rng: np.random.Generator) -> Any:
        raise NotImplementedError

    def build(self, params: Any) -> Circuit:
        raise NotImplementedError

    def initial_voltages(self, params: Any) -> Optional[Dict[str, float]]:
        return None

    def measure(self, result: TransientResult, params: Any) -> float:
        raise NotImplementedError

    def __call__(self, rng: np.random.Generator) -> float:
        params = self.draw(rng)
        result = simulate_transient(
            self.build(params), self.t_stop, self.dt,
            initial_voltages=self.initial_voltages(params),
            integrator=self.integrator, recovery=self.recovery,
            backend=self.backend)
        return self.measure(result, params)


@deterministic_under_seed
def eval_model_batch(model: BatchTransientModel,
                     rngs: Sequence[np.random.Generator]) -> List[Outcome]:
    """Evaluate one model over per-sample generators as a single batch.

    Each sample owns its generator (the SeedSequence-spawned child
    stream), so draw order is independent of batching and the returned
    measurements are bit-identical to looping ``model(rng)`` serially.
    Per-sample ``ReproError`` failures — in ``draw``/``build``, the
    solve, or ``measure`` — are captured per outcome.
    """
    count = len(rngs)
    outcomes: List[Optional[Outcome]] = [None] * count
    built: List[int] = []
    circuits: List[Circuit] = []
    initials: List[Optional[Dict[str, float]]] = []
    params_by_sample: List[Any] = [None] * count
    for i, rng in enumerate(rngs):
        try:
            params = model.draw(rng)
            circuits.append(model.build(params))
            initials.append(model.initial_voltages(params))
        except ReproError as exc:
            outcomes[i] = (False, exc)
            continue
        params_by_sample[i] = params
        built.append(i)
    if built:
        solved = batch_transient_outcomes(
            circuits, model.t_stop, model.dt, initial_voltages=initials,
            integrator=model.integrator, recovery=model.recovery,
            backend=getattr(model, "backend", "auto"))
        for i, (ok, payload) in zip(built, solved):
            if not ok:
                outcomes[i] = (False, payload)
                continue
            try:
                outcomes[i] = (
                    True, float(model.measure(payload,
                                              params_by_sample[i])))
            except ReproError as exc:
                outcomes[i] = (False, exc)
    assert all(outcome is not None for outcome in outcomes)
    return outcomes  # type: ignore[return-value]
