"""Linear circuit elements and independent sources.

Waveforms are plain callables ``time -> value``; :func:`dc`,
:func:`pulse` and :func:`pwl` build the common ones.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, List, Sequence, Tuple

from repro.errors import ConfigurationError, NetlistError
from repro.spice.mna import StampContext
from repro.spice.netlist import CircuitElement

Waveform = Callable[[float], float]


def dc(value: float) -> Waveform:
    """Constant waveform."""
    return lambda _t: value


def pulse(low: float, high: float, delay: float, rise: float,
          width: float, fall: float | None = None,
          period: float | None = None) -> Waveform:
    """SPICE-style pulse: low until ``delay``, ramp to high over ``rise``,
    hold ``width``, ramp back over ``fall``; optionally periodic."""
    fall = rise if fall is None else fall
    if min(rise, fall) <= 0 or width < 0 or delay < 0:
        raise ConfigurationError("pulse needs positive edges and non-negative times")
    cycle = delay + rise + width + fall

    def waveform(t: float) -> float:
        if period is not None and t > delay:
            t = delay + (t - delay) % period
        if t <= delay:
            return low
        t -= delay
        if t < rise:
            return low + (high - low) * t / rise
        t -= rise
        if t < width:
            return high
        t -= width
        if t < fall:
            return high + (low - high) * t / fall
        return low

    if period is not None and period < cycle - delay:
        raise ConfigurationError("pulse period shorter than one pulse")
    return waveform


def pwl(points: Sequence[Tuple[float, float]]) -> Waveform:
    """Piece-wise linear waveform through ``(time, value)`` points."""
    if len(points) < 1:
        raise ConfigurationError("pwl needs at least one point")
    times = [t for t, _v in points]
    if any(b <= a for a, b in zip(times, times[1:])):
        raise ConfigurationError("pwl times must be strictly increasing")
    values = [v for _t, v in points]

    def waveform(t: float) -> float:
        if t <= times[0]:
            return values[0]
        if t >= times[-1]:
            return values[-1]
        idx = bisect.bisect_right(times, t)
        t0, t1 = times[idx - 1], times[idx]
        v0, v1 = values[idx - 1], values[idx]
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    return waveform


class Resistor(CircuitElement):
    """Linear resistor."""

    def __init__(self, name: str, node_a: str, node_b: str, resistance: float) -> None:
        super().__init__(name)
        if resistance <= 0:
            raise ConfigurationError(f"resistance must be positive, got {resistance}")
        self.node_a, self.node_b = node_a, node_b
        self.resistance = resistance

    def terminals(self) -> List[str]:
        return [self.node_a, self.node_b]

    def stamp(self, ctx: StampContext) -> None:
        ctx.system.stamp_conductance(self.node_a, self.node_b, 1.0 / self.resistance)

    def current(self, v_a: float, v_b: float) -> float:
        """Current flowing a -> b."""
        return (v_a - v_b) / self.resistance


class Capacitor(CircuitElement):
    """Linear capacitor with optional initial condition.

    In transient analysis the capacitor is replaced by its companion
    model (conductance + history current); in DC it is an open circuit
    (with a gmin leak so nodes connected only by capacitors still solve).
    """

    def __init__(self, name: str, node_a: str, node_b: str, capacitance: float,
                 initial_voltage: float | None = None) -> None:
        """``capacitance`` in farads; ``initial_voltage`` in volts
        (``None`` lets the DC solve choose it)."""
        super().__init__(name)
        if capacitance <= 0:
            raise ConfigurationError(f"capacitance must be positive, got {capacitance}")
        self.node_a, self.node_b = node_a, node_b
        self.capacitance = capacitance
        self.initial_voltage = initial_voltage

    def terminals(self) -> List[str]:
        return [self.node_a, self.node_b]

    def terminal_roles(self) -> List[Tuple[str, str]]:
        return [(self.node_a, "capacitive"), (self.node_b, "capacitive")]

    def stamp(self, ctx: StampContext) -> None:
        if ctx.dt is None:
            ctx.system.stamp_conductance(self.node_a, self.node_b, ctx.gmin)
            return
        v_prev = ctx.voltage(self.node_a, previous=True) - ctx.voltage(
            self.node_b, previous=True
        )
        if ctx.integrator == "trap":
            geq = 2.0 * self.capacitance / ctx.dt
            i_prev = 0.0 if ctx.cap_state is None else ctx.cap_state.get(self.name, 0.0)
            ieq = geq * v_prev + i_prev
        else:  # backward Euler
            geq = self.capacitance / ctx.dt
            ieq = geq * v_prev
        ctx.system.stamp_conductance(self.node_a, self.node_b, geq)
        # History current flows b -> a (it opposes discharging).
        ctx.system.stamp_current(self.node_b, self.node_a, ieq)

    def branch_current(self, ctx: StampContext, x_new) -> float:
        """Current a -> b at the accepted solution ``x_new`` (for trap state)."""
        if ctx.dt is None:
            return 0.0
        system = ctx.system

        def v(vector, node):
            idx = system.index(node)
            return 0.0 if idx < 0 else float(vector[idx])

        v_new = v(x_new, self.node_a) - v(x_new, self.node_b)
        v_prev = ctx.voltage(self.node_a, previous=True) - ctx.voltage(
            self.node_b, previous=True
        )
        if ctx.integrator == "trap":
            i_prev = 0.0 if ctx.cap_state is None else ctx.cap_state.get(self.name, 0.0)
            return 2.0 * self.capacitance / ctx.dt * (v_new - v_prev) - i_prev
        return self.capacitance / ctx.dt * (v_new - v_prev)


class VoltageSource(CircuitElement):
    """Independent voltage source; the branch current flows p -> n inside
    the source, so a source *delivering* power has a negative branch
    current."""

    def __init__(self, name: str, node_p: str, node_n: str,
                 waveform: Waveform) -> None:
        super().__init__(name)
        self.node_p, self.node_n = node_p, node_n
        self.waveform = waveform

    def terminals(self) -> List[str]:
        return [self.node_p, self.node_n]

    def terminal_roles(self) -> List[Tuple[str, str]]:
        return [(self.node_p, "constraint"), (self.node_n, "constraint")]

    def is_source(self) -> bool:
        return True

    def stamp(self, ctx: StampContext) -> None:
        ctx.system.stamp_voltage_source(
            self.name, self.node_p, self.node_n,
            self.waveform(ctx.time) * ctx.source_scale
        )


class CurrentSource(CircuitElement):
    """Independent current source pushing current from -> to."""

    def __init__(self, name: str, node_from: str, node_to: str,
                 waveform: Waveform) -> None:
        super().__init__(name)
        self.node_from, self.node_to = node_from, node_to
        self.waveform = waveform

    def terminals(self) -> List[str]:
        return [self.node_from, self.node_to]

    def terminal_roles(self) -> List[Tuple[str, str]]:
        return [(self.node_from, "injection"), (self.node_to, "injection")]

    def stamp(self, ctx: StampContext) -> None:
        ctx.system.stamp_current(self.node_from, self.node_to,
                                 self.waveform(ctx.time) * ctx.source_scale)


class Diode(CircuitElement):
    """Exponential junction diode (Shockley, companion-model stamped).

    ``i = i_sat * (exp(v / v_t) - 1)`` from anode to cathode, linearised
    each Newton iteration around the present voltage.  The exponential
    is clamped above ``v_clip`` (linear continuation) so a bad Newton
    step cannot overflow — the classic stiff element that motivates the
    recovery ladder: plain Newton from a cold start overshoots, while
    gmin or source stepping walks in gradually.
    """

    def __init__(self, name: str, anode: str, cathode: str,
                 i_sat: float = 1e-14, v_t: float = 0.02585,  # noqa: L101 - thermal voltage, volts
                 v_clip: float = 0.9) -> None:
        super().__init__(name)
        if i_sat <= 0 or v_t <= 0:
            raise ConfigurationError("diode needs positive i_sat and v_t")
        self.anode, self.cathode = anode, cathode
        self.i_sat, self.v_t = i_sat, v_t
        self.v_clip = v_clip

    def terminals(self) -> List[str]:
        return [self.anode, self.cathode]

    def terminal_roles(self) -> List[Tuple[str, str]]:
        return [(self.anode, "conductive"), (self.cathode, "conductive")]

    def is_nonlinear(self) -> bool:
        return True

    def current_and_conductance(self, v: float) -> Tuple[float, float]:
        """(i, di/dv) at forward voltage ``v``, with the overflow clamp."""
        if v <= self.v_clip:
            e = math.exp(v / self.v_t)
            return self.i_sat * (e - 1.0), self.i_sat * e / self.v_t
        # Linear continuation beyond the clip keeps Newton finite.
        e = math.exp(self.v_clip / self.v_t)
        g = self.i_sat * e / self.v_t
        i = self.i_sat * (e - 1.0) + g * (v - self.v_clip)
        return i, g

    def stamp(self, ctx: StampContext) -> None:
        v = ctx.voltage(self.anode) - ctx.voltage(self.cathode)
        i, g = self.current_and_conductance(v)
        ctx.system.stamp_conductance(self.anode, self.cathode, g)
        # Companion current source carries the linearisation residue.
        ctx.system.stamp_current(self.anode, self.cathode, i - g * v)


class Switch(CircuitElement):
    """Voltage-controlled switch with a smooth on/off transition.

    The conductance interpolates between on and off with a logistic curve
    of width ``transition`` around ``threshold`` so Newton iteration
    stays differentiable.  Used for ideal precharge/equalise devices
    where a full MOSFET model would be noise.
    """

    def __init__(self, name: str, node_a: str, node_b: str,
                 ctrl_p: str, ctrl_n: str, threshold: float = 0.6,
                 r_on: float = 100.0, r_off: float = 1e12,  # noqa: L101 - ideal open, ohms
                 transition: float = 0.02) -> None:
        super().__init__(name)
        if r_on <= 0 or r_off <= r_on:
            raise ConfigurationError("switch needs 0 < r_on < r_off")
        if transition <= 0:
            raise ConfigurationError("switch transition width must be positive")
        self.node_a, self.node_b = node_a, node_b
        self.ctrl_p, self.ctrl_n = ctrl_p, ctrl_n
        self.threshold = threshold
        self.g_on, self.g_off = 1.0 / r_on, 1.0 / r_off
        self.transition = transition

    def terminals(self) -> List[str]:
        return [self.node_a, self.node_b, self.ctrl_p, self.ctrl_n]

    def terminal_roles(self) -> List[Tuple[str, str]]:
        return [(self.node_a, "conductive"), (self.node_b, "conductive"),
                (self.ctrl_p, "sense"), (self.ctrl_n, "sense")]

    def is_nonlinear(self) -> bool:
        return True

    def conductance(self, v_ctrl: float) -> float:
        arg = (v_ctrl - self.threshold) / self.transition
        # Logistic, clamped to avoid overflow.
        if arg > 40:
            frac = 1.0
        elif arg < -40:
            frac = 0.0
        else:
            frac = 1.0 / (1.0 + math.exp(-arg))
        return self.g_off + (self.g_on - self.g_off) * frac

    def stamp(self, ctx: StampContext) -> None:
        v_ctrl = ctx.voltage(self.ctrl_p) - ctx.voltage(self.ctrl_n)
        ctx.system.stamp_conductance(self.node_a, self.node_b,
                                     self.conductance(v_ctrl))
