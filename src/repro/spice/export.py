"""Waveform export.

SPICE results become useful outside the library as plain CSV; this
module serialises a :class:`~repro.spice.transient.TransientResult`
with explicit column selection, so examples and external plotting can
consume the local-block waveforms (paper Fig. 3) directly.
"""

from __future__ import annotations

import io
import pathlib
from typing import Sequence

from repro.errors import SimulationError
from repro.spice.transient import TransientResult
from repro.units import ns


def waveforms_to_csv(result: TransientResult,
                     nodes: Sequence[str],
                     time_unit: float = 1 * ns,
                     voltage_unit: float = 1.0) -> str:
    """Serialise node waveforms to CSV text.

    Columns: ``time`` (in ``time_unit`` seconds) followed by one column
    per node (in ``voltage_unit`` volts).  Unknown nodes raise before
    any output is produced.
    """
    if not nodes:
        raise SimulationError("select at least one node to export")
    if time_unit <= 0 or voltage_unit <= 0:
        raise SimulationError("units must be positive")
    waves = [result.voltage(node) for node in nodes]  # validates names
    buffer = io.StringIO()
    buffer.write("time," + ",".join(nodes) + "\n")
    for index, time in enumerate(result.time):
        values = ",".join(f"{wave[index] / voltage_unit:.6g}"
                          for wave in waves)
        buffer.write(f"{time / time_unit:.6g},{values}\n")
    return buffer.getvalue()


def save_waveforms(result: TransientResult, nodes: Sequence[str],
                   path: str | pathlib.Path,
                   time_unit: float = 1 * ns) -> pathlib.Path:
    """Write :func:`waveforms_to_csv` output to ``path``; returns it."""
    path = pathlib.Path(path)
    path.write_text(waveforms_to_csv(result, nodes, time_unit=time_unit))
    return path
