"""Shared dense LU factorisation for the MNA solvers.

Every solve in :mod:`repro.spice` — the legacy per-iterate path, the
compiled :class:`~repro.spice.stampplan.StampPlan` fast path, DC and
transient alike — routes through this module.  That single-kernel rule
is what makes the fast path *bit-identical* to the legacy path: an
identical matrix factorised by the same routine yields the identical
solution, so caching a factorisation can never change a waveform.

The kernel is :func:`scipy.linalg.lu_factor` when SciPy is available
and a pure-numpy partial-pivoting fallback otherwise.  Exact zero
pivots raise :class:`numpy.linalg.LinAlgError` (matching the historic
``np.linalg.solve`` behaviour on singular systems); near-singular
warnings are suppressed — the structural diagnosis belongs to the
caller (:meth:`repro.spice.mna.MnaSystem.solve`).

The ``*_batch`` variants factorise a ``(B, n, n)`` stack.  With LAPACK
they loop ``dgetrf`` per sample (the per-sample kernel already
saturates a core at MNA sizes); without SciPy the Doolittle fallback is
vectorised over the batch axis, with every elementwise operation kept
identical to :func:`_numpy_lu` so each sample's factors match the
scalar fallback to the last bit.  A singular sample yields ``None`` in
the returned list instead of raising, because the batched Newton driver
must eject that one sample, not kill the whole stack.
:func:`solve_fresh_row` / :func:`lu_backsolve_into` are the hot-loop
variants: a fused factor+solve for rows whose matrix changed, and an
in-place substitution for rows whose cached factors still apply.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

try:
    # The raw LAPACK bindings skip scipy.linalg.lu_factor's per-call
    # validation wrappers (~half the solve cost at MNA sizes) while
    # running the exact same dgetrf/dgetrs kernels underneath.
    from scipy.linalg.lapack import (dgesv as _dgesv, dgetrf as _dgetrf,
                                     dgetrs as _dgetrs)
    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - the CI image ships scipy
    _dgesv = _dgetrf = _dgetrs = None
    _HAVE_SCIPY = False

#: Opaque factorisation handle: ("lapack"|"numpy", lu, piv).
LuFactors = Tuple[str, np.ndarray, np.ndarray]


def lu_factorize(matrix: np.ndarray) -> LuFactors:
    """LU-factorise ``matrix`` with partial pivoting.

    Raises :class:`numpy.linalg.LinAlgError` on an exactly singular
    matrix (zero pivot), like ``np.linalg.solve`` used to.
    """
    if _HAVE_SCIPY:
        lu, piv, info = _dgetrf(matrix)
        if info != 0:
            raise np.linalg.LinAlgError(
                "singular matrix (zero pivot)" if info > 0
                else f"illegal dgetrf argument {-info}")
        return ("lapack", lu, piv)
    lu, piv = _numpy_lu(matrix)
    return ("numpy", lu, piv)


def lu_backsolve(factors: LuFactors, rhs: np.ndarray) -> np.ndarray:
    """Solve ``A x = rhs`` given :func:`lu_factorize` output."""
    kind, lu, piv = factors
    if kind == "lapack":
        x, info = _dgetrs(lu, piv, rhs)
        if info != 0:  # pragma: no cover - factors are always consistent
            raise np.linalg.LinAlgError(f"illegal dgetrs argument {-info}")
        return x
    return _numpy_backsolve(lu, piv, rhs)


def lu_solve_dense(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """One-shot factorise + solve (the uncached legacy entry point)."""
    return lu_backsolve(lu_factorize(matrix), rhs)


def _numpy_lu(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Doolittle LU with partial pivoting, LAPACK-style pivot vector."""
    a = np.array(matrix, dtype=float, copy=True)
    n = a.shape[0]
    if a.shape != (n, n):
        raise np.linalg.LinAlgError("matrix must be square")
    piv = np.arange(n)
    for k in range(n):
        p = k + int(np.argmax(np.abs(a[k:, k])))
        if a[p, k] == 0.0:  # noqa: L102 - exact zero pivot is the singular case
            raise np.linalg.LinAlgError("singular matrix (zero pivot)")
        piv[k] = p
        if p != k:
            a[[k, p], :] = a[[p, k], :]
        a[k + 1:, k] /= a[k, k]
        a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    return a, piv


def lu_factorize_batch(matrices: np.ndarray) -> List[Optional[LuFactors]]:
    """LU-factorise a ``(B, n, n)`` stack, one entry per sample.

    A singular sample (exact zero pivot, exactly the condition
    :func:`lu_factorize` raises on) produces ``None`` at its position
    instead of raising — the batched Newton driver ejects that sample
    to the scalar path, which re-raises the structural diagnosis.

    Every returned factorisation is bit-identical to calling
    :func:`lu_factorize` on the corresponding ``matrices[b]``: the
    LAPACK branch literally loops the scalar kernel, and the numpy
    branch performs the same elementwise IEEE operations as
    :func:`_numpy_lu` with dead (singular) samples masked out.
    """
    stack = np.asarray(matrices, dtype=float)
    if stack.ndim != 3 or stack.shape[1] != stack.shape[2]:
        raise np.linalg.LinAlgError("expected a (B, n, n) stack")
    if _HAVE_SCIPY:
        out: List[Optional[LuFactors]] = []
        for sample in stack:
            lu, piv, info = _dgetrf(np.ascontiguousarray(sample))
            out.append(("lapack", lu, piv) if info == 0 else None)
        return out
    return _numpy_lu_batch(stack)


def lu_backsolve_batch(factors: List[Optional[LuFactors]],
                       rhs_stack: np.ndarray) -> np.ndarray:
    """Solve one RHS per sample given :func:`lu_factorize_batch` output.

    Substitution is deliberately looped per sample: a vectorised
    triangular solve would change the BLAS reduction order inside
    ``ddot`` and break bit-identity with the scalar path.  Rows with
    ``None`` factors come back as NaN (the caller ejects them first).
    """
    rhs = np.ascontiguousarray(rhs_stack, dtype=float)
    solution = np.full_like(rhs, np.nan)
    for row, sample_factors in enumerate(factors):
        if sample_factors is not None:
            solution[row] = lu_backsolve(sample_factors, rhs[row])
    return solution


if _HAVE_SCIPY:
    def solve_fresh_row(matrix: np.ndarray,
                        rhs_row: np.ndarray) -> Optional[LuFactors]:
        """Factorise + solve in one LAPACK call, in place into ``rhs_row``.

        ``dgesv`` runs dgetrf followed by dgetrs internally, so both
        the returned factors and the solution written into ``rhs_row``
        are bit-identical to the separate :func:`lu_factorize` /
        :func:`lu_backsolve` calls (verified on this platform) at one
        f2py round-trip instead of two — the batched Newton driver
        refactors nearly every iterate, so the fused call is its hot
        path.  Returns reusable factors, or ``None`` on a singular
        matrix (``rhs_row`` is garbage in that case; the caller ejects
        the sample).
        """
        lu, piv, x, info = _dgesv(matrix, rhs_row, overwrite_b=1)
        if info != 0:
            if info < 0:  # pragma: no cover - arguments are consistent
                raise np.linalg.LinAlgError(
                    f"illegal dgesv argument {-info}")
            return None
        if x is not rhs_row:  # pragma: no cover - non-contiguous input
            rhs_row[:] = x
        return ("lapack", lu, piv)
    def solve_fresh_row_t(matrix_t: np.ndarray,
                          rhs_row: np.ndarray) -> Optional[LuFactors]:
        """:func:`solve_fresh_row` taking the *transposed* matrix.

        ``matrix_t`` holds ``A.T`` C-contiguously, so ``matrix_t.T`` is
        ``A`` in Fortran order — exactly LAPACK's native layout — and
        ``overwrite_a=1`` lets dgetrf factor in place with no copy.
        The factorisation is the same kernel on the same values, so
        ``x``, ``piv`` and the dgetrs-reusable ``lu`` are bit-identical
        to the C-order call (verified on this platform); the caller
        must own ``matrix_t`` (its buffer becomes the factors).
        """
        lu, piv, x, info = _dgesv(matrix_t.T, rhs_row,
                                  overwrite_a=1, overwrite_b=1)
        if info != 0:
            if info < 0:  # pragma: no cover - arguments are consistent
                raise np.linalg.LinAlgError(
                    f"illegal dgesv argument {-info}")
            return None
        if x is not rhs_row:  # pragma: no cover - non-contiguous input
            rhs_row[:] = x
        return ("lapack", lu, piv)

    def solve_rows_t_into(matrices_t: np.ndarray,
                          rhs: np.ndarray) -> List[int]:
        """Fused factor+solve for every row of a transposed stack.

        Runs the exact :func:`solve_fresh_row_t` kernel on each
        ``(matrices_t[i], rhs[i])`` pair — same calls, same bits — in
        one Python frame instead of one per row, which is the dominant
        non-LAPACK cost at batched-Newton call rates (every live row
        refactors nearly every iterate once the reuse probation in the
        batch solver expires).  Solutions land in ``rhs`` rows in
        place; the factors are discarded, so ``matrices_t`` is consumed
        as scratch.  Returns the singular row indices (their ``rhs``
        rows are garbage; the caller ejects those samples).
        """
        bad: List[int] = []
        # zip iteration yields the row views without per-row integer
        # indexing, which is measurable at ~50k rows per run.
        for i, (mat_t, row) in enumerate(zip(matrices_t, rhs)):
            lu, piv, x, info = _dgesv(mat_t.T, row,
                                      overwrite_a=1, overwrite_b=1)
            if info != 0:
                if info < 0:  # pragma: no cover - args are consistent
                    raise np.linalg.LinAlgError(
                        f"illegal dgesv argument {-info}")
                bad.append(i)
            elif x is not row:  # pragma: no cover - non-contiguous input
                row[:] = x
        return bad
else:  # pragma: no cover - the CI image ships scipy
    def solve_fresh_row(matrix: np.ndarray,
                        rhs_row: np.ndarray) -> Optional[LuFactors]:
        """Numpy twin of the fused factor+solve (scalar kernels)."""
        try:
            lu, piv = _numpy_lu(matrix)
        except np.linalg.LinAlgError:
            return None
        rhs_row[:] = _numpy_backsolve(lu, piv, rhs_row)
        return ("numpy", lu, piv)

    def solve_fresh_row_t(matrix_t: np.ndarray,
                          rhs_row: np.ndarray) -> Optional[LuFactors]:
        """Numpy twin: un-transpose and run the scalar kernels."""
        return solve_fresh_row(matrix_t.T, rhs_row)

    def solve_rows_t_into(matrices_t: np.ndarray,
                          rhs: np.ndarray) -> List[int]:
        """Numpy twin: the scalar kernel per row, factors discarded."""
        return [i for i in range(rhs.shape[0])
                if solve_fresh_row_t(matrices_t[i], rhs[i]) is None]


def lu_backsolve_into(factors: LuFactors, rhs_row: np.ndarray) -> None:
    """Solve ``A x = rhs_row`` in place into contiguous 1-D ``rhs_row``.

    Runs the exact kernels of :func:`lu_backsolve`; LAPACK's in-place
    path (``overwrite_b``) writes the identical solution bits without
    allocating an output vector, which matters at batched-Newton call
    rates (one backsolve per live sample per iterate).
    """
    kind, lu, piv = factors
    if kind == "lapack":
        x, info = _dgetrs(lu, piv, rhs_row, overwrite_b=1)
        if info != 0:  # pragma: no cover - factors are always consistent
            raise np.linalg.LinAlgError(f"illegal dgetrs argument {-info}")
        if x is not rhs_row:  # pragma: no cover - non-contiguous input
            rhs_row[:] = x
        return
    rhs_row[:] = _numpy_backsolve(lu, piv, rhs_row)


def _numpy_lu_batch(stack: np.ndarray) -> List[Optional[LuFactors]]:
    """Doolittle over the batch axis, elementwise-equal to `_numpy_lu`.

    The update expressions are the batched transliteration of the
    scalar fallback: every multiply/divide/subtract touches the same
    operand pairs in the same order, so live samples factor to the
    same bits.  Samples that hit a zero pivot are marked dead; their
    rows keep computing (division warnings suppressed) but the garbage
    never escapes because dead entries return ``None``.
    """
    a = np.array(stack, dtype=float, copy=True)
    batch, n = a.shape[0], a.shape[1]
    piv = np.tile(np.arange(n), (batch, 1))
    alive = np.ones(batch, dtype=bool)
    rows = np.arange(batch)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        for k in range(n):
            p = k + np.argmax(np.abs(a[:, k:, k]), axis=1)
            pivot_vals = a[rows, p, k]
            alive &= pivot_vals != 0.0  # noqa: L102 - exact zero pivot
            piv[:, k] = p
            swap = np.nonzero(p != k)[0]
            if swap.size:
                upper = a[swap, k, :].copy()
                a[swap, k, :] = a[swap, p[swap], :]
                a[swap, p[swap], :] = upper
            a[:, k + 1:, k] /= a[:, k, k][:, None]
            a[:, k + 1:, k + 1:] -= (
                a[:, k + 1:, k, None] * a[:, k, None, k + 1:])
    return [("numpy", a[b], piv[b]) if alive[b] else None
            for b in range(batch)]


def _numpy_backsolve(lu: np.ndarray, piv: np.ndarray,
                     rhs: np.ndarray) -> np.ndarray:
    n = lu.shape[0]
    x = np.array(rhs, dtype=float, copy=True)
    for k in range(n):  # apply the recorded row swaps
        p = int(piv[k])
        if p != k:
            x[k], x[p] = x[p], x[k]
    for k in range(1, n):  # forward substitution (unit lower)
        x[k] -= lu[k, :k] @ x[:k]
    for k in range(n - 1, -1, -1):  # back substitution
        x[k] = (x[k] - lu[k, k + 1:] @ x[k + 1:]) / lu[k, k]
    return x
