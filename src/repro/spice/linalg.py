"""Shared dense LU factorisation for the MNA solvers.

Every solve in :mod:`repro.spice` — the legacy per-iterate path, the
compiled :class:`~repro.spice.stampplan.StampPlan` fast path, DC and
transient alike — routes through this module.  That single-kernel rule
is what makes the fast path *bit-identical* to the legacy path: an
identical matrix factorised by the same routine yields the identical
solution, so caching a factorisation can never change a waveform.

The kernel is :func:`scipy.linalg.lu_factor` when SciPy is available
and a pure-numpy partial-pivoting fallback otherwise.  Exact zero
pivots raise :class:`numpy.linalg.LinAlgError` (matching the historic
``np.linalg.solve`` behaviour on singular systems); near-singular
warnings are suppressed — the structural diagnosis belongs to the
caller (:meth:`repro.spice.mna.MnaSystem.solve`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

try:
    # The raw LAPACK bindings skip scipy.linalg.lu_factor's per-call
    # validation wrappers (~half the solve cost at MNA sizes) while
    # running the exact same dgetrf/dgetrs kernels underneath.
    from scipy.linalg.lapack import dgetrf as _dgetrf, dgetrs as _dgetrs
    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - the CI image ships scipy
    _dgetrf = _dgetrs = None
    _HAVE_SCIPY = False

#: Opaque factorisation handle: ("lapack"|"numpy", lu, piv).
LuFactors = Tuple[str, np.ndarray, np.ndarray]


def lu_factorize(matrix: np.ndarray) -> LuFactors:
    """LU-factorise ``matrix`` with partial pivoting.

    Raises :class:`numpy.linalg.LinAlgError` on an exactly singular
    matrix (zero pivot), like ``np.linalg.solve`` used to.
    """
    if _HAVE_SCIPY:
        lu, piv, info = _dgetrf(matrix)
        if info != 0:
            raise np.linalg.LinAlgError(
                "singular matrix (zero pivot)" if info > 0
                else f"illegal dgetrf argument {-info}")
        return ("lapack", lu, piv)
    lu, piv = _numpy_lu(matrix)
    return ("numpy", lu, piv)


def lu_backsolve(factors: LuFactors, rhs: np.ndarray) -> np.ndarray:
    """Solve ``A x = rhs`` given :func:`lu_factorize` output."""
    kind, lu, piv = factors
    if kind == "lapack":
        x, info = _dgetrs(lu, piv, rhs)
        if info != 0:  # pragma: no cover - factors are always consistent
            raise np.linalg.LinAlgError(f"illegal dgetrs argument {-info}")
        return x
    return _numpy_backsolve(lu, piv, rhs)


def lu_solve_dense(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """One-shot factorise + solve (the uncached legacy entry point)."""
    return lu_backsolve(lu_factorize(matrix), rhs)


def _numpy_lu(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Doolittle LU with partial pivoting, LAPACK-style pivot vector."""
    a = np.array(matrix, dtype=float, copy=True)
    n = a.shape[0]
    if a.shape != (n, n):
        raise np.linalg.LinAlgError("matrix must be square")
    piv = np.arange(n)
    for k in range(n):
        p = k + int(np.argmax(np.abs(a[k:, k])))
        if a[p, k] == 0.0:  # noqa: L102 - exact zero pivot is the singular case
            raise np.linalg.LinAlgError("singular matrix (zero pivot)")
        piv[k] = p
        if p != k:
            a[[k, p], :] = a[[p, k], :]
        a[k + 1:, k] /= a[k, k]
        a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    return a, piv


def _numpy_backsolve(lu: np.ndarray, piv: np.ndarray,
                     rhs: np.ndarray) -> np.ndarray:
    n = lu.shape[0]
    x = np.array(rhs, dtype=float, copy=True)
    for k in range(n):  # apply the recorded row swaps
        p = int(piv[k])
        if p != k:
            x[k], x[p] = x[p], x[k]
    for k in range(1, n):  # forward substitution (unit lower)
        x[k] -= lu[k, :k] @ x[:k]
    for k in range(n - 1, -1, -1):  # back substitution
        x[k] = (x[k] - lu[k, k + 1:] @ x[k + 1:]) / lu[k, k]
    return x
