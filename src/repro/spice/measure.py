"""Waveform measurements.

These mirror the ``.measure`` statements a SPICE deck would carry:
threshold crossings, delays between edges, swings, and charge/energy
delivered by supplies (the quantity behind every energy figure in the
paper).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

_trapezoid = getattr(np, "trapezoid", getattr(np, "trapz", None))
from repro.spice.transient import TransientResult


def crossing_time(result: TransientResult, node: str, level: float,
                  direction: str = "any", start: float = 0.0) -> float:
    """First time ``node`` crosses ``level`` after ``start``.

    ``direction`` is ``"rise"``, ``"fall"`` or ``"any"``.  Linear
    interpolation between samples.  Raises if the crossing never happens.
    """
    if direction not in ("rise", "fall", "any"):
        raise SimulationError(f"unknown direction {direction!r}")
    t = result.time
    v = result.voltage(node)
    mask = t >= start
    t, v = t[mask], v[mask]
    if len(t) < 2:
        raise SimulationError("not enough samples after start time")
    above = v >= level
    for i in range(1, len(t)):
        if above[i] == above[i - 1]:
            continue
        rising = above[i] and not above[i - 1]
        if direction == "rise" and not rising:
            continue
        if direction == "fall" and rising:
            continue
        dv = v[i] - v[i - 1]
        if dv == 0:
            return float(t[i])
        frac = (level - v[i - 1]) / dv
        return float(t[i - 1] + frac * (t[i] - t[i - 1]))
    raise SimulationError(
        f"node {node!r} never crosses {level} V ({direction}) after {start:g}s"
    )


def delay_between(result: TransientResult, node_from: str, node_to: str,
                  level_from: float, level_to: float,
                  direction_from: str = "any", direction_to: str = "any",
                  start: float = 0.0) -> float:
    """Delay from an edge on ``node_from`` to the next edge on ``node_to``."""
    t0 = crossing_time(result, node_from, level_from, direction_from, start)
    t1 = crossing_time(result, node_to, level_to, direction_to, t0)
    return t1 - t0


def signal_swing(result: TransientResult, node: str,
                 start: float = 0.0) -> float:
    """Peak-to-peak excursion of ``node`` after ``start``."""
    mask = result.time >= start
    v = result.voltage(node)[mask]
    if len(v) == 0:
        raise SimulationError("no samples after start time")
    return float(np.max(v) - np.min(v))


def source_charge(result: TransientResult, source_name: str,
                  start: float = 0.0, stop: float | None = None) -> float:
    """Charge *delivered* by a voltage source over [start, stop], coulombs.

    The MNA branch current flows p -> n inside the source, so delivered
    charge integrates the negated branch current.
    """
    t = result.time
    i = -result.branch_current(source_name)
    mask = t >= start
    if stop is not None:
        mask &= t <= stop
    if mask.sum() < 2:
        raise SimulationError("integration window contains < 2 samples")
    return float(_trapezoid(i[mask], t[mask]))


def source_energy(result: TransientResult, source_name: str,
                  start: float = 0.0, stop: float | None = None) -> float:
    """Energy delivered by a voltage source over [start, stop], joules."""
    element = result.circuit.element(source_name)
    t = result.time
    i = -result.branch_current(source_name)
    v_p = result.voltage(element.node_p)
    v_n = result.voltage(element.node_n)
    power = (v_p - v_n) * i
    mask = t >= start
    if stop is not None:
        mask &= t <= stop
    if mask.sum() < 2:
        raise SimulationError("integration window contains < 2 samples")
    return float(_trapezoid(power[mask], t[mask]))
