"""Modified nodal analysis assembly.

The MNA unknown vector stacks the non-ground node voltages followed by
one branch current per voltage source.  Elements add their contribution
through the small stamping API of :class:`MnaSystem`; nonlinear elements
are re-stamped on every Newton iterate with their linearised companion
model.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.errors import NetlistError, SimulationError
from repro.spice.netlist import GROUND, Circuit


class MnaSystem:
    """The dense MNA matrix/RHS under assembly for one solve."""

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        self.node_index: Dict[str, int] = {
            node: i for i, node in enumerate(circuit.nodes())
        }
        self.branch_index: Dict[str, int] = {}
        offset = len(self.node_index)
        for element in circuit.elements:
            if element.is_source():
                self.branch_index[element.name] = offset
                offset += 1
        self.size = offset
        self.matrix = np.zeros((self.size, self.size))
        self.rhs = np.zeros(self.size)

    # -- index helpers ---------------------------------------------------------

    def index(self, node: str) -> int:
        """Index of ``node`` in the unknown vector; -1 for ground."""
        if node == GROUND:
            return -1
        try:
            return self.node_index[node]
        except KeyError as exc:
            raise NetlistError(f"unknown node {node!r}") from exc

    def branch(self, source_name: str) -> int:
        try:
            return self.branch_index[source_name]
        except KeyError as exc:
            raise NetlistError(f"{source_name!r} is not a source element") from exc

    def reset(self) -> None:
        self.matrix[:] = 0.0
        self.rhs[:] = 0.0

    # -- stamping primitives -----------------------------------------------------

    def stamp_conductance(self, node_a: str, node_b: str, g: float) -> None:
        """Stamp conductance ``g`` between two nodes."""
        ia, ib = self.index(node_a), self.index(node_b)
        if ia >= 0:
            self.matrix[ia, ia] += g
        if ib >= 0:
            self.matrix[ib, ib] += g
        if ia >= 0 and ib >= 0:
            self.matrix[ia, ib] -= g
            self.matrix[ib, ia] -= g

    def stamp_transconductance(self, out_a: str, out_b: str,
                               in_a: str, in_b: str, gm: float) -> None:
        """Stamp ``gm``: current gm*(V(in_a)-V(in_b)) flowing out_a -> out_b."""
        oa, ob = self.index(out_a), self.index(out_b)
        ia, ib = self.index(in_a), self.index(in_b)
        for out_idx, sign_out in ((oa, +1.0), (ob, -1.0)):
            if out_idx < 0:
                continue
            if ia >= 0:
                self.matrix[out_idx, ia] += sign_out * gm
            if ib >= 0:
                self.matrix[out_idx, ib] -= sign_out * gm

    def stamp_current(self, node_from: str, node_to: str, current: float) -> None:
        """Stamp an independent current ``current`` flowing from -> to."""
        i_from, i_to = self.index(node_from), self.index(node_to)
        if i_from >= 0:
            self.rhs[i_from] -= current
        if i_to >= 0:
            self.rhs[i_to] += current

    def stamp_voltage_source(self, source_name: str, node_p: str,
                             node_n: str, voltage: float) -> None:
        """Stamp a voltage constraint; branch current flows p -> n inside."""
        br = self.branch(source_name)
        ip, in_ = self.index(node_p), self.index(node_n)
        if ip >= 0:
            self.matrix[ip, br] += 1.0
            self.matrix[br, ip] += 1.0
        if in_ >= 0:
            self.matrix[in_, br] -= 1.0
            self.matrix[br, in_] -= 1.0
        self.rhs[br] += voltage

    def solve(self) -> np.ndarray:
        """Solve the assembled system; raises on singular matrices.

        Routes through the shared LU kernel of
        :mod:`repro.spice.linalg` — the same kernel the compiled
        :class:`~repro.spice.stampplan.StampPlan` fast path uses, which
        is what keeps both paths bit-identical.  On a singular matrix
        the model checker (:mod:`repro.analysis.model`) is consulted so
        the error names the structural suspects (floating nodes, source
        loops) instead of leaving the user to bisect the netlist.
        """
        from repro.spice import linalg

        try:
            return linalg.lu_solve_dense(self.matrix, self.rhs)
        except np.linalg.LinAlgError as exc:
            raise self.singular_error() from exc

    def singular_error(self) -> SimulationError:
        """The enriched error every singular solve of this system raises."""
        message = (f"singular MNA matrix for circuit "
                   f"{self.circuit.name!r}; check for floating nodes")
        suspects = self._structural_suspects()
        if suspects:
            message += "\nstructural suspects:\n" + suspects
        return SimulationError(message)

    def _structural_suspects(self) -> str:
        """Model-checker findings worth naming in a singular-solve error."""
        try:
            from repro.analysis.model import check_circuit
            findings = check_circuit(self.circuit)
        except Exception:  # pragma: no cover - diagnostics must not mask
            return ""
        return "\n".join(f"  [{d.rule}] {d.message}" for d in findings)


@dataclasses.dataclass
class StampContext:
    """Everything an element may need while stamping one Newton iterate.

    Attributes
    ----------
    x:
        Current Newton iterate of the unknown vector.
    x_prev:
        Solution at the previous accepted time point (transient only).
    dt:
        Time step, or ``None`` for a DC solve.
    time:
        Absolute time of the point being solved (end of the step).
    integrator:
        ``"be"`` (backward Euler) or ``"trap"`` (trapezoidal).
    cap_state:
        Per-capacitor branch currents at the previous time point, used by
        the trapezoidal companion model.  Owned by the transient engine.
    gmin:
        Extra conductance to ground stamped by nonlinear elements for
        convergence (gmin stepping during DC).
    source_scale:
        Multiplier applied by independent sources to their stamped
        value.  1.0 except while the recovery ladder's source-stepping
        rung ramps the sources up from a solvable fraction.
    """

    system: MnaSystem
    x: np.ndarray
    x_prev: Optional[np.ndarray] = None
    dt: Optional[float] = None
    time: float = 0.0
    integrator: str = "be"
    cap_state: Optional[Dict[str, float]] = None
    gmin: float = 1e-12
    source_scale: float = 1.0

    def voltage(self, node: str, previous: bool = False) -> float:
        """Voltage of ``node`` in the current iterate (or previous step)."""
        idx = self.system.index(node)
        if idx < 0:
            return 0.0
        vector = self.x_prev if previous else self.x
        if vector is None:
            raise SimulationError("no previous solution available")
        return float(vector[idx])
