"""Nonlinear MOSFET circuit element.

Wraps a :class:`repro.tech.transistor.Mosfet` device card.  The element
is *bidirectional*: source and drain are decided by the instantaneous
terminal voltages, which is what makes pass-transistor behaviour (the
DRAM cell access device, the write-after-read loop-cut switch of paper
Fig. 4) come out right during charge sharing.

The Newton companion model linearises the current around the present
iterate with finite-difference transconductances.  Because the device
current depends only on ``(vg - vs, vd - vs)``, the source
transconductance follows exactly as ``gs = -(gm + gd)``, which keeps the
stamp consistent.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.tech.node import Polarity
from repro.tech.transistor import Mosfet
from repro.spice.mna import StampContext
from repro.spice.netlist import CircuitElement
from repro.units import mV

_FD_STEP = 0.1 * mV  # finite-difference step for gm/gd


class MosfetElement(CircuitElement):
    """MOSFET between ``drain``/``source`` controlled by ``gate``.

    The ``drain``/``source`` labels are only naming: conduction direction
    follows the terminal voltages.  Bulk is implicitly tied to the rail
    (ground for NMOS, the supply for PMOS) with the body effect folded
    into the device card.
    """

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 device: Mosfet) -> None:
        super().__init__(name)
        self.drain, self.gate, self.source = drain, gate, source
        self.device = device

    def terminals(self) -> List[str]:
        return [self.drain, self.gate, self.source]

    def terminal_roles(self) -> List[Tuple[str, str]]:
        # The gate is ideal (currentless): it senses but never stamps.
        return [(self.drain, "conductive"), (self.gate, "sense"),
                (self.source, "conductive")]

    def is_nonlinear(self) -> bool:
        return True

    # -- current evaluation ------------------------------------------------

    def current(self, v_d: float, v_g: float, v_s: float) -> float:
        """Channel current flowing drain-terminal -> source-terminal.

        Positive when conventional current flows from the ``drain`` node
        to the ``source`` node (NMOS with vd > vs), negative when the
        device conducts backwards.
        """
        if self.device.polarity is Polarity.NMOS:
            if v_d >= v_s:
                magnitude = self.device.drain_current(v_g - v_s, v_d - v_s)
                return magnitude
            magnitude = self.device.drain_current(v_g - v_d, v_s - v_d)
            return -magnitude
        # PMOS: the effective source is the *higher* terminal and
        # conventional current flows from it to the lower terminal.
        if v_s >= v_d:
            magnitude = self.device.drain_current(v_s - v_g, v_s - v_d)
            return -magnitude  # flows source-terminal -> drain-terminal
        magnitude = self.device.drain_current(v_d - v_g, v_d - v_s)
        return magnitude

    # -- stamping ---------------------------------------------------------------

    def _operating_point(self, ctx: StampContext) -> Tuple[float, float, float]:
        return (
            ctx.voltage(self.drain),
            ctx.voltage(self.gate),
            ctx.voltage(self.source),
        )

    def stamp(self, ctx: StampContext) -> None:
        v_d, v_g, v_s = self._operating_point(ctx)
        i0 = self.current(v_d, v_g, v_s)
        gd = (self.current(v_d + _FD_STEP, v_g, v_s) - i0) / _FD_STEP
        gm = (self.current(v_d, v_g + _FD_STEP, v_s) - i0) / _FD_STEP
        gs = -(gm + gd)
        # Keep the stamp numerically tame: conductances must stay
        # non-negative on the diagonal direction; gmin guards cutoff.
        gd = max(gd, 0.0) + ctx.gmin
        system = ctx.system
        system.stamp_conductance(self.drain, self.source, gd)
        system.stamp_transconductance(self.drain, self.source,
                                      self.gate, self.source, gm)
        # Residual current so the linear model matches i0 at the iterate.
        i_lin = gd * (v_d - v_s) + gm * (v_g - v_s)
        system.stamp_current(self.drain, self.source, i0 - i_lin)
        del gs  # folded into the (out, in)=(d-s, g-s) difference stamps
