"""Circuit netlist container.

A :class:`Circuit` is a bag of named nodes and elements.  Node names are
plain strings; the ground node is ``"0"`` (also exported as
:data:`GROUND`).  Elements are added through :meth:`Circuit.add` and are
identified by unique names, so measurements can refer to them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.errors import NetlistError

GROUND = "0"


class Circuit:
    """A flat netlist of circuit elements.

    >>> from repro.spice import Circuit, Resistor, VoltageSource, dc
    >>> c = Circuit("divider")
    >>> _ = c.add(VoltageSource("vin", "in", "0", dc(1.0)))
    >>> _ = c.add(Resistor("r1", "in", "mid", 1e3))
    >>> _ = c.add(Resistor("r2", "mid", "0", 1e3))
    >>> sorted(c.nodes())
    ['in', 'mid']
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._elements: Dict[str, "CircuitElement"] = {}

    # -- construction --------------------------------------------------------

    def add(self, element: "CircuitElement") -> "CircuitElement":
        """Add ``element``; returns it so construction can chain."""
        if element.name in self._elements:
            raise NetlistError(
                f"duplicate element name {element.name!r} in circuit {self.name!r}"
            )
        self._elements[element.name] = element
        return element

    # -- introspection --------------------------------------------------------

    @property
    def elements(self) -> List["CircuitElement"]:
        return list(self._elements.values())

    def element(self, name: str) -> "CircuitElement":
        try:
            return self._elements[name]
        except KeyError as exc:
            raise NetlistError(f"no element named {name!r}") from exc

    def nodes(self) -> List[str]:
        """All non-ground node names, in first-use order."""
        seen: Dict[str, None] = {}
        for element in self._elements.values():
            for node in element.terminals():
                if node != GROUND:
                    seen.setdefault(node)
        return list(seen)

    def validate(self, strict: bool = False) -> None:
        """Check the netlist is simulatable.

        Delegates to the model checker
        (:func:`repro.analysis.model.check_circuit`) and raises
        :class:`NetlistError` carrying *all* structural defects at once
        (``exc.diagnostics``) instead of stopping at the first.

        By default only the historically fatal defects raise (empty
        circuit, no ground connection); ``strict=True`` also raises for
        every error-severity finding the checker reports (floating
        nodes, voltage-source loops) and is what ``repro check`` uses.
        Warnings (dangling nodes, capacitor-to-nowhere patterns) never
        raise — they are reported through the checker CLI.
        """
        from repro.analysis.diagnostics import Severity, format_diagnostics
        from repro.analysis.model import LEGACY_VALIDATE_RULES, check_circuit

        diagnostics = check_circuit(self)
        fatal = [d for d in diagnostics
                 if d.rule in LEGACY_VALIDATE_RULES
                 or (strict and d.severity is Severity.ERROR)]
        if fatal:
            raise NetlistError(
                f"circuit {self.name!r} failed validation:\n"
                f"{format_diagnostics(fatal)}",
                diagnostics=diagnostics)


class CircuitElement:
    """Base class for all circuit elements.

    Subclasses define ``terminals()`` plus the stamping interface used by
    :mod:`repro.spice.mna`:

    * ``is_source()`` — whether the element introduces a branch-current
      unknown (voltage sources do).
    * ``stamp(system, state)`` — add the element's contribution for the
      current Newton iterate / time step.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise NetlistError("element name must be non-empty")
        self.name = name

    def terminals(self) -> Iterable[str]:
        raise NotImplementedError

    def terminal_roles(self) -> List[Tuple[str, str]]:
        """How each terminal couples into the MNA system.

        Each terminal is one of:

        * ``"conductive"`` — stamps conductance (resistors, channels);
        * ``"capacitive"`` — stamps a companion conductance in transient
          (capacitors);
        * ``"constraint"`` — pins the node voltage through a branch
          equation (voltage sources);
        * ``"injection"`` — injects current without conductance
          (current sources);
        * ``"sense"`` — reads the node voltage without stamping it
          (MOSFET gates, switch control inputs).

        The model checker (:mod:`repro.analysis.model`) uses this to
        predict singular matrices before a solve.  The default declares
        every terminal conductive, the safe assumption for resistive
        elements.
        """
        return [(node, "conductive") for node in self.terminals()]

    def is_source(self) -> bool:
        return False

    def is_nonlinear(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nodes = ",".join(self.terminals())
        return f"<{type(self).__name__} {self.name} ({nodes})>"
