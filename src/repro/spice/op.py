"""DC operating-point solver.

Newton iteration with voltage-update damping and gmin stepping: the
solve starts with a large leak conductance to ground at every node
(which makes even pathological circuits solvable), converges, then
relaxes the leak decade by decade, warm-starting each stage from the
previous solution.

When the gmin walk itself fails, the solver escalates through the
recovery ladder of :mod:`repro.spice.recovery`: stronger damping, then
source stepping (ramping the independent sources from a solvable
fraction up to 100 %), recording every attempt in a
:class:`~repro.spice.recovery.RecoveryReport`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError
from repro.spice.mna import MnaSystem, StampContext
from repro.spice.netlist import Circuit
from repro.spice.recovery import (DEFAULT_RECOVERY, RecoveryConfig,
                                  RecoveryReport, note_recovery_success)
from repro.spice.stampplan import StampPlan, stamping_order

_MAX_NEWTON = 200
_V_TOL = 1e-9
_DAMP_LIMIT = 0.3  # volts per Newton update


def _newton_solve(system: MnaSystem, circuit: Circuit, x0: np.ndarray,
                  gmin: float, time: float,
                  max_newton: Optional[int] = None,
                  damp_limit: float = _DAMP_LIMIT,
                  source_scale: float = 1.0,
                  plan: Optional[StampPlan] = None) -> np.ndarray:
    x = x0.copy()
    n_nodes = len(system.node_index)
    budget = _MAX_NEWTON if max_newton is None else max_newton
    if plan is not None:
        # gmin doubles as the per-node leak: the base matrix carries the
        # capacitor-gmin stamps (part of the cache key) and extra_gmin
        # replays the diagonal leak the legacy loop adds per iterate.
        point = plan.begin_point(t=time, dt=None, gmin=gmin,
                                 extra_gmin=gmin,
                                 source_scale=source_scale)
        order = None
    else:
        point = None
        order = stamping_order(circuit)
    for _iteration in range(budget):
        if plan is not None:
            x_new = plan.solve_iterate(point, x)
        else:
            system.reset()
            ctx = StampContext(system=system, x=x, dt=None, time=time,
                               gmin=gmin, source_scale=source_scale)
            for element in order:  # noqa: L107 - the legacy reference path
                element.stamp(ctx)
            # gmin stepping leak on every node keeps the matrix
            # non-singular.
            for idx in range(n_nodes):
                system.matrix[idx, idx] += gmin
            x_new = system.solve()
        delta = x_new - x
        # Damp node-voltage updates only (branch currents move freely).
        v_delta = delta[:n_nodes]
        max_step = np.abs(v_delta).max() if n_nodes else 0.0
        if max_step > damp_limit:
            delta = delta * (damp_limit / max_step)
        x = x + delta
        if max_step < _V_TOL:
            return x
    raise ConvergenceError(
        f"DC Newton failed to converge for circuit {circuit.name!r} "
        f"(gmin={gmin:g})",
        iterations=budget,
    )


def _gmin_walk(system: MnaSystem, circuit: Circuit, x0: np.ndarray,
               time: float, config: RecoveryConfig,
               damp_limit: float = _DAMP_LIMIT,
               source_scale: float = 1.0,
               plan: Optional[StampPlan] = None) -> np.ndarray:
    """The decade-by-decade gmin relaxation, warm-started throughout."""
    x = x0
    for gmin in config.gmin_ladder:
        x = _newton_solve(system, circuit, x, gmin, time,
                          max_newton=config.max_newton,
                          damp_limit=damp_limit,
                          source_scale=source_scale,
                          plan=plan)
    return x


def solve_dc(circuit: Circuit, time: float = 0.0,
             initial_guess: Optional[Dict[str, float]] = None,
             recovery: Optional[RecoveryConfig] = None,
             stamp_plan: bool = True,
             backend: str = "auto") -> Dict[str, float]:
    """Solve the DC operating point; returns node-name -> voltage.

    ``time`` selects the value of time-dependent sources (useful to find
    the precharged state of a memory circuit at t=0).  On Newton
    failure the solver escalates deterministically (stronger damping,
    then source stepping); if every rung fails, the raised
    :class:`~repro.errors.ConvergenceError` carries the full
    :class:`~repro.spice.recovery.RecoveryReport` as ``.recovery``.

    ``backend`` selects the fast-path linear kernel (``"dense"``,
    ``"sparse"`` or ``"auto"``), exactly as in
    :func:`repro.spice.transient.simulate_transient`.
    """
    if recovery is None:
        recovery = DEFAULT_RECOVERY
    system = MnaSystem(circuit)
    if not stamp_plan and backend == "sparse":
        raise ConfigurationError(
            "backend='sparse' requires the stamp-plan fast path")
    plan = StampPlan(system, backend=backend) if stamp_plan else None
    x0 = np.zeros(system.size)
    if initial_guess:
        for node, voltage in initial_guess.items():
            idx = system.index(node)
            if idx >= 0:
                x0[idx] = voltage

    report = RecoveryReport(circuit=circuit.name, time=None)
    last_error: ConvergenceError | None = None

    def finish(x: np.ndarray) -> Dict[str, float]:
        note_recovery_success(report)
        return {node: float(x[idx])
                for node, idx in system.node_index.items()}

    # Rung 0: the standard gmin walk (the solver's normal operation).
    try:
        x = _gmin_walk(system, circuit, x0, time, recovery, plan=plan)
    except ConvergenceError as exc:
        last_error = exc
        report.record("newton", "standard gmin walk", converged=False)
    else:
        report.record("newton", "standard gmin walk", converged=True)
        return finish(x)

    # Rung 1: stronger damping (tighter per-iteration voltage step).
    if recovery.enable_damping:
        for factor in recovery.damping_factors:
            limit = _DAMP_LIMIT * factor
            try:
                x = _gmin_walk(system, circuit, x0, time, recovery,
                               damp_limit=limit, plan=plan)
            except ConvergenceError as exc:
                last_error = exc
                report.record("damping", f"damp_limit={limit:g}V",
                              converged=False)
            else:
                report.record("damping", f"damp_limit={limit:g}V",
                              converged=True)
                return finish(x)

    # Rung 2: source stepping — each ramp stage runs the full gmin walk
    # warm-started from the previous stage's solution.
    if recovery.enable_source:
        x = x0
        try:
            for alpha in recovery.source_ladder:
                x = _gmin_walk(system, circuit, x, time, recovery,
                               source_scale=alpha, plan=plan)
                report.record("source", f"sources={100 * alpha:g}%",
                              converged=True)
            return finish(x)
        except ConvergenceError as exc:
            last_error = exc
            report.record("source", f"sources={100 * alpha:g}%",
                          converged=False)

    raise ConvergenceError(
        f"DC solve failed for circuit {circuit.name!r} and every "
        "recovery rung was exhausted",
        iterations=last_error.iterations if last_error else None,
        recovery=report,
    )
