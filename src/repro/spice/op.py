"""DC operating-point solver.

Newton iteration with voltage-update damping and gmin stepping: the
solve starts with a large leak conductance to ground at every node
(which makes even pathological circuits solvable), converges, then
relaxes the leak decade by decade, warm-starting each stage from the
previous solution.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ConvergenceError
from repro.spice.mna import MnaSystem, StampContext
from repro.spice.netlist import Circuit

_MAX_NEWTON = 200
_V_TOL = 1e-9
_DAMP_LIMIT = 0.3  # volts per Newton update


def _newton_solve(system: MnaSystem, circuit: Circuit, x0: np.ndarray,
                  gmin: float, time: float) -> np.ndarray:
    x = x0.copy()
    n_nodes = len(system.node_index)
    for _iteration in range(_MAX_NEWTON):
        system.reset()
        ctx = StampContext(system=system, x=x, dt=None, time=time, gmin=gmin)
        for element in circuit.elements:
            element.stamp(ctx)
        # gmin stepping leak on every node keeps the matrix non-singular.
        for idx in range(n_nodes):
            system.matrix[idx, idx] += gmin
        x_new = system.solve()
        delta = x_new - x
        # Damp node-voltage updates only (branch currents move freely).
        v_delta = delta[:n_nodes]
        max_step = np.max(np.abs(v_delta)) if n_nodes else 0.0
        if max_step > _DAMP_LIMIT:
            delta = delta * (_DAMP_LIMIT / max_step)
        x = x + delta
        if max_step < _V_TOL:
            return x
    raise ConvergenceError(
        f"DC Newton failed to converge for circuit {circuit.name!r} "
        f"(gmin={gmin:g})"
    )


def solve_dc(circuit: Circuit, time: float = 0.0,
             initial_guess: Optional[Dict[str, float]] = None
             ) -> Dict[str, float]:
    """Solve the DC operating point; returns node-name -> voltage.

    ``time`` selects the value of time-dependent sources (useful to find
    the precharged state of a memory circuit at t=0).
    """
    system = MnaSystem(circuit)
    x = np.zeros(system.size)
    if initial_guess:
        for node, voltage in initial_guess.items():
            idx = system.index(node)
            if idx >= 0:
                x[idx] = voltage
    for gmin in (1e-3, 1e-6, 1e-9, 1e-12):
        x = _newton_solve(system, circuit, x, gmin, time)
    result = {node: float(x[idx]) for node, idx in system.node_index.items()}
    return result
