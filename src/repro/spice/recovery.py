"""Solver recovery ladder: structured escalation on Newton failure.

A non-convergent Newton solve used to kill whatever sweep contained it.
This module defines the deterministic escalation every solver engine
walks instead:

1. **damping** — retry with a much stronger initial damping factor and a
   tighter per-iteration voltage step;
2. **substep** — halve the (local) time step with bounded retries
   (transient only; stiff regeneration regions recover here);
3. **gmin** — gmin stepping: solve with a large leak conductance on
   every node, then relax it decade by decade, warm-starting each stage;
4. **source** — source stepping: ramp all independent sources from a
   fraction of their value up to 100 %, warm-starting each stage.

Every attempt is recorded in a :class:`RecoveryReport`.  When a rung
succeeds the report is folded into ``repro.obs`` counters
(``spice.recovery.<rung>``); when all rungs fail the report rides on the
raised :class:`~repro.errors.ConvergenceError` as ``.recovery`` so a
harness can log *how* the solve died, not just that it died.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Tuple

#: Ladder rungs in escalation order (fixed; tests pin this).
RUNGS = ("newton", "damping", "substep", "gmin", "source")


@dataclasses.dataclass(frozen=True)
class RecoveryConfig:
    """Knobs of the escalation ladder.

    ``max_newton`` overrides the engine's Newton iteration budget
    (``None`` keeps the engine default) — mostly a test hook to make
    plain Newton fail fast on purpose.  Each ``enable_*`` flag removes
    one rung from the ladder without disturbing the order of the rest.
    """

    max_newton: Optional[int] = None
    enable_damping: bool = True
    enable_substep: bool = True
    enable_gmin: bool = True
    enable_source: bool = True
    max_halvings: int = 7
    damping_factors: Tuple[float, ...] = (0.25, 0.0625)
    gmin_ladder: Tuple[float, ...] = (1e-3, 1e-6, 1e-9, 1e-12)
    source_ladder: Tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 1.0)

    def __post_init__(self) -> None:
        from repro.errors import ConfigurationError

        if self.max_newton is not None and self.max_newton < 1:
            raise ConfigurationError(
                f"max_newton={self.max_newton} must be >= 1")
        if self.max_halvings < 0:
            raise ConfigurationError("max_halvings must be >= 0")
        if any(not 0.0 < f <= 1.0 for f in self.damping_factors):
            raise ConfigurationError("damping factors must lie in (0, 1]")
        if any(g <= 0 for g in self.gmin_ladder):
            raise ConfigurationError("gmin ladder values must be positive")
        if any(not 0.0 < a <= 1.0 for a in self.source_ladder):
            raise ConfigurationError("source ladder values must lie in (0, 1]")
        if self.source_ladder and not math.isclose(self.source_ladder[-1],
                                                   1.0):
            raise ConfigurationError(
                "source ladder must end at 1.0 (full sources)")


#: The default ladder shared by the transient and DC engines.
DEFAULT_RECOVERY = RecoveryConfig()


@dataclasses.dataclass(frozen=True)
class RecoveryAttempt:
    """One solve attempt of the ladder (including the plain first try)."""

    rung: str  # one of RUNGS
    detail: str  # e.g. "damping=0.25", "substeps=4", "gmin=1e-06"
    converged: bool

    def __post_init__(self) -> None:
        from repro.errors import ConfigurationError

        if self.rung not in RUNGS:
            raise ConfigurationError(
                f"unknown recovery rung {self.rung!r}; use one of {RUNGS}")


@dataclasses.dataclass
class RecoveryReport:
    """Ordered log of every attempt one failing solve point went through."""

    circuit: str
    time: Optional[float] = None
    attempts: List[RecoveryAttempt] = dataclasses.field(default_factory=list)

    def record(self, rung: str, detail: str, converged: bool) -> None:
        self.attempts.append(RecoveryAttempt(rung=rung, detail=detail,
                                             converged=converged))

    @property
    def succeeded(self) -> bool:
        return any(a.converged for a in self.attempts)

    @property
    def successful_rung(self) -> Optional[str]:
        for attempt in self.attempts:
            if attempt.converged:
                return attempt.rung
        return None

    def rungs_tried(self) -> Tuple[str, ...]:
        """Distinct rungs in first-tried order."""
        seen: List[str] = []
        for attempt in self.attempts:
            if attempt.rung not in seen:
                seen.append(attempt.rung)
        return tuple(seen)

    def to_dict(self) -> dict:
        return {
            "circuit": self.circuit,
            "time": self.time,
            "succeeded": self.succeeded,
            "successful_rung": self.successful_rung,
            "attempts": [dataclasses.asdict(a) for a in self.attempts],
        }

    def describe(self) -> str:
        """Multi-line human-readable escalation log."""
        where = "" if self.time is None else f" at t={self.time:g}s"
        lines = [f"recovery ladder for circuit {self.circuit!r}{where}:"]
        for attempt in self.attempts:
            status = "converged" if attempt.converged else "failed"
            lines.append(f"  [{attempt.rung}] {attempt.detail}: {status}")
        if not self.attempts:
            lines.append("  (no attempts recorded)")
        return "\n".join(lines)


def note_recovery_success(report: RecoveryReport) -> None:
    """Fold a successful ladder walk into the ``repro.obs`` counters."""
    from repro import obs

    rung = report.successful_rung
    if rung is None:
        return
    m = obs.metrics()
    m.counter(f"spice.recovery.{rung}").inc()
    # The plain first try is not a recovery; only escalations count.
    if rung != "newton":
        m.counter("spice.recovery.escalations").inc()
        m.counter("spice.recovery.attempts").inc(len(report.attempts))
        obs.event("spice.recovery.recovered", circuit=report.circuit,
                  time=report.time, rung=rung,
                  attempts=len(report.attempts))
