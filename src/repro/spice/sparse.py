"""Pattern-compiled sparse LU: the large-circuit solve path.

MNA matrices of hierarchical-bitline circuits are >95 % structurally
zero — a global bitline hanging M local blocks of N cells each is a
tree of RC chains with a handful of cross-coupling devices — so dense
``O(n^3)`` factorisation wastes almost all of its work.  This module
follows the stamp-plan philosophy (*compile once, solve many*):

* **Pattern extraction** happens at plan-compile time: the set of
  matrix positions any stamp can ever write is known statically (see
  :class:`~repro.spice.stampplan.StampPlan`), so the CSR pattern is
  frozen before the first solve.
* **Analysis** runs once per *structure*: a threshold-Markowitz pivot
  search (minimum column count first, then the most stable row above
  ``_PIVOT_THRESHOLD`` of the column maximum) seeded by the first
  assembled matrix picks the elimination order, and the symbolic pass
  records every fill position and every multiply-subtract the numeric
  factorisation will ever perform.  Analyses are cached by structure
  (``spice.sparse.symbolic`` / ``spice.sparse.symbolic_reuse``), so a
  Monte-Carlo sweep over one topology pays the Python-loop analysis
  exactly once per process.
* **Numeric refactorisation** replays the recorded schedule with
  NumPy array operations grouped into dependency *levels*: operations
  whose operands were finalised in earlier levels execute as one
  vectorised gather/segment-sum/scatter, so the per-iterate cost is a
  few array calls per level instead of a Python loop over pivots.  On
  block-parallel circuit topologies the level count is the elimination
  *depth* (cells per chain plus the global spine), not ``n``.
* The triangular **solves** are level-scheduled the same way.

Everything is stdlib + NumPy — no SciPy — and every operation runs in
a schedule frozen at analysis time, so a sparse solve is bit-identical
run to run by construction.  It is *not* bit-identical to the dense
path (a different elimination order rounds differently); the contract
is waveform agreement within the documented tolerance, enforced by
``tests/spice/test_sparse.py``.

Exact zero pivots raise :class:`numpy.linalg.LinAlgError` exactly like
the dense kernel, so the recovery ladder (gmin / source stepping)
treats both backends identically.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs

#: Relative pivot-stability threshold for the Markowitz row choice: a
#: candidate pivot must be at least this fraction of its column's
#: largest magnitude.  Small enough to let the fill-reducing choice win
#: almost always, large enough to refuse catastrophically tiny pivots.
_PIVOT_THRESHOLD = 1e-3  # noqa: L101 - dimensionless ratio

#: Analyses cached by matrix structure (size + flat pattern bytes).
#: One entry per circuit *topology*, so a Monte-Carlo sweep re-solving
#: thousands of perturbed copies of one circuit analyses exactly once.
_MAX_SYMBOLIC = 16
_symbolic_cache: "OrderedDict[bytes, SymbolicLU]" = OrderedDict()


def _singular() -> np.linalg.LinAlgError:
    # Same message as the dense kernel in repro.spice.linalg.
    return np.linalg.LinAlgError("singular matrix (zero pivot)")


class SparseContext:
    """One frozen sparsity pattern, ready for repeated factorisation.

    ``flat`` is the sorted array of flat ``row * n + col`` positions the
    assembly can ever write.  The (expensive, Python-loop) analysis is
    deferred to the first :meth:`factorize` call because the pivot
    choice wants magnitudes; after that every call is a pure-NumPy
    numeric refactor into the precomputed pattern.
    """

    def __init__(self, n: int, flat: np.ndarray) -> None:
        self.n = n
        self.flat = np.asarray(flat, dtype=np.intp)
        self.rows = (self.flat // n).astype(np.intp)
        self.cols = (self.flat % n).astype(np.intp)
        self.nnz = len(self.flat)
        self._symbolic: Optional[SymbolicLU] = None

    @property
    def fill_ratio(self) -> float:
        """nnz(L+U) / nnz(A); 0.0 until the first factorisation."""
        if self._symbolic is None:
            return 0.0
        return self._symbolic.n_cells / max(1, self.nnz)

    def factorize(self, values: np.ndarray) -> np.ndarray:
        """Numeric LU of the pattern holding ``values``.

        The first call runs (or fetches from the structure cache) the
        symbolic analysis; every call counts one
        ``spice.sparse.refactor``.  Raises
        :class:`numpy.linalg.LinAlgError` on an exact zero pivot.
        """
        if self._symbolic is None:
            key = self.n.to_bytes(8, "little") + self.flat.tobytes()
            cached = _symbolic_cache.get(key)
            if cached is not None:
                _symbolic_cache.move_to_end(key)
                self._symbolic = cached
                obs.metrics().counter("spice.sparse.symbolic_reuse").inc()
            else:
                self._symbolic = SymbolicLU(
                    self.n, self.rows, self.cols, np.asarray(values, float))
                _symbolic_cache[key] = self._symbolic
                if len(_symbolic_cache) > _MAX_SYMBOLIC:
                    _symbolic_cache.popitem(last=False)
                obs.metrics().counter("spice.sparse.symbolic").inc()
            if obs.is_enabled():
                obs.metrics().gauge("spice.sparse.fill_ratio").set(
                    self.fill_ratio)
        obs.metrics().counter("spice.sparse.refactor").inc()
        return self._symbolic.refactor(values)

    def solve(self, factors: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` given :meth:`factorize` output."""
        assert self._symbolic is not None
        return self._symbolic.solve(factors, rhs)


class SymbolicLU:
    """The frozen elimination schedule of one sparsity pattern.

    Built once by a right-looking threshold-Markowitz elimination over
    dict-of-rows storage (the only Python-loop phase); the result is a
    set of level-grouped index arrays that replay the exact same
    arithmetic vectorised.  ``refactor`` and ``solve`` touch no Python
    per-entry loops.
    """

    def __init__(self, n: int, rows: np.ndarray, cols: np.ndarray,
                 values: np.ndarray) -> None:
        self.n = n
        self.nnz = len(rows)
        self._analyze(rows, cols, values)

    # -- one-time analysis -------------------------------------------------

    def _analyze(self, rows: np.ndarray, cols: np.ndarray,
                 values: np.ndarray) -> None:
        n = self.n
        nnz = self.nnz
        # Active matrix as dict-of-rows plus a row set per column.
        a: List[Dict[int, float]] = [dict() for _ in range(n)]
        col_rows: List[set] = [set() for _ in range(n)]
        cell_id: Dict[Tuple[int, int], int] = {}
        for idx in range(nnz):
            r, c = int(rows[idx]), int(cols[idx])
            a[r][c] = float(values[idx])
            col_rows[c].add(r)
            cell_id[(r, c)] = idx
        next_id = nnz
        # Highest level that has written each cell so far (-1 = never).
        wlevel: List[int] = [-1] * nnz

        colcount = np.array([len(col_rows[c]) for c in range(n)],
                            dtype=np.int64)
        inactive_penalty = np.int64(1) << 40
        pr = np.empty(n, dtype=np.intp)   # pivot row of each step
        pc = np.empty(n, dtype=np.intp)   # pivot column of each step
        piv_ids = np.empty(n, dtype=np.intp)
        step_level = np.empty(n, dtype=np.intp)
        div_ops: List[Tuple[int, int, int]] = []       # (level, dest, src)
        upd_ops: List[Tuple[int, int, int, int]] = []  # (level, dest, l, u)
        l_entries: List[Tuple[int, int, int]] = []     # (row, step, cell)
        u_entries: List[List[Tuple[int, int]]] = []    # per step: (col, cell)

        for k in range(n):
            c = int(np.argmin(colcount + inactive_penalty *
                              (colcount <= 0)))
            rows_c = sorted(col_rows[c])
            if not rows_c:
                raise _singular()  # structurally singular column
            colmax = max(abs(a[r][c]) for r in rows_c)
            if colmax == 0.0:  # noqa: L102 - exact zero is the contract
                raise _singular()
            threshold = _PIVOT_THRESHOLD * colmax
            i = -1
            best_cost = None
            for r in rows_c:
                if abs(a[r][c]) >= threshold:
                    cost = len(a[r])
                    if best_cost is None or cost < best_cost:
                        best_cost = cost
                        i = r
            piv_id = cell_id[(i, c)]
            prow = a[i]
            uitems = sorted((cc, cell_id[(i, cc)])
                            for cc in prow if cc != c)
            elim = [r for r in rows_c if r != i]
            # Dependency level: one past the latest writer of anything
            # this step reads (pivot, its column, its row).
            lvl = wlevel[piv_id]
            for _cc, uid in uitems:
                if wlevel[uid] > lvl:
                    lvl = wlevel[uid]
            for r in elim:
                wl = wlevel[cell_id[(r, c)]]
                if wl > lvl:
                    lvl = wl
            level = lvl + 1
            piv_val = prow[c]
            for r in elim:
                lid = cell_id[(r, c)]
                arow = a[r]
                f = arow.pop(c) / piv_val
                div_ops.append((level, lid, piv_id))
                l_entries.append((r, k, lid))
                for cc, uid in uitems:
                    contrib = f * prow[cc]
                    dest = cell_id.get((r, cc))
                    if dest is None:
                        arow[cc] = -contrib
                        dest = next_id
                        next_id += 1
                        cell_id[(r, cc)] = dest
                        wlevel.append(-1)
                        col_rows[cc].add(r)
                        colcount[cc] += 1
                    else:
                        arow[cc] -= contrib
                    upd_ops.append((level, dest, lid, uid))
                    if level > wlevel[dest]:
                        wlevel[dest] = level
                if level > wlevel[lid]:
                    wlevel[lid] = level
            # Retire the pivot row and column from the active matrix.
            for cc, _uid in uitems:
                col_rows[cc].discard(i)
                colcount[cc] -= 1
            col_rows[c].clear()
            colcount[c] = 0
            pr[k] = i
            pc[k] = c
            piv_ids[k] = piv_id
            step_level[k] = level
            u_entries.append(uitems)

        self.n_cells = next_id
        self.pr = pr
        self.pc = pc
        self.piv_ids = piv_ids
        self._factor_levels = _group_factor_levels(div_ops, upd_ops)
        self._forward_levels = _group_forward_levels(n, pr, l_entries)
        self._backward_levels = _group_backward_levels(
            n, pc, piv_ids, u_entries)

    # -- the hot path ------------------------------------------------------

    def refactor(self, values: np.ndarray) -> np.ndarray:
        """Numeric factorisation of the pattern holding ``values``.

        Returns the working cell array (L factors, U entries and
        pivots at their frozen slots) for :meth:`solve`.  Raises on an
        exact zero pivot; non-finite values flow through like the
        dense kernel (a divergent Newton iterate keeps its NaNs).
        """
        w = np.zeros(self.n_cells)
        w[:self.nnz] = values
        with np.errstate(divide="ignore", invalid="ignore",
                         over="ignore", under="ignore"):
            for div_dest, div_src, upd_l, upd_u, uniq, segs \
                    in self._factor_levels:
                if len(div_dest):
                    w[div_dest] = w[div_dest] / w[div_src]
                if len(uniq):
                    prod = w[upd_l] * w[upd_u]
                    w[uniq] -= np.add.reduceat(prod, segs)
        if np.any(w[self.piv_ids] == 0.0):  # noqa: L102 - exact zero pivot
            raise _singular()
        return w

    def solve(self, w: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Level-scheduled forward/backward substitution."""
        y = np.ascontiguousarray(rhs[self.pr], dtype=float)
        with np.errstate(divide="ignore", invalid="ignore",
                         over="ignore", under="ignore"):
            for lids, srcs, uniq, segs in self._forward_levels:
                prod = w[lids] * y[srcs]
                y[uniq] -= np.add.reduceat(prod, segs)
            for uids, srcs, uniq, segs, ts, tpivs in self._backward_levels:
                if len(uniq):
                    prod = w[uids] * y[srcs]
                    y[uniq] -= np.add.reduceat(prod, segs)
                y[ts] = y[ts] / w[tpivs]
        out = np.empty(self.n)
        out[self.pc] = y
        return out


def _segment(dest: np.ndarray, *payloads: np.ndarray
             ) -> Tuple[np.ndarray, ...]:
    """Stable-sort ops by destination and mark the segment starts.

    Returns ``(payload0_sorted, ..., uniq_dest, seg_starts)`` ready for
    a gather / ``np.add.reduceat`` / scatter-subtract triple.  The
    stable sort keeps same-destination contributions in schedule order,
    so the accumulation rounding is frozen with the schedule.
    """
    order = np.argsort(dest, kind="stable")
    dest_sorted = dest[order]
    uniq, starts = np.unique(dest_sorted, return_index=True)
    return tuple(p[order] for p in payloads) + (uniq, starts)


def _group_factor_levels(div_ops: List[Tuple[int, int, int]],
                         upd_ops: List[Tuple[int, int, int, int]]
                         ) -> List[Tuple[np.ndarray, ...]]:
    """Group the recorded factorisation ops by dependency level."""
    n_levels = 0
    for op in div_ops:
        n_levels = max(n_levels, op[0] + 1)
    for op in upd_ops:
        n_levels = max(n_levels, op[0] + 1)
    empty = np.empty(0, dtype=np.intp)
    div_by: List[List[Tuple[int, int, int]]] = [[] for _ in range(n_levels)]
    upd_by: List[List[Tuple[int, int, int, int]]] = [
        [] for _ in range(n_levels)]
    for op in div_ops:
        div_by[op[0]].append(op)
    for op in upd_ops:
        upd_by[op[0]].append(op)
    levels = []
    for lv in range(n_levels):
        divs = div_by[lv]
        if divs:
            div_dest = np.array([d[1] for d in divs], dtype=np.intp)
            div_src = np.array([d[2] for d in divs], dtype=np.intp)
        else:
            div_dest = div_src = empty
        upds = upd_by[lv]
        if upds:
            dest = np.array([u[1] for u in upds], dtype=np.intp)
            lsrc = np.array([u[2] for u in upds], dtype=np.intp)
            usrc = np.array([u[3] for u in upds], dtype=np.intp)
            lsrc, usrc, uniq, segs = _segment(dest, lsrc, usrc)
        else:
            lsrc = usrc = uniq = segs = empty
        levels.append((div_dest, div_src, lsrc, usrc, uniq, segs))
    return levels


def _group_forward_levels(n: int, pr: np.ndarray,
                          l_entries: List[Tuple[int, int, int]]
                          ) -> List[Tuple[np.ndarray, ...]]:
    """Level schedule of the unit-lower forward substitution."""
    rstep = np.empty(n, dtype=np.intp)
    rstep[pr] = np.arange(n, dtype=np.intp)
    if not l_entries:
        return []
    dest = np.array([rstep[r] for r, _k, _lid in l_entries], dtype=np.intp)
    src = np.array([k for _r, k, _lid in l_entries], dtype=np.intp)
    lid = np.array([cell for _r, _k, cell in l_entries], dtype=np.intp)
    flevel = np.zeros(n, dtype=np.intp)
    order = np.argsort(dest, kind="stable")
    for o in order:
        lv = flevel[src[o]] + 1
        if lv > flevel[dest[o]]:
            flevel[dest[o]] = lv
    levels = []
    op_level = flevel[dest]
    for lv in range(1, int(flevel.max()) + 1 if n else 0):
        sel = np.nonzero(op_level == lv)[0]
        if not len(sel):
            continue
        lids, srcs, uniq, segs = _segment(dest[sel], lid[sel], src[sel])
        levels.append((lids, srcs, uniq, segs))
    return levels


def _group_backward_levels(n: int, pc: np.ndarray, piv_ids: np.ndarray,
                           u_entries: List[List[Tuple[int, int]]]
                           ) -> List[Tuple[np.ndarray, ...]]:
    """Level schedule of the backward substitution (with pivot divide)."""
    cstep = np.empty(n, dtype=np.intp)
    cstep[pc] = np.arange(n, dtype=np.intp)
    blevel = np.zeros(n, dtype=np.intp)
    ops_dest: List[int] = []
    ops_src: List[int] = []
    ops_uid: List[int] = []
    for t in range(n - 1, -1, -1):
        lv = 0
        for cc, uid in u_entries[t]:
            s = int(cstep[cc])
            ops_dest.append(t)
            ops_src.append(s)
            ops_uid.append(uid)
            if blevel[s] + 1 > lv:
                lv = blevel[s] + 1
        blevel[t] = lv
    dest = np.array(ops_dest, dtype=np.intp)
    src = np.array(ops_src, dtype=np.intp)
    uid = np.array(ops_uid, dtype=np.intp)
    op_level = blevel[dest] if len(dest) else np.empty(0, dtype=np.intp)
    empty = np.empty(0, dtype=np.intp)
    levels = []
    for lv in range(int(blevel.max()) + 1 if n else 0):
        ts = np.nonzero(blevel == lv)[0].astype(np.intp)
        sel = np.nonzero(op_level == lv)[0]
        if len(sel):
            uids, srcs, uniq, segs = _segment(dest[sel], uid[sel], src[sel])
        else:
            uids = srcs = uniq = segs = empty
        levels.append((uids, srcs, uniq, segs, ts,
                       piv_ids[ts].astype(np.intp)))
    return levels
