"""Compiled stamp plans: the solver fast path.

The legacy Newton loop re-stamps *every* element of the circuit into a
zeroed dense matrix on *every* iterate, through the string-keyed
:class:`~repro.spice.mna.StampContext` API.  For the paper's local-block
fixtures that plumbing — dict lookups, per-element Python calls,
property chains down to the technology tables — dominates the solve.

A :class:`StampPlan` compiles a circuit once per :class:`MnaSystem`:

* the circuit is partitioned into **linear** elements (resistor,
  capacitor, voltage source, current source) and the **nonlinear rest**;
* the linear *matrix* contributions are assembled once per
  ``(dt, integrator, gmin)`` key and cached — per Newton iterate the
  base is block-copied, never re-stamped;
* the linear *RHS* contributions (source waveforms, capacitor history
  currents) are assembled once per solve point; the capacitor history
  scatter is vectorised with ``np.add.at`` over precompiled index
  arrays;
* nonlinear elements are compiled to per-element *value fillers* with
  node indices resolved to integers once; their matrix/RHS writes
  replay through two ``np.add.at`` scatters over index/sign arrays
  frozen in canonical write order (unknown element types fall back to
  their generic ``stamp()`` through a facade system with direct
  per-element writes, so plans accept any circuit);
* the LU factorisation is cached by matrix *content* in a small LRU
  (``_MAX_LU_FACTORS`` entries, ``spice.lu.evictions`` counts the
  overflow) and reused when the matrix is unchanged between iterates
  or timesteps (``spice.lu.reuse`` / ``spice.lu.refactor`` count the
  split).  Content keying makes invalidation automatic: gmin stepping,
  source stepping and substep halving all change the assembled matrix,
  so they can never reuse a stale factorisation by construction.  On
  fully-compiled plans the content key is the tuple of assembly
  *inputs* — the linear-base key, ``extra_gmin``, and the bytes of the
  (small) nonlinear value vector — because assembly is a deterministic
  function of those inputs, equal inputs imply an equal matrix.  That
  replaces an O(n²) ``matrix.tobytes()`` copy per Newton iterate with
  an O(#nonlinear-slots) one; plans carrying generic-fallback stamps
  (whose writes are opaque to the compiler) keep the full-matrix key.

**Backends.**  ``backend`` selects the linear kernel: ``"dense"`` (the
default — LAPACK LU via :mod:`repro.spice.linalg`, bit-identical to
the legacy path), ``"sparse"`` (the pattern-compiled CSR path of
:mod:`repro.spice.sparse` — assembly scatters into the frozen value
array, never touching an O(n²) matrix copy), or ``"auto"`` (sparse at
and above ``SPARSE_AUTO_THRESHOLD`` unknowns, dense below; the
crossover is calibrated by ``benchmarks/test_sparse_throughput.py``).
Sparse factorisations live in the same content-keyed LRU, so the
recovery ladder invalidates them exactly like dense ones.  Plans
carrying generic-fallback stamps always solve dense (their writes are
opaque to the pattern compiler); ``spice.sparse.generic_fallback``
counts that demotion.

**Bit-identity contract.**  Both the plan and the legacy path stamp in
the canonical order of :func:`stamping_order` (linear groups by type in
circuit order, then the rest in circuit order), every compiled closure
replays the exact arithmetic of the element's ``stamp()`` (same
expression trees, same accumulation order — IEEE addition is not
associative, so order *is* the contract), and both paths factorise
through :mod:`repro.spice.linalg`.  ``tests/spice/test_stampplan.py``
asserts ``TransientResult.data`` equality to the last bit.
"""

from __future__ import annotations

import dataclasses
import math
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.spice import linalg
from repro.spice.elements import (Capacitor, CurrentSource, Diode, Resistor,
                                  Switch, VoltageSource)
from repro.spice.sparse import SparseContext
from repro.spice.mna import MnaSystem, StampContext
from repro.spice.mosfet import _FD_STEP, MosfetElement
from repro.spice.netlist import CircuitElement
from repro.tech.node import Polarity

#: Exact types compiled into the linear base (subclasses keep their
#: generic ``stamp()`` and are treated as nonlinear-unknown).
_LINEAR_TYPES = (Resistor, Capacitor, VoltageSource, CurrentSource)

#: Upper bound on cached linear bases (substep halving creates a new
#: dt per halving; the ladder is bounded, but stay defensive).
_MAX_BASES = 64

#: Solves per LU reuse-ratio telemetry sample: wide enough that the
#: enabled path amortises the sampler call to noise, narrow enough to
#: resolve reuse collapses (e.g. a source ramp) inside one run.
_LU_SAMPLE_WINDOW = 256

#: Upper bound on content-keyed factorisations held per plan.  Long
#: sweeps walk through an unbounded stream of distinct matrices; the
#: LRU keeps the working set (a Newton fixed point plus the recovery
#: ladder's warm restarts) while bounding memory.
_MAX_LU_FACTORS = 16

#: ``backend="auto"`` picks the sparse path at and above this unknown
#: count.  Calibrated by ``benchmarks/test_sparse_throughput.py``: at
#: n ≈ 64 the dense LAPACK kernel still wins (lower fixed overhead),
#: from n ≈ 256 the pattern-compiled sparse refactor is an order of
#: magnitude faster and the gap widens cubically.
SPARSE_AUTO_THRESHOLD = 128


def resolve_backend(backend: str, size: int) -> str:
    """Resolve a requested backend to ``"dense"`` or ``"sparse"``.

    ``"auto"`` compares ``size`` (MNA unknown count) against
    :data:`SPARSE_AUTO_THRESHOLD` and counts its decision in
    ``spice.sparse.auto.dense`` / ``spice.sparse.auto.sparse``.
    """
    if backend not in ("dense", "sparse", "auto"):
        raise ConfigurationError(
            f"backend must be 'dense', 'sparse' or 'auto', got {backend!r}")
    if backend == "auto":
        choice = "sparse" if size >= SPARSE_AUTO_THRESHOLD else "dense"
        obs.metrics().counter(f"spice.sparse.auto.{choice}").inc()
        return choice
    return backend


class _LuCache:
    """Small LRU of content-keyed factorisations (dense and sparse).

    Lookups refresh recency; inserting past ``capacity`` evicts the
    least recently used entry and counts one ``spice.lu.evictions``.
    Because entries are keyed by matrix *content* (or the assembly
    inputs that determine it), an eviction can only ever cost a
    refactorisation, never correctness.
    """

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[object, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: object) -> Optional[object]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: object, factors: object) -> None:
        self._entries[key] = factors
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            obs.metrics().counter("spice.lu.evictions").inc()


def stamping_order(circuit) -> List[CircuitElement]:
    """The canonical element stamping order shared by both solver paths.

    Linear elements grouped by type — resistors, capacitors, voltage
    sources, current sources, each group in circuit order — followed by
    everything else in circuit order.  Grouping is what lets the plan
    pre-accumulate the linear part while keeping per-matrix-cell
    accumulation order (and therefore float rounding) identical to a
    sequential stamp walk.
    """
    groups: Dict[type, List[CircuitElement]] = {t: [] for t in _LINEAR_TYPES}
    rest: List[CircuitElement] = []
    for element in circuit.elements:
        bucket = groups.get(type(element))
        if bucket is not None:
            bucket.append(element)
        else:
            rest.append(element)
    ordered: List[CircuitElement] = []
    for linear_type in _LINEAR_TYPES:
        ordered.extend(groups[linear_type])
    ordered.extend(rest)
    return ordered


@dataclasses.dataclass
class _SolvePoint:
    """Everything fixed across the Newton iterates of one solve point."""

    base: np.ndarray
    rhs_point: np.ndarray
    gmin: float
    extra_gmin: float
    t: float
    dt: Optional[float]
    integrator: str
    cap_state: Optional[Dict[str, float]]
    x_prev: Optional[np.ndarray]
    source_scale: float
    #: Cache key of ``base`` — the (dt, integrator, gmin) tuple.  Part
    #: of the inputs-mode LU content key (see StampPlan._solve).
    base_key: Optional[Tuple[Optional[float], str, float]] = None


#: Compiled stamper: (x, matrix_flat, rhs, gmin, point) -> None.  The
#: matrix argument is the *raveled view* of the plan's matrix buffer —
#: scalar writes through precompiled flat indices are measurably
#: cheaper than 2-D tuple indexing, and hit the same memory.
_Stamper = Callable[[np.ndarray, np.ndarray, np.ndarray, float,
                     _SolvePoint], None]


class StampPlan:
    """One circuit compiled for fast repeated Newton solves."""

    def __init__(self, system: MnaSystem, *, lu_key: str = "inputs",
                 backend: str = "dense") -> None:
        if lu_key not in ("inputs", "matrix"):
            raise ConfigurationError(
                f"lu_key must be 'inputs' or 'matrix', got {lu_key!r}")
        backend = resolve_backend(backend, system.size)
        self.system = system
        self.size = system.size
        self._n_nodes = len(system.node_index)
        ground_slot = self.size  # pad slot for gathers/scatters via ground
        self._ground_slot = ground_slot

        self._matrix = np.zeros((self.size, self.size))
        self._matrix_flat = self._matrix.ravel()  # shared-memory view
        self._rhs = np.zeros(self.size)
        self._diag_flat = np.arange(self._n_nodes) * (self.size + 1)

        # Facade sharing the plan's buffers, for generic-fallback stamps.
        view = MnaSystem.__new__(MnaSystem)
        view.circuit = system.circuit
        view.node_index = system.node_index
        view.branch_index = system.branch_index
        view.size = system.size
        view.matrix = self._matrix
        view.rhs = self._rhs
        self._view = view

        self._resistors: List[Tuple[int, int, float]] = []
        self._cap_entries: List[Tuple[int, int, float]] = []
        self._cap_names: List[str] = []
        self._vsources: List[Tuple[VoltageSource, int, int, int]] = []
        self._isources: List[Tuple[CurrentSource, int, int]] = []
        nonlinear: List[CircuitElement] = []

        for element in stamping_order(system.circuit):
            kind = type(element)
            if kind is Resistor:
                self._resistors.append((
                    self._idx(element.node_a), self._idx(element.node_b),
                    1.0 / element.resistance))
            elif kind is Capacitor:
                self._cap_entries.append((
                    self._idx(element.node_a), self._idx(element.node_b),
                    element.capacitance))
                self._cap_names.append(element.name)
            elif kind is VoltageSource:
                self._vsources.append((
                    element, system.branch(element.name),
                    self._idx(element.node_p), self._idx(element.node_n)))
            elif kind is CurrentSource:
                self._isources.append((
                    element, self._idx(element.node_from),
                    self._idx(element.node_to)))
            else:
                nonlinear.append(element)
        self.nonlinear_count = len(nonlinear)

        # Nonlinear elements compile to *value fillers*: per iterate
        # each computes its companion-model values (conductances plus
        # the linearisation residue) into one shared list, and the
        # matrix/RHS writes replay through two np.add.at scatters over
        # index/slot/sign arrays frozen at compile time in canonical
        # write order (np.add.at applies unbuffered, in index order, so
        # per-cell accumulation order — and therefore rounding — is
        # identical to the sequential legacy walk).  Circuits with an
        # element type the compiler does not know fall back to direct
        # per-element stamping so generic stamps interleave correctly.
        self._batched = all(type(el) in (Diode, Switch, MosfetElement)
                            for el in nonlinear)
        self._fillers: List[Callable] = []
        self._stampers: List[_Stamper] = []
        if self._batched:
            m_writes: List[Tuple[int, int, float]] = []
            r_writes: List[Tuple[int, int, float]] = []
            slot = 0
            for el in nonlinear:
                fill, n_slots, mw, rw = self._compile_fill(el, slot)
                self._fillers.append(fill)
                m_writes.extend(mw)
                r_writes.extend(rw)
                slot += n_slots
            self._nl_vals = [0.0] * slot
            self._m_idx = np.array([w[0] for w in m_writes], dtype=np.intp)
            self._m_slot = np.array([w[1] for w in m_writes], dtype=np.intp)
            self._m_sign = np.array([w[2] for w in m_writes])
            self._r_idx = np.array([w[0] for w in r_writes], dtype=np.intp)
            self._r_slot = np.array([w[1] for w in r_writes], dtype=np.intp)
            self._r_sign = np.array([w[2] for w in r_writes])
        else:
            for el in nonlinear:
                self._stampers.append(self._compile(el))

        # Vectorised capacitor gather/scatter indices (ground -> pad slot).
        n_caps = len(self._cap_entries)
        self._cap_ia = np.empty(n_caps, dtype=np.intp)
        self._cap_ib = np.empty(n_caps, dtype=np.intp)
        self._cap_c = np.empty(n_caps)
        rhs_idx = np.empty(2 * n_caps, dtype=np.intp)
        for j, (ia, ib, c) in enumerate(self._cap_entries):
            self._cap_ia[j] = ia if ia >= 0 else ground_slot
            self._cap_ib[j] = ib if ib >= 0 else ground_slot
            self._cap_c[j] = c
            # Replays stamp_current(node_b, node_a, ieq): -ieq at b, +ieq
            # at a, in that per-capacitor order.
            rhs_idx[2 * j] = ib if ib >= 0 else ground_slot
            rhs_idx[2 * j + 1] = ia if ia >= 0 else ground_slot
        self._cap_rhs_idx = rhs_idx
        # Scratch buffers for _point_rhs (overwritten every point).
        self._xg_pad = np.zeros(self.size + 1)
        self._cap_vals = np.empty(2 * n_caps)

        self._bases: Dict[Tuple[Optional[float], str, float], np.ndarray] = {}
        # Inputs-mode keys are only sound when every matrix write is
        # compiler-known; generic-fallback plans key on matrix bytes.
        self._lu_inputs_key = self._batched and lu_key == "inputs"
        self._lu_cache = _LuCache(_MAX_LU_FACTORS)
        # Windowed LU telemetry: every _LU_SAMPLE_WINDOW solves, the
        # window's reuse fraction is sampled into the
        # ``spice.lu.reuse_ratio`` time series (x-axis: total solves).
        self._lu_solves = 0
        self._lu_window_solves = 0
        self._lu_window_reuses = 0

        # Sparse backend: freeze the sparsity pattern (every position
        # any stamp can write) and the scatter maps from the compiled
        # write lists into it.  Generic-fallback plans stay dense —
        # their writes are opaque to the pattern compiler.
        if backend == "sparse" and not self._batched:
            obs.metrics().counter("spice.sparse.generic_fallback").inc()
            backend = "dense"
        self.backend = backend
        self._sparse: Optional[SparseContext] = None
        if backend == "sparse":
            self._compile_sparse()

    def _compile_sparse(self) -> None:
        """Freeze the sparsity pattern and the value-scatter maps."""
        size = self.size
        pattern = {int(flat) for flat in self._m_idx}
        for ia, ib, _g in self._resistors:
            _pattern_couple(pattern, ia, ib, size)
        for ia, ib, _c in self._cap_entries:
            _pattern_couple(pattern, ia, ib, size)
        for _element, br, ip, in_ in self._vsources:
            if ip >= 0:
                pattern.add(ip * size + br)
                pattern.add(br * size + ip)
            if in_ >= 0:
                pattern.add(in_ * size + br)
                pattern.add(br * size + in_)
        # Every node diagonal: extra_gmin (the gmin-stepping rung)
        # writes them all, so they must be structural even when no
        # element stamps one.
        pattern.update(int(flat) for flat in self._diag_flat)
        flat = np.array(sorted(pattern), dtype=np.intp)
        self._sparse = SparseContext(size, flat)
        pos_of = {int(f): pos for pos, f in enumerate(flat)}
        self._sp_m_pos = np.array([pos_of[int(i)] for i in self._m_idx],
                                  dtype=np.intp)
        self._sp_diag_pos = np.array(
            [pos_of[int(i)] for i in self._diag_flat], dtype=np.intp)
        # Linear base gathered into pattern order, cached per base key
        # alongside _bases.
        self._sp_bases: Dict[Tuple[Optional[float], str, float],
                             np.ndarray] = {}

    # -- compilation -----------------------------------------------------------

    def _idx(self, node: str) -> int:
        return self.system.index(node)

    def _compile_fill(self, element: CircuitElement, slot: int
                      ) -> Tuple[Callable, int,
                                 List[Tuple[int, int, float]],
                                 List[Tuple[int, int, float]]]:
        """Compile one nonlinear element to its value filler.

        Returns ``(fill, n_slots, matrix_writes, rhs_writes)`` where
        ``fill(x, vals, gmin, point)`` stores the element's companion
        values into ``vals[slot:slot + n_slots]`` and each write tuple
        ``(flat_index, value_slot, sign)`` replays one legacy
        ``+=``/``-=`` in its original order (``a -= v`` is exactly
        ``a += (-1.0 * v)`` in IEEE arithmetic).
        """
        kind = type(element)
        if kind is Diode:
            return self._compile_diode(element, slot)
        if kind is Switch:
            return self._compile_switch(element, slot)
        return self._compile_mosfet(element, slot)

    def _compile(self, element: CircuitElement) -> _Stamper:
        """Direct-write stamper for plans with generic-fallback elements."""
        if type(element) in (Diode, Switch, MosfetElement):
            fill, n_slots, m_writes, r_writes = self._compile_fill(element, 0)
            return _direct_adapter(fill, n_slots, m_writes, r_writes)
        return self._compile_generic(element)

    def _compile_diode(self, element: Diode, slot: int):
        a, c = self._idx(element.anode), self._idx(element.cathode)
        i_sat, v_t, v_clip = element.i_sat, element.v_t, element.v_clip
        exp = math.exp
        size = self.size
        has_a, has_c = a >= 0, c >= 0
        s_g, s_res = slot, slot + 1

        def fill(x, vals, gmin, point):
            va = x.item(a) if has_a else 0.0
            vc = x.item(c) if has_c else 0.0
            v = va - vc
            # Inlined Diode.current_and_conductance (overflow clamp).
            if v <= v_clip:
                e = exp(v / v_t)
                i = i_sat * (e - 1.0)
                g = i_sat * e / v_t
            else:
                e = exp(v_clip / v_t)
                g = i_sat * e / v_t
                i = i_sat * (e - 1.0) + g * (v - v_clip)
            vals[s_g] = g
            vals[s_res] = i - g * v

        # stamp_conductance(anode, cathode, g) then
        # stamp_current(anode, cathode, residue).
        m_writes = []
        if has_a:
            m_writes.append((a * size + a, s_g, 1.0))
        if has_c:
            m_writes.append((c * size + c, s_g, 1.0))
        if has_a and has_c:
            m_writes.append((a * size + c, s_g, -1.0))
            m_writes.append((c * size + a, s_g, -1.0))
        r_writes = []
        if has_a:
            r_writes.append((a, s_res, -1.0))
        if has_c:
            r_writes.append((c, s_res, 1.0))
        return fill, 2, m_writes, r_writes

    def _compile_switch(self, element: Switch, slot: int):
        a, b = self._idx(element.node_a), self._idx(element.node_b)
        cp, cn = self._idx(element.ctrl_p), self._idx(element.ctrl_n)
        threshold, transition = element.threshold, element.transition
        g_off = element.g_off
        g_span = element.g_on - g_off
        exp = math.exp
        size = self.size
        has_a, has_b = a >= 0, b >= 0
        has_cp, has_cn = cp >= 0, cn >= 0
        s_g = slot

        def fill(x, vals, gmin, point):
            vp = x.item(cp) if has_cp else 0.0
            vn = x.item(cn) if has_cn else 0.0
            # Inlined Switch.conductance (clamped logistic).  The full
            # g_off + span*frac expression runs in every branch because
            # g_off + span*1.0 need not round back to g_on exactly.
            arg = ((vp - vn) - threshold) / transition
            if arg > 40:
                frac = 1.0
            elif arg < -40:
                frac = 0.0
            else:
                frac = 1.0 / (1.0 + exp(-arg))
            vals[s_g] = g_off + g_span * frac

        m_writes = []  # stamp_conductance(node_a, node_b, g)
        if has_a:
            m_writes.append((a * size + a, s_g, 1.0))
        if has_b:
            m_writes.append((b * size + b, s_g, 1.0))
        if has_a and has_b:
            m_writes.append((a * size + b, s_g, -1.0))
            m_writes.append((b * size + a, s_g, -1.0))
        return fill, 1, m_writes, []

    def _compile_mosfet(self, element: MosfetElement, slot: int):
        d = self._idx(element.drain)
        g_ = self._idx(element.gate)
        s = self._idx(element.source)
        nmos = element.device.polarity is Polarity.NMOS
        (vth0, dibl, alpha, swing, vt_thermal, five_vt,
         vth_at_ioff, sub_scale, drive_width) = _mosfet_constants(element)
        exp = math.exp
        fd = _FD_STEP
        size = self.size
        has_d, has_g, has_s = d >= 0, g_ >= 0, s >= 0
        s_gd, s_gm, s_res = slot, slot + 1, slot + 2

        def fill(x, vals, gmin, point):
            vd = x.item(d) if has_d else 0.0
            vg = x.item(g_) if has_g else 0.0
            vs = x.item(s) if has_s else 0.0
            # Direction dispatch of MosfetElement.current for the
            # operating point and the two finite-difference probes.
            # The gate probe shares the operating point's branch and
            # vds (same drain/source terminals, so the same expression
            # with the same operands).
            vdf = vd + fd
            vgf = vg + fd
            if nmos:
                if vd >= vs:
                    vgs0 = vg - vs; vds0 = vd - vs; neg0 = False
                    vgs2 = vgf - vs
                else:
                    vgs0 = vg - vd; vds0 = vs - vd; neg0 = True
                    vgs2 = vgf - vd
                if vdf >= vs:
                    vgs1 = vg - vs; vds1 = vdf - vs; neg1 = False
                else:
                    vgs1 = vg - vdf; vds1 = vs - vdf; neg1 = True
            else:
                if vs >= vd:
                    vgs0 = vs - vg; vds0 = vs - vd; neg0 = True
                    vgs2 = vs - vgf
                else:
                    vgs0 = vd - vg; vds0 = vd - vs; neg0 = False
                    vgs2 = vd - vgf
                if vs >= vdf:
                    vgs1 = vs - vg; vds1 = vs - vdf; neg1 = True
                else:
                    vgs1 = vdf - vg; vds1 = vdf - vs; neg1 = False
            # --- three inlined copies of _compile_mosfet_magnitude's
            # body (its vds<0 guard is dead here: the dispatch above
            # always yields vds >= 0, or NaN on divergent iterates,
            # which follows the same branches as the legacy builtins).
            vth = vth0 - dibl * abs(vds0)
            vth = vth if vth > 0.05 else 0.05
            vod = vgs0 - vth
            vgs_c = vth if vth < vgs0 else vgs0
            exponent = (vgs_c - (vth - vth_at_ioff)) / swing
            i_sub = sub_scale * 10.0 ** exponent
            if vds0 < five_vt:
                i_sub *= 1.0 - exp(-vds0 / vt_thermal)
            if vod <= 0:
                m = i_sub
            else:
                i_dsat = drive_width * vod ** alpha
                vdsat = 0.5 * vod
                vdsat = vdsat if vdsat > 0.05 else 0.05
                if vds0 >= vdsat:
                    m = i_dsat * (1.0 + 0.05 * (vds0 - vdsat)) + i_sub
                else:
                    ratio = vds0 / vdsat
                    m = i_dsat * ratio * (2.0 - ratio) + i_sub
            i0 = -m if neg0 else m

            vth = vth0 - dibl * abs(vds1)
            vth = vth if vth > 0.05 else 0.05
            vod = vgs1 - vth
            vgs_c = vth if vth < vgs1 else vgs1
            exponent = (vgs_c - (vth - vth_at_ioff)) / swing
            i_sub = sub_scale * 10.0 ** exponent
            if vds1 < five_vt:
                i_sub *= 1.0 - exp(-vds1 / vt_thermal)
            if vod <= 0:
                m = i_sub
            else:
                i_dsat = drive_width * vod ** alpha
                vdsat = 0.5 * vod
                vdsat = vdsat if vdsat > 0.05 else 0.05
                if vds1 >= vdsat:
                    m = i_dsat * (1.0 + 0.05 * (vds1 - vdsat)) + i_sub
                else:
                    ratio = vds1 / vdsat
                    m = i_dsat * ratio * (2.0 - ratio) + i_sub
            i1 = -m if neg1 else m

            vth = vth0 - dibl * abs(vds0)
            vth = vth if vth > 0.05 else 0.05
            vod = vgs2 - vth
            vgs_c = vth if vth < vgs2 else vgs2
            exponent = (vgs_c - (vth - vth_at_ioff)) / swing
            i_sub = sub_scale * 10.0 ** exponent
            if vds0 < five_vt:
                i_sub *= 1.0 - exp(-vds0 / vt_thermal)
            if vod <= 0:
                m = i_sub
            else:
                i_dsat = drive_width * vod ** alpha
                vdsat = 0.5 * vod
                vdsat = vdsat if vdsat > 0.05 else 0.05
                if vds0 >= vdsat:
                    m = i_dsat * (1.0 + 0.05 * (vds0 - vdsat)) + i_sub
                else:
                    ratio = vds0 / vdsat
                    m = i_dsat * ratio * (2.0 - ratio) + i_sub
            i2 = -m if neg0 else m

            gd = (i1 - i0) / fd
            gm = (i2 - i0) / fd
            # max(gd, 0.0) + gmin, with max() as its exact branch form
            # ("b if b > a else a", NaN included).
            gd = (0.0 if 0.0 > gd else gd) + gmin
            vals[s_gd] = gd
            vals[s_gm] = gm
            i_lin = gd * (vd - vs) + gm * (vg - vs)
            vals[s_res] = i0 - i_lin

        # stamp_conductance(drain, source, gd), then
        # stamp_transconductance(drain, source, gate, source, gm)
        # unrolled in the legacy (out, in) loop order, then
        # stamp_current(drain, source, residue).
        dd, ss = d * size + d, s * size + s
        ds, sd = d * size + s, s * size + d
        dg, sg = d * size + g_, s * size + g_
        m_writes = []
        if has_d:
            m_writes.append((dd, s_gd, 1.0))
        if has_s:
            m_writes.append((ss, s_gd, 1.0))
        if has_d and has_s:
            m_writes.append((ds, s_gd, -1.0))
            m_writes.append((sd, s_gd, -1.0))
        if has_d:
            if has_g:
                m_writes.append((dg, s_gm, 1.0))
            if has_s:
                m_writes.append((ds, s_gm, -1.0))
        if has_s:
            if has_g:
                m_writes.append((sg, s_gm, -1.0))
            m_writes.append((ss, s_gm, 1.0))
        r_writes = []
        if has_d:
            r_writes.append((d, s_res, -1.0))
        if has_s:
            r_writes.append((s, s_res, 1.0))
        return fill, 3, m_writes, r_writes

    def _compile_generic(self, element: CircuitElement) -> _Stamper:
        view = self._view

        def stamp(x, mf, rhs, gmin, point):
            ctx = StampContext(
                system=view, x=x, x_prev=point.x_prev, dt=point.dt,
                time=point.t, integrator=point.integrator,
                cap_state=point.cap_state, gmin=gmin,
                source_scale=point.source_scale)
            element.stamp(ctx)

        return stamp

    # -- linear base -----------------------------------------------------------

    def _base(self, dt: Optional[float], integrator: str,
              gmin: float) -> np.ndarray:
        key = (dt, integrator, gmin)
        base = self._bases.get(key)
        if base is None:
            if len(self._bases) >= _MAX_BASES:
                self._bases.pop(next(iter(self._bases)))
            base = self._build_base(dt, integrator, gmin)
            self._bases[key] = base
        return base

    def _build_base(self, dt: Optional[float], integrator: str,
                    gmin: float) -> np.ndarray:
        """Sequentially stamp the linear matrix part, in canonical order.

        Built once per key then block-copied per iterate, so the Python
        loop here replays the legacy accumulation order bit-for-bit at
        compile time, not in the hot path.
        """
        m = np.zeros((self.size, self.size))
        for ia, ib, g in self._resistors:
            _add_conductance(m, ia, ib, g)
        for ia, ib, c in self._cap_entries:
            if dt is None:
                g = gmin
            elif integrator == "trap":
                g = 2.0 * c / dt
            else:
                g = c / dt
            _add_conductance(m, ia, ib, g)
        for _element, br, ip, in_ in self._vsources:
            if ip >= 0:
                m[ip, br] += 1.0
                m[br, ip] += 1.0
            if in_ >= 0:
                m[in_, br] -= 1.0
                m[br, in_] -= 1.0
        return m

    def _point_rhs(self, t: float, dt: Optional[float], integrator: str,
                   source_scale: float,
                   x_history: Optional[np.ndarray],
                   cap_state: Optional[Dict[str, float]]) -> np.ndarray:
        """Linear RHS of one solve point (canonical order: C, V, I)."""
        rhs = np.zeros(self.size + 1)  # final slot absorbs ground writes
        if dt is not None and len(self._cap_c):
            xg = self._xg_pad  # trailing pad slot stays 0.0 (= ground)
            xg[:-1] = x_history
            v_prev = xg[self._cap_ia] - xg[self._cap_ib]
            if integrator == "trap":
                geq = 2.0 * self._cap_c / dt
                i_prev = np.array([
                    0.0 if cap_state is None else cap_state.get(name, 0.0)
                    for name in self._cap_names])
                ieq = geq * v_prev + i_prev
            else:
                geq = self._cap_c / dt
                ieq = geq * v_prev
            vals = self._cap_vals
            vals[0::2] = -ieq
            vals[1::2] = ieq
            np.add.at(rhs, self._cap_rhs_idx, vals)
        rhs = rhs[:-1]
        for element, br, _ip, _in in self._vsources:
            rhs[br] += element.waveform(t) * source_scale
        for element, i_from, i_to in self._isources:
            current = element.waveform(t) * source_scale
            if i_from >= 0:
                rhs[i_from] -= current
            if i_to >= 0:
                rhs[i_to] += current
        return rhs

    # -- the per-point / per-iterate API --------------------------------------

    def begin_point(self, *, t: float, dt: Optional[float] = None,
                    integrator: str = "be",
                    cap_state: Optional[Dict[str, float]] = None,
                    x_history: Optional[np.ndarray] = None,
                    gmin: float = 1e-12, extra_gmin: float = 0.0,
                    source_scale: float = 1.0) -> _SolvePoint:
        """Precompute everything fixed across one point's Newton iterates."""
        return _SolvePoint(
            base=self._base(dt, integrator, gmin),
            rhs_point=self._point_rhs(t, dt, integrator, source_scale,
                                      x_history, cap_state),
            gmin=gmin, extra_gmin=extra_gmin, t=t, dt=dt,
            integrator=integrator, cap_state=cap_state, x_prev=x_history,
            source_scale=source_scale, base_key=(dt, integrator, gmin))

    def solve_iterate(self, point: _SolvePoint, x: np.ndarray) -> np.ndarray:
        """Assemble and solve one Newton iterate at ``x``."""
        if self._sparse is not None:
            return self._solve_iterate_sparse(point, x)
        matrix, rhs = self._matrix, self._rhs
        np.copyto(matrix, point.base)
        np.copyto(rhs, point.rhs_point)
        gmin = point.gmin
        mf = self._matrix_flat
        key: Optional[object] = None
        if self._batched:
            vals = self._nl_vals
            for fill in self._fillers:
                fill(x, vals, gmin, point)
            nl_key = b""
            if vals:
                v = np.array(vals)
                np.add.at(mf, self._m_idx, v[self._m_slot] * self._m_sign)
                np.add.at(rhs, self._r_idx, v[self._r_slot] * self._r_sign)
                nl_key = v.tobytes()
            if self._lu_inputs_key:
                key = (point.base_key, point.extra_gmin, nl_key)
        else:
            for stamp in self._stampers:
                stamp(x, mf, rhs, gmin, point)
        if point.extra_gmin > 0.0:
            mf[self._diag_flat] += point.extra_gmin
        return self._solve(matrix, rhs, key)

    def _solve_iterate_sparse(self, point: _SolvePoint,
                              x: np.ndarray) -> np.ndarray:
        """Sparse twin of :meth:`solve_iterate`.

        Assembly scatters straight into the frozen pattern-value array
        (a copy of the gathered linear base, nnz-sized — no O(n²)
        matrix copy anywhere on this path).  Sparse plans are always
        fully compiled, so the LU content key is always inputs-mode.
        """
        vals = self._sparse_base(point).copy()
        rhs = self._rhs
        np.copyto(rhs, point.rhs_point)
        gmin = point.gmin
        nl_key = b""
        if self._fillers:
            nl_vals = self._nl_vals
            for fill in self._fillers:
                fill(x, nl_vals, gmin, point)
            v = np.array(nl_vals)
            np.add.at(vals, self._sp_m_pos, v[self._m_slot] * self._m_sign)
            np.add.at(rhs, self._r_idx, v[self._r_slot] * self._r_sign)
            nl_key = v.tobytes()
        if point.extra_gmin > 0.0:
            vals[self._sp_diag_pos] += point.extra_gmin
        key = (point.base_key, point.extra_gmin, nl_key)
        sparse = self._sparse
        factors = self._lu_cache.get(key)
        if factors is not None:
            self._note_solve(reused=True)
        else:
            try:
                factors = sparse.factorize(vals)
            except np.linalg.LinAlgError as exc:
                raise self.system.singular_error() from exc
            self._lu_cache.put(key, factors)
            self._note_solve(reused=False)
        return sparse.solve(factors, rhs)

    def _sparse_base(self, point: _SolvePoint) -> np.ndarray:
        """The linear base gathered into pattern order, cached per key."""
        vals = self._sp_bases.get(point.base_key)
        if vals is None:
            if len(self._sp_bases) >= _MAX_BASES:
                self._sp_bases.pop(next(iter(self._sp_bases)))
            vals = point.base.ravel()[self._sparse.flat]
            self._sp_bases[point.base_key] = vals
        return vals

    def _solve(self, matrix: np.ndarray, rhs: np.ndarray,
               key: Optional[object] = None) -> np.ndarray:
        # Content keying: stricter than element-wise equality (-0.0 and
        # +0.0 get distinct factorisations, so a reuse can never shift
        # even the sign of a zero in the solution).  Inputs-mode keys
        # (base key, extra_gmin, nonlinear-value bytes) arrive from
        # solve_iterate and are sound because assembly is deterministic:
        # equal inputs produce a byte-equal matrix.  Without one, fall
        # back to hashing the full matrix content.
        if key is None:
            key = matrix.tobytes()
        factors = self._lu_cache.get(key)
        if factors is not None:
            self._note_solve(reused=True)
        else:
            try:
                factors = linalg.lu_factorize(matrix)
            except np.linalg.LinAlgError as exc:
                raise self.system.singular_error() from exc
            self._lu_cache.put(key, factors)
            self._note_solve(reused=False)
        return linalg.lu_backsolve(factors, rhs)

    def _note_solve(self, reused: bool) -> None:
        """Count one solve in the reuse/refactor split and the window."""
        if reused:
            obs.metrics().counter("spice.lu.reuse").inc()
            self._lu_window_reuses += 1
        else:
            obs.metrics().counter("spice.lu.refactor").inc()
        self._lu_solves += 1
        self._lu_window_solves += 1
        if self._lu_window_solves >= _LU_SAMPLE_WINDOW:
            if obs.is_enabled():
                obs.timeseries().series("spice.lu.reuse_ratio").sample(
                    self._lu_solves,
                    self._lu_window_reuses / self._lu_window_solves)
            self._lu_window_solves = 0
            self._lu_window_reuses = 0


def _direct_adapter(fill: Callable, n_slots: int,
                    m_writes: List[Tuple[int, int, float]],
                    r_writes: List[Tuple[int, int, float]]) -> _Stamper:
    """Wrap a value filler as a direct-write stamper.

    Used only on plans that also carry generic-fallback elements, where
    writes must interleave per element in canonical order instead of
    scattering once per iterate.
    """
    tmp = [0.0] * n_slots

    def stamp(x, mf, rhs, gmin, point):
        fill(x, tmp, gmin, point)
        for flat, slot, sign in m_writes:
            mf[flat] += sign * tmp[slot]
        for idx, slot, sign in r_writes:
            rhs[idx] += sign * tmp[slot]

    return stamp


def _pattern_couple(pattern: set, ia: int, ib: int, size: int) -> None:
    """Add the positions :func:`_add_conductance` writes to ``pattern``."""
    if ia >= 0:
        pattern.add(ia * size + ia)
    if ib >= 0:
        pattern.add(ib * size + ib)
    if ia >= 0 and ib >= 0:
        pattern.add(ia * size + ib)
        pattern.add(ib * size + ia)


def _add_conductance(m: np.ndarray, ia: int, ib: int, g: float) -> None:
    """Replay of :meth:`MnaSystem.stamp_conductance` on a raw matrix."""
    if ia >= 0:
        m[ia, ia] += g
    if ib >= 0:
        m[ib, ib] += g
    if ia >= 0 and ib >= 0:
        m[ia, ib] -= g
        m[ib, ia] -= g


def _mosfet_constants(element: MosfetElement) -> Tuple[float, ...]:
    """Hoist every process constant a mosfet evaluation needs.

    The ``params`` property chain costs two dict lookups per call on
    the legacy path; here it is paid once at compile time.  Shared by
    :func:`_compile_mosfet_magnitude` and the inlined copies inside
    :meth:`StampPlan._compile_mosfet`.
    """
    device = element.device
    p = device.params
    vt_thermal = device.node.thermal_voltage
    return (p.vth, p.dibl, p.alpha, p.subthreshold_swing,
            vt_thermal, 5 * vt_thermal,
            max(0.05, p.vth - p.dibl * device.node.vdd),
            p.i_off * device.width / device.length_factor,
            (p.k_sat / device.length_factor) * device.width)


def _compile_mosfet_magnitude(element: MosfetElement
                              ) -> Callable[[float, float], float]:
    """Specialised twin of :meth:`repro.tech.transistor.Mosfet.drain_current`.

    Keeps the *same expression trees and evaluation order* as the
    original, so the returned values are bit-identical.  The
    ``max``/``min`` builtin calls become branches that select the
    identical float (including the builtins' first-argument NaN
    behaviour); the body-effect term is dropped because the element
    always passes vsb=0, where it is exactly zero.
    ``tests/spice/test_stampplan.py`` sweeps the terminal space to hold
    this twin to the element's own ``current()``.
    """
    (vth0, dibl, alpha, swing, vt_thermal, five_vt,
     vth_at_ioff, sub_scale, drive_width) = _mosfet_constants(element)
    exp = math.exp

    def magnitude(vgs: float, vds: float) -> float:
        if vds < 0:
            raise ConfigurationError("drain_current expects vds magnitude >= 0")
        # The branches replicate builtin max()/min() exactly, including
        # their first-argument NaN behaviour (max(a, b) is "b if b > a
        # else a"), so divergent NaN iterates follow the legacy path.
        vth = vth0 - dibl * abs(vds)
        vth = vth if vth > 0.05 else 0.05  # max(0.05, vth)
        vod = vgs - vth
        vgs_c = vth if vth < vgs else vgs  # min(vgs, vth)
        exponent = (vgs_c - (vth - vth_at_ioff)) / swing
        i_sub = sub_scale * 10.0 ** exponent
        if vds < five_vt:
            i_sub *= 1.0 - exp(-vds / vt_thermal)
        if vod <= 0:
            return i_sub
        i_dsat = drive_width * vod ** alpha
        vdsat = 0.5 * vod
        vdsat = vdsat if vdsat > 0.05 else 0.05  # max(0.05, vdsat)
        if vds >= vdsat:
            i_strong = i_dsat * (1.0 + 0.05 * (vds - vdsat))
        else:
            ratio = vds / vdsat
            i_strong = i_dsat * ratio * (2.0 - ratio)
        return i_strong + i_sub

    return magnitude


def _compile_mosfet_current(element: MosfetElement
                            ) -> Callable[[float, float, float], float]:
    """Specialised twin of :meth:`MosfetElement.current`.

    The compiled stamper inlines this direction dispatch at each of its
    three drain-current evaluations; this wrapper exists for DC-sweep
    equivalence tests against the element's own ``current()``.
    """
    magnitude = _compile_mosfet_magnitude(element)

    if element.device.polarity is Polarity.NMOS:
        def current(v_d: float, v_g: float, v_s: float) -> float:
            if v_d >= v_s:
                return magnitude(v_g - v_s, v_d - v_s)
            return -magnitude(v_g - v_d, v_s - v_d)
    else:
        def current(v_d: float, v_g: float, v_s: float) -> float:
            if v_s >= v_d:
                return -magnitude(v_s - v_g, v_s - v_d)
            return magnitude(v_d - v_g, v_d - v_s)

    return current
