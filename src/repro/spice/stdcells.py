"""Standard subcircuit builders: inverters, chains, ring oscillators,
latch sense amplifiers.

These compose the :class:`~repro.spice.subckt.Scope` mechanism with the
:mod:`repro.tech` device cards.  The ring oscillator doubles as a
cross-check of the analytic FO4 delay used by the architecture timing
model (see ``tests/spice/test_stdcells.py``).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.spice.elements import Capacitor, VoltageSource, dc
from repro.spice.mosfet import MosfetElement
from repro.spice.netlist import Circuit
from repro.spice.subckt import Scope
from repro.tech.node import Polarity, TechnologyNode, VtFlavor
from repro.tech.transistor import Mosfet
from repro.units import fF


def add_inverter(scope: Scope, node: TechnologyNode,
                 input_node: str = "in", output_node: str = "out",
                 supply_node: str = "vdd",
                 nmos_units: float = 2.0, pmos_units: float = 4.0,
                 flavor: VtFlavor = VtFlavor.SVT) -> None:
    """A static CMOS inverter with explicit output self-loading.

    The MOSFET element's gate is currentless, so the inverter's input
    capacitance is stamped as an explicit capacitor — keeping transient
    loading physical when inverters are chained.
    """
    nmos = Mosfet(node, Polarity.NMOS, flavor,
                  width=node.width_units(nmos_units))
    pmos = Mosfet(node, Polarity.PMOS, flavor,
                  width=node.width_units(pmos_units))
    scope.add(MosfetElement(scope.name("mn"), scope.node(output_node),
                            scope.node(input_node), "0", nmos))
    scope.add(MosfetElement(scope.name("mp"), scope.node(output_node),
                            scope.node(input_node),
                            scope.node(supply_node), pmos))
    c_in = nmos.gate_capacitance() + pmos.gate_capacitance()
    scope.add(Capacitor(scope.name("cin"), scope.node(input_node), "0",
                        c_in))
    c_self = nmos.junction_capacitance() + pmos.junction_capacitance()
    scope.add(Capacitor(scope.name("cself"), scope.node(output_node), "0",
                        c_self))


def add_inverter_chain(scope: Scope, node: TechnologyNode, stages: int,
                       input_node: str = "in", output_node: str = "out",
                       supply_node: str = "vdd",
                       fanout: float = 1.0) -> None:
    """A chain of ``stages`` inverters, each ``fanout`` times the last."""
    if stages < 1:
        raise ConfigurationError("chain needs at least one stage")
    if fanout <= 0:
        raise ConfigurationError("fanout must be positive")
    previous = input_node
    for stage in range(stages):
        is_last = stage == stages - 1
        out = output_node if is_last else f"n{stage}"
        size = fanout ** stage
        inverter = scope.child(f"inv{stage}", ports={
            "in": previous, "out": out, "vdd": supply_node,
        })
        add_inverter(inverter, node, nmos_units=2.0 * size,
                     pmos_units=4.0 * size)
        previous = out


def build_ring_oscillator(node: TechnologyNode, stages: int = 5,
                          load_per_stage: float = 0.0) -> Circuit:
    """An odd-stage inverter ring with a supply, ready to simulate.

    The oscillation period is ``2 * stages`` stage delays; measuring it
    gives a transistor-level FO1-class delay to cross-check the analytic
    timing model against.
    """
    if stages < 3 or stages % 2 == 0:
        raise ConfigurationError("ring needs an odd stage count >= 3")
    circuit = Circuit(f"ring-{stages}")
    circuit.add(VoltageSource("vdd", "vdd", "0", dc(node.vdd)))
    for stage in range(stages):
        out = f"ring{(stage + 1) % stages}"
        scope = Scope(circuit, f"inv{stage}", ports={
            "in": f"ring{stage}", "out": out, "vdd": "vdd",
        })
        add_inverter(scope, node)
        if load_per_stage > 0:
            circuit.add(Capacitor(f"cl{stage}", out, "0", load_per_stage))
    return circuit


def add_latch_sense_amp(scope: Scope, node: TechnologyNode,
                        bit_node: str = "bit", bitb_node: str = "bitb",
                        enable_node: str = "enable",
                        supply_node: str = "vdd",
                        nmos_units: float = 4.0,
                        pmos_units: float = 6.0) -> None:
    """A cross-coupled latch sense amplifier with footed enable.

    The same topology the local-block simulation uses, packaged for
    reuse (the global SA, test benches).
    """
    from repro.spice.elements import Switch

    sa_n = Mosfet(node, Polarity.NMOS, VtFlavor.SVT,
                  width=node.width_units(nmos_units))
    sa_p = Mosfet(node, Polarity.PMOS, VtFlavor.SVT,
                  width=node.width_units(pmos_units))
    bit, bitb = scope.node(bit_node), scope.node(bitb_node)
    tail, head = scope.node("tail"), scope.node("head")
    scope.add(MosfetElement(scope.name("mn1"), bit, bitb, tail, sa_n))
    scope.add(MosfetElement(scope.name("mn2"), bitb, bit, tail, sa_n))
    scope.add(MosfetElement(scope.name("mp1"), bit, bitb, head, sa_p))
    scope.add(MosfetElement(scope.name("mp2"), bitb, bit, head, sa_p))
    scope.add(Switch(scope.name("sw_foot"), tail, "0",
                     scope.node(enable_node), "0", threshold=0.6,
                     r_on=500.0))
    scope.add(Switch(scope.name("sw_head"), head, scope.node(supply_node),
                     scope.node(enable_node), "0", threshold=0.6,
                     r_on=500.0))
