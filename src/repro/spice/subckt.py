"""Hierarchical netlist construction.

A :class:`Scope` wraps a circuit with an instance prefix and a port
map, so subcircuit builders can be written once against local node
names and instantiated many times::

    def build_divider(scope, r_top, r_bot):
        scope.add(Resistor(scope.name("rt"), scope.node("in"),
                           scope.node("mid"), r_top))
        scope.add(Resistor(scope.name("rb"), scope.node("mid"),
                           scope.node("out"), r_bot))

    c = Circuit("two-dividers")
    build_divider(Scope(c, "x1", {"in": "vin", "out": "0"}), 1e3, 1e3)
    build_divider(Scope(c, "x2", {"in": "vin", "out": "0"}), 2e3, 1e3)

Internal nodes and element names are prefixed with the instance name
(``x1.mid``, ``x1.rt``); ports resolve through the map.  No macro
expansion, no magic — just systematic naming.
"""

from __future__ import annotations

from typing import Dict, Mapping, Set

from repro.errors import NetlistError
from repro.spice.netlist import GROUND, Circuit, CircuitElement


class Scope:
    """A naming scope for one subcircuit instance."""

    def __init__(self, circuit: Circuit, instance: str,
                 ports: Mapping[str, str] | None = None) -> None:
        if not instance:
            raise NetlistError("instance name must be non-empty")
        if "." in instance:
            raise NetlistError("instance names must not contain '.'")
        self.circuit = circuit
        self.instance = instance
        self.ports: Dict[str, str] = dict(ports or {})
        self._resolved_ports: Set[str] = set()

    def node(self, local_name: str) -> str:
        """Resolve a local node name: port mapping first, else prefixed.

        The ground node is global: ``"0"`` stays ``"0"`` everywhere.
        """
        if local_name == GROUND:
            return GROUND
        if local_name in self.ports:
            self._resolved_ports.add(local_name)
            return self.ports[local_name]
        return f"{self.instance}.{local_name}"

    def unresolved_ports(self) -> Set[str]:
        """Ports declared in the map but never resolved by the builder.

        A non-empty result after building usually means the instance
        and the subcircuit disagree on a port name — the wire the port
        was meant to connect is dangling.  The model checker reports
        these as rule ``M207`` (:func:`repro.analysis.model.check_scope`).
        """
        return set(self.ports) - self._resolved_ports

    def name(self, local_name: str) -> str:
        """Prefixed element name for this instance."""
        return f"{self.instance}.{local_name}"

    def add(self, element: CircuitElement) -> CircuitElement:
        """Add an element built with this scope's names."""
        return self.circuit.add(element)

    def child(self, instance: str,
              ports: Mapping[str, str] | None = None) -> "Scope":
        """A nested scope (instance names concatenate with '/')."""
        nested = Scope.__new__(Scope)
        nested.circuit = self.circuit
        nested.instance = f"{self.instance}/{instance}"
        nested.ports = {
            local: self.node(parent)
            for local, parent in (ports or {}).items()
        }
        nested._resolved_ports = set()
        return nested
