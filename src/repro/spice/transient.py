"""Fixed-step transient engine.

Each time point is solved with damped Newton iteration over the
companion-model stamps of all elements.  Linear circuits converge in a
single iteration; the MOSFET and switch elements make it genuinely
nonlinear.  Backward Euler is the default (L-stable, forgiving);
trapezoidal integration is available when waveform energy accuracy
matters more than start-up transients.
"""

from __future__ import annotations

import dataclasses
import logging
import math
from typing import Dict, Optional

import numpy as np

from repro import obs
from repro.errors import ConfigurationError, ConvergenceError, SimulationError
from repro.exec.supervise import tick as _supervision_tick
from repro.spice.elements import Capacitor
from repro.spice.mna import MnaSystem, StampContext
from repro.spice.netlist import Circuit
from repro.spice.recovery import (DEFAULT_RECOVERY, RecoveryConfig,
                                  RecoveryReport, note_recovery_success)
from repro.spice.stampplan import StampPlan, stamping_order

_log = logging.getLogger(__name__)

_MAX_NEWTON = 250
_V_TOL = 1e-7
_DAMP_LIMIT = 0.4

#: Histogram buckets for Newton iterations spent per accepted timestep
#: (recovery rungs can burn hundreds on one stiff step).
_NEWTON_BUCKETS = (1, 2, 3, 5, 10, 20, 50, 100, 250)


class _NewtonMeter:
    """Accumulates Newton iterations across one output timestep.

    One histogram observation per *accepted timestep* (not per solve
    point): recovery attempts, substeps and ladder stages all fold into
    the step that needed them, so the fast path's iterate savings show
    up directly in run reports.  ``substeps`` records how many local
    substeps the *last* attempt used — after a successful step that is
    the accepted attempt, so ``dt / substeps`` is the effective local
    time step the telemetry series samples.
    """

    __slots__ = ("iterations", "substeps")

    def __init__(self) -> None:
        self.iterations = 0
        self.substeps = 1

    def add(self, iterations: int) -> None:
        self.iterations += iterations


@dataclasses.dataclass
class TransientResult:
    """Waveforms produced by :func:`simulate_transient`.

    ``data`` holds the raw solution matrix (time points x unknowns);
    access it through :meth:`voltage` and :meth:`branch_current`.
    """

    circuit: Circuit
    time: np.ndarray
    data: np.ndarray
    node_index: Dict[str, int]
    branch_index: Dict[str, int]

    def voltage(self, node: str) -> np.ndarray:
        """Waveform of ``node``; ground returns all zeros."""
        if node == "0":
            return np.zeros_like(self.time)
        try:
            return self.data[:, self.node_index[node]]
        except KeyError as exc:
            raise SimulationError(f"no node {node!r} in results") from exc

    def branch_current(self, source_name: str) -> np.ndarray:
        """Current through a voltage source (flowing p -> n inside it).

        A source delivering power to the circuit shows a *negative*
        branch current under this convention.
        """
        try:
            return self.data[:, self.branch_index[source_name]]
        except KeyError as exc:
            raise SimulationError(
                f"no voltage source named {source_name!r} in results"
            ) from exc

    def final_voltage(self, node: str) -> float:
        return float(self.voltage(node)[-1])


def simulate_transient(circuit: Circuit, t_stop: float, dt: float,
                       initial_voltages: Optional[Dict[str, float]] = None,
                       integrator: str = "be",
                       recovery: Optional[RecoveryConfig] = None,
                       stamp_plan: bool = True,
                       backend: str = "auto") -> TransientResult:
    """Simulate ``circuit`` from 0 to ``t_stop`` with fixed step ``dt``.

    ``initial_voltages`` pins the t=0 node voltages (unlisted nodes start
    at 0 V); capacitors with an ``initial_voltage`` override the implied
    difference across themselves by adjusting nothing — their companion
    history simply starts from the node values, so set the *node*
    voltages to express initial charge.

    ``recovery`` tunes the escalation ladder walked when a time point
    fails to converge (see :mod:`repro.spice.recovery`).

    ``stamp_plan`` selects the compiled fast path
    (:class:`~repro.spice.stampplan.StampPlan`, the default) or the
    legacy per-element stamping loop; both produce bit-identical
    results — the flag exists for benchmarking and verification.

    ``backend`` selects the linear kernel of the fast path: ``"dense"``,
    ``"sparse"``, or ``"auto"`` (the default: sparse at and above
    :data:`~repro.spice.stampplan.SPARSE_AUTO_THRESHOLD` unknowns).
    The sparse backend agrees with dense within the documented
    tolerance (see ``docs/ARCHITECTURE.md`` §15) instead of bit-exactly
    — a different elimination order rounds differently.

    Returns a :class:`TransientResult` with one row per accepted time
    point, including t=0.
    """
    _validate_time_grid(t_stop, dt)
    if integrator not in ("be", "trap"):
        raise SimulationError(f"unknown integrator {integrator!r}")
    if recovery is None:
        recovery = DEFAULT_RECOVERY
    steps = int(round(t_stop / dt))
    if steps < 1:
        raise SimulationError("t_stop shorter than one time step")

    system = MnaSystem(circuit)
    if not stamp_plan and backend == "sparse":
        raise ConfigurationError(
            "backend='sparse' requires the stamp-plan fast path")
    plan = StampPlan(system, backend=backend) if stamp_plan else None
    n_unknowns = system.size
    n_nodes = len(system.node_index)

    x = _initial_state(circuit, system, initial_voltages)

    capacitors = [e for e in circuit.elements if isinstance(e, Capacitor)]
    cap_state: Dict[str, float] = {c.name: 0.0 for c in capacitors}

    times = np.linspace(0.0, steps * dt, steps + 1)
    data = np.empty((steps + 1, n_unknowns))
    data[0] = x

    _log.debug("transient %r: %d steps of %gs (%s)",
               circuit.name, steps, dt, integrator)
    # Hoisted once per run: the disabled path pays a single None check
    # per accepted step, never a sampler call.
    if obs.is_enabled():
        iter_series = obs.timeseries().series("spice.newton.iterations")
        dt_series = obs.timeseries().series("spice.dt.effective")
    else:
        iter_series = dt_series = None
    with obs.span("spice.transient", circuit=circuit.name, steps=steps,
                  integrator=integrator,
                  backend=plan.backend if plan is not None else "dense"):
        for step in range(1, steps + 1):
            # Cooperative deadline check: a supervised sample whose
            # transient runs past its budget raises DeadlineExceeded
            # here instead of waiting for the parent's hard kill.
            _supervision_tick()
            t = times[step]
            x_prev = data[step - 1]
            # Trapezoidal needs a consistent capacitor-current history,
            # which an arbitrary initial condition does not provide; the
            # standard remedy is one backward-Euler step to damp the
            # inconsistency.
            step_integrator = "be" if (integrator == "trap" and step == 1) \
                else integrator
            meter = _NewtonMeter()
            x = _solve_step_with_recovery(
                system, circuit, x_prev, t - dt, dt, step_integrator,
                cap_state, capacitors, recovery, plan=plan, meter=meter)
            obs.metrics().histogram("spice.newton.iterations",
                                    _NEWTON_BUCKETS).observe(meter.iterations)
            if iter_series is not None:
                iter_series.sample(t, meter.iterations)
                dt_series.sample(t, dt / meter.substeps)
            if integrator == "trap" and step == 1:
                ctx = StampContext(system=system, x=x, x_prev=x_prev, dt=dt,
                                   time=t, integrator="be",
                                   cap_state=cap_state)
                for cap in capacitors:
                    cap_state[cap.name] = cap.branch_current(ctx, x)
            data[step] = x
        obs.metrics().counter("spice.timesteps").inc(steps)

    return TransientResult(
        circuit=circuit,
        time=times,
        data=data,
        node_index=dict(system.node_index),
        branch_index=dict(system.branch_index),
    )


def _initial_state(circuit: Circuit, system: MnaSystem,
                   initial_voltages: Optional[Dict[str, float]]
                   ) -> np.ndarray:
    """The t=0 unknown vector: pinned nodes, then capacitor overrides.

    Shared with :mod:`repro.spice.batch` so batched runs start from the
    byte-identical state a scalar run would.  Capacitor overrides apply
    sequentially in circuit order (an override may read a node another
    capacitor just set), so this stays a Python loop by design.
    """
    x = np.zeros(system.size)
    if initial_voltages:
        for node, voltage in initial_voltages.items():
            idx = system.index(node)
            if idx >= 0:
                x[idx] = voltage
    for element in circuit.elements:
        if isinstance(element, Capacitor) and element.initial_voltage is not None:
            ia = system.index(element.node_a)
            ib = system.index(element.node_b)
            if ia >= 0 and (initial_voltages is None
                            or element.node_a not in initial_voltages):
                base = x[ib] if ib >= 0 else 0.0
                x[ia] = base + element.initial_voltage
    return x


def _validate_time_grid(t_stop: float, dt: float) -> None:
    """Reject meaningless time grids before the solve loop sees them.

    Non-finite or non-positive values used to fail deep in the Newton
    loop (or silently produce a one-point run); the error now names the
    offending value at the API boundary.
    """
    for name, value in (("t_stop", t_stop), ("dt", dt)):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ConfigurationError(
                f"{name} must be a real number, got {value!r}")
        if not math.isfinite(value):
            raise ConfigurationError(f"{name}={value!r} is not finite")
        if value <= 0:
            raise ConfigurationError(f"{name}={value:g} must be positive")
    if dt > t_stop:
        raise ConfigurationError(
            f"dt={dt:g}s exceeds t_stop={t_stop:g}s: the run would not "
            "contain a single time step")


def _solve_step_with_recovery(system: MnaSystem, circuit: Circuit,
                              x_start: np.ndarray, t_start: float,
                              dt: float, integrator: str,
                              cap_state: Dict[str, float],
                              capacitors: list,
                              config: RecoveryConfig = DEFAULT_RECOVERY,
                              plan: "StampPlan | None" = None,
                              meter: "_NewtonMeter | None" = None
                              ) -> np.ndarray:
    """Advance one output step, escalating through the recovery ladder.

    Rung order is fixed (see :mod:`repro.spice.recovery`): plain Newton,
    stronger damping, local time-step halving, gmin stepping, source
    stepping.  The trapezoidal capacitor history is committed per
    successful substep (and restored before a retry), so every rung
    stays consistent for both integration methods.
    """
    report = RecoveryReport(circuit=circuit.name, time=t_start + dt)
    saved_state = dict(cap_state)

    def restore_state() -> None:
        cap_state.clear()
        cap_state.update(saved_state)

    def run_substeps(substeps: int, **solve_kwargs) -> np.ndarray:
        if meter is not None:
            meter.substeps = substeps
        x = x_start
        sub_dt = dt / substeps
        for sub in range(1, substeps + 1):
            t_sub = t_start + sub * sub_dt
            x_new = _solve_point(system, circuit, x, t_sub, sub_dt,
                                 integrator, cap_state,
                                 max_newton=config.max_newton,
                                 plan=plan, meter=meter,
                                 **solve_kwargs)
            if integrator == "trap":
                ctx = StampContext(
                    system=system, x=x_new, x_prev=x, dt=sub_dt,
                    time=t_sub, integrator=integrator,
                    cap_state=cap_state)
                for cap in capacitors:
                    cap_state[cap.name] = cap.branch_current(ctx, x_new)
            x = x_new
        return x

    last_error: ConvergenceError | None = None

    def attempt(rung: str, detail: str, substeps: int = 1,
                **solve_kwargs) -> "np.ndarray | None":
        nonlocal last_error
        # Each ladder rung is a fresh chance to notice an expired
        # per-sample deadline before burning more Newton iterations.
        _supervision_tick()
        restore_state()
        try:
            x = run_substeps(substeps, **solve_kwargs)
        except ConvergenceError as exc:
            last_error = exc
            report.record(rung, detail, converged=False)
            return None
        report.record(rung, detail, converged=True)
        return x

    # Rung 0: plain Newton over the full step.
    x = attempt("newton", "plain")
    if x is not None:
        return x

    # Rung 1: much stronger damping from the first iteration.
    if config.enable_damping:
        for factor in config.damping_factors:
            x = attempt("damping", f"damping={factor:g}",
                        initial_damping=factor)
            if x is not None:
                note_recovery_success(report)
                return x

    # Rung 2: local time-step halving with bounded retries.  Stiff
    # regeneration regions (latch sense amplifiers firing) recover here
    # without shrinking the global time step.
    if config.enable_substep:
        for halving in range(1, config.max_halvings + 1):
            obs.metrics().counter("spice.substep_halvings").inc()
            x = attempt("substep", f"substeps={2 ** halving}",
                        substeps=2 ** halving)
            if x is not None:
                note_recovery_success(report)
                return x
        obs.metrics().counter("spice.refinement_exhausted").inc()

    # Rung 3: gmin stepping — a strong leak to ground everywhere makes
    # the system benign; relax it decade by decade with warm starts.
    if config.enable_gmin:
        x = _gmin_stepping(system, circuit, x_start, t_start, dt,
                           integrator, cap_state, config, report,
                           plan=plan, meter=meter)
        if x is not None:
            note_recovery_success(report)
            return x

    # Rung 4: source stepping — ramp all independent sources from a
    # solvable fraction up to 100 %, warm-starting each stage.
    if config.enable_source:
        x = _source_stepping(system, circuit, x_start, t_start, dt,
                             integrator, cap_state, config, report,
                             plan=plan, meter=meter)
        if x is not None:
            note_recovery_success(report)
            return x

    restore_state()
    obs.metrics().counter("spice.recovery.exhausted").inc()
    obs.event("spice.recovery.exhausted", circuit=circuit.name,
              time=t_start + dt, attempts=len(report.attempts))
    _log.warning("recovery ladder exhausted for circuit %r at t=%gs "
                 "(%d attempts)", circuit.name, t_start + dt,
                 len(report.attempts))
    base = last_error or ConvergenceError(
        f"transient Newton failed for circuit {circuit.name!r}")
    raise ConvergenceError(
        f"transient Newton failed for circuit {circuit.name!r} and every "
        f"recovery rung was exhausted",
        time=base.time if base.time is not None else t_start + dt,
        iterations=base.iterations,
        worst_node=base.worst_node,
        recovery=report,
    )


def _gmin_stepping(system: MnaSystem, circuit: Circuit, x_start: np.ndarray,
                   t_start: float, dt: float, integrator: str,
                   cap_state: Dict[str, float], config: RecoveryConfig,
                   report: RecoveryReport,
                   plan: "StampPlan | None" = None,
                   meter: "_NewtonMeter | None" = None
                   ) -> "np.ndarray | None":
    """Walk the gmin ladder for one full step; None if any stage fails."""
    if meter is not None:
        meter.substeps = 1  # gmin stages solve the full step
    x = x_start
    for gmin in config.gmin_ladder:
        try:
            x = _solve_point(system, circuit, x, t_start + dt, dt,
                             integrator, cap_state,
                             max_newton=config.max_newton,
                             extra_gmin=gmin, x_history=x_start,
                             plan=plan, meter=meter)
        except ConvergenceError:
            report.record("gmin", f"gmin={gmin:g}", converged=False)
            return None
        report.record("gmin", f"gmin={gmin:g}", converged=True)
    return x


def _source_stepping(system: MnaSystem, circuit: Circuit,
                     x_start: np.ndarray, t_start: float, dt: float,
                     integrator: str, cap_state: Dict[str, float],
                     config: RecoveryConfig,
                     report: RecoveryReport,
                     plan: "StampPlan | None" = None,
                     meter: "_NewtonMeter | None" = None
                     ) -> "np.ndarray | None":
    """Walk the source ladder for one full step; None if a stage fails."""
    if meter is not None:
        meter.substeps = 1  # source stages solve the full step
    x = x_start
    for alpha in config.source_ladder:
        try:
            x = _solve_point(system, circuit, x, t_start + dt, dt,
                             integrator, cap_state,
                             max_newton=config.max_newton,
                             source_scale=alpha, x_history=x_start,
                             plan=plan, meter=meter)
        except ConvergenceError:
            report.record("source", f"sources={100 * alpha:g}%",
                          converged=False)
            return None
        report.record("source", f"sources={100 * alpha:g}%", converged=True)
    return x


def _solve_point(system: MnaSystem, circuit: Circuit, x_prev: np.ndarray,
                 t: float, dt: float, integrator: str,
                 cap_state: Dict[str, float], *,
                 max_newton: "int | None" = None,
                 initial_damping: float = 1.0,
                 extra_gmin: float = 0.0,
                 source_scale: float = 1.0,
                 x_history: "np.ndarray | None" = None,
                 plan: "StampPlan | None" = None,
                 meter: "_NewtonMeter | None" = None) -> np.ndarray:
    """Damped Newton solve of one time point.

    ``x_prev`` seeds the iteration; ``x_history`` is the solution at the
    previous *accepted* time point used by the capacitor companion
    models (defaults to ``x_prev`` — they differ only while a recovery
    rung warm-starts from an intermediate ladder stage).  ``extra_gmin``
    and ``source_scale`` implement the gmin- and source-stepping rungs;
    ``initial_damping`` starts the oscillation guard already damped.
    With a ``plan`` the iterates run on the compiled fast path; without
    one each iterate re-stamps every element (the bit-identical legacy
    reference).
    """
    x = x_prev.copy()
    if x_history is None:
        x_history = x_prev
    n_nodes = len(system.node_index)
    previous_delta: np.ndarray | None = None
    damping = initial_damping
    damp_limit = _DAMP_LIMIT * initial_damping
    damping_events = 0
    v_delta = None
    budget = _MAX_NEWTON if max_newton is None else max_newton
    if plan is not None:
        point = plan.begin_point(
            t=t, dt=dt, integrator=integrator, cap_state=cap_state,
            x_history=x_history, gmin=1e-12, extra_gmin=extra_gmin,
            source_scale=source_scale)
        order = None
    else:
        point = None
        order = stamping_order(circuit)
    for iteration in range(1, budget + 1):
        if plan is not None:
            x_new = plan.solve_iterate(point, x)
        else:
            system.reset()
            ctx = StampContext(system=system, x=x, x_prev=x_history, dt=dt,
                               time=t, integrator=integrator,
                               cap_state=cap_state, gmin=1e-12,
                               source_scale=source_scale)
            for element in order:  # noqa: L107 - the legacy reference path
                element.stamp(ctx)
            if extra_gmin > 0.0:
                for idx in range(n_nodes):
                    system.matrix[idx, idx] += extra_gmin
            x_new = system.solve()
        delta = x_new - x
        v_delta = delta[:n_nodes]
        max_step = float(np.abs(v_delta).max()) if n_nodes else 0.0
        if max_step > damp_limit:
            delta = delta * (damp_limit / max_step)
        # Oscillation guard: when successive updates point in opposite
        # directions (a limit cycle around a curvature change), shrink
        # the step until the cycle collapses into the fixed point.
        if previous_delta is not None:
            if float(np.dot(delta, previous_delta)) < 0.0:
                damping = max(damping * 0.5, 1.0 / 256.0)
                damping_events += 1
            else:
                damping = min(initial_damping, damping * 1.5)
        previous_delta = delta
        x = x + delta * damping
        if max_step < _V_TOL:
            if meter is not None:
                meter.add(iteration)
            if damping_events:
                obs.metrics().counter(
                    "spice.damping_events").inc(damping_events)
                obs.event("spice.newton.damped", circuit=circuit.name,
                          time=t, events=damping_events)
            return x
    if meter is not None:
        meter.add(budget)
    obs.metrics().counter("spice.convergence_failures").inc()
    worst_node = _worst_residual_node(system, v_delta)
    _log.debug("transient Newton failed at t=%gs for circuit %r "
               "(worst residual at node %r)", t, circuit.name, worst_node)
    raise ConvergenceError(
        f"transient Newton failed for circuit {circuit.name!r}",
        time=t, iterations=budget, worst_node=worst_node,
    )


def _worst_residual_node(system: MnaSystem,
                         v_delta: "np.ndarray | None") -> Optional[str]:
    """Name of the node whose last Newton update was largest."""
    if v_delta is None or not len(v_delta):
        return None
    worst = int(np.argmax(np.abs(v_delta)))
    for name, index in system.node_index.items():
        if index == worst:
            return name
    return None
