"""Fixed-step transient engine.

Each time point is solved with damped Newton iteration over the
companion-model stamps of all elements.  Linear circuits converge in a
single iteration; the MOSFET and switch elements make it genuinely
nonlinear.  Backward Euler is the default (L-stable, forgiving);
trapezoidal integration is available when waveform energy accuracy
matters more than start-up transients.
"""

from __future__ import annotations

import dataclasses
import logging
from typing import Dict, Optional

import numpy as np

from repro import obs
from repro.errors import ConvergenceError, SimulationError
from repro.spice.elements import Capacitor
from repro.spice.mna import MnaSystem, StampContext
from repro.spice.netlist import Circuit

_log = logging.getLogger(__name__)

_MAX_NEWTON = 250
_V_TOL = 1e-7
_DAMP_LIMIT = 0.4

#: Histogram buckets for Newton iterations spent per time point.
_NEWTON_BUCKETS = (1, 2, 3, 5, 10, 20, 50, 100, 250)


@dataclasses.dataclass
class TransientResult:
    """Waveforms produced by :func:`simulate_transient`.

    ``data`` holds the raw solution matrix (time points x unknowns);
    access it through :meth:`voltage` and :meth:`branch_current`.
    """

    circuit: Circuit
    time: np.ndarray
    data: np.ndarray
    node_index: Dict[str, int]
    branch_index: Dict[str, int]

    def voltage(self, node: str) -> np.ndarray:
        """Waveform of ``node``; ground returns all zeros."""
        if node == "0":
            return np.zeros_like(self.time)
        try:
            return self.data[:, self.node_index[node]]
        except KeyError as exc:
            raise SimulationError(f"no node {node!r} in results") from exc

    def branch_current(self, source_name: str) -> np.ndarray:
        """Current through a voltage source (flowing p -> n inside it).

        A source delivering power to the circuit shows a *negative*
        branch current under this convention.
        """
        try:
            return self.data[:, self.branch_index[source_name]]
        except KeyError as exc:
            raise SimulationError(
                f"no voltage source named {source_name!r} in results"
            ) from exc

    def final_voltage(self, node: str) -> float:
        return float(self.voltage(node)[-1])


def simulate_transient(circuit: Circuit, t_stop: float, dt: float,
                       initial_voltages: Optional[Dict[str, float]] = None,
                       integrator: str = "be") -> TransientResult:
    """Simulate ``circuit`` from 0 to ``t_stop`` with fixed step ``dt``.

    ``initial_voltages`` pins the t=0 node voltages (unlisted nodes start
    at 0 V); capacitors with an ``initial_voltage`` override the implied
    difference across themselves by adjusting nothing — their companion
    history simply starts from the node values, so set the *node*
    voltages to express initial charge.

    Returns a :class:`TransientResult` with one row per accepted time
    point, including t=0.
    """
    if t_stop <= 0 or dt <= 0:
        raise SimulationError("t_stop and dt must be positive")
    if integrator not in ("be", "trap"):
        raise SimulationError(f"unknown integrator {integrator!r}")
    steps = int(round(t_stop / dt))
    if steps < 1:
        raise SimulationError("t_stop shorter than one time step")

    system = MnaSystem(circuit)
    n_unknowns = system.size
    n_nodes = len(system.node_index)

    x = np.zeros(n_unknowns)
    if initial_voltages:
        for node, voltage in initial_voltages.items():
            idx = system.index(node)
            if idx >= 0:
                x[idx] = voltage
    for element in circuit.elements:
        if isinstance(element, Capacitor) and element.initial_voltage is not None:
            ia = system.index(element.node_a)
            ib = system.index(element.node_b)
            if ia >= 0 and (initial_voltages is None
                            or element.node_a not in initial_voltages):
                base = x[ib] if ib >= 0 else 0.0
                x[ia] = base + element.initial_voltage

    capacitors = [e for e in circuit.elements if isinstance(e, Capacitor)]
    cap_state: Dict[str, float] = {c.name: 0.0 for c in capacitors}

    times = np.linspace(0.0, steps * dt, steps + 1)
    data = np.empty((steps + 1, n_unknowns))
    data[0] = x

    _log.debug("transient %r: %d steps of %gs (%s)",
               circuit.name, steps, dt, integrator)
    with obs.span("spice.transient", circuit=circuit.name, steps=steps,
                  integrator=integrator):
        for step in range(1, steps + 1):
            t = times[step]
            x_prev = data[step - 1]
            # Trapezoidal needs a consistent capacitor-current history,
            # which an arbitrary initial condition does not provide; the
            # standard remedy is one backward-Euler step to damp the
            # inconsistency.
            step_integrator = "be" if (integrator == "trap" and step == 1) \
                else integrator
            x = _solve_step_with_refinement(
                system, circuit, x_prev, t - dt, dt, step_integrator,
                cap_state, capacitors)
            if integrator == "trap" and step == 1:
                ctx = StampContext(system=system, x=x, x_prev=x_prev, dt=dt,
                                   time=t, integrator="be",
                                   cap_state=cap_state)
                for cap in capacitors:
                    cap_state[cap.name] = cap.branch_current(ctx, x)
            data[step] = x
        obs.metrics().counter("spice.timesteps").inc(steps)

    return TransientResult(
        circuit=circuit,
        time=times,
        data=data,
        node_index=dict(system.node_index),
        branch_index=dict(system.branch_index),
    )


def _solve_step_with_refinement(system: MnaSystem, circuit: Circuit,
                                x_start: np.ndarray, t_start: float,
                                dt: float, integrator: str,
                                cap_state: Dict[str, float],
                                capacitors: list,
                                max_halvings: int = 7) -> np.ndarray:
    """Advance one output step, locally halving dt if Newton fails.

    Regenerative circuits (latch sense amplifiers firing) make single
    steps stiff; sub-stepping through the regeneration region recovers
    convergence without shrinking the global time step.  The trapezoidal
    capacitor history is committed per successful substep (and restored
    before a retry), so refinement stays consistent for both methods.
    """
    for halving in range(max_halvings + 1):
        substeps = 2 ** halving
        sub_dt = dt / substeps
        x = x_start
        saved_state = dict(cap_state)
        try:
            for sub in range(1, substeps + 1):
                t_sub = t_start + sub * sub_dt
                x_new = _solve_point(system, circuit, x, t_sub, sub_dt,
                                     integrator, cap_state)
                if integrator == "trap":
                    ctx = StampContext(
                        system=system, x=x_new, x_prev=x, dt=sub_dt,
                        time=t_sub, integrator=integrator,
                        cap_state=cap_state)
                    for cap in capacitors:
                        cap_state[cap.name] = cap.branch_current(ctx, x_new)
                x = x_new
            return x
        except ConvergenceError as exc:
            cap_state.clear()
            cap_state.update(saved_state)
            obs.metrics().counter("spice.substep_halvings").inc()
            if halving == max_halvings:
                obs.metrics().counter("spice.refinement_exhausted").inc()
                raise
            _log.debug("Newton failed (%s); retrying with %d substeps",
                       exc, 2 ** (halving + 1))
    raise ConvergenceError("unreachable")  # pragma: no cover


def _solve_point(system: MnaSystem, circuit: Circuit, x_prev: np.ndarray,
                 t: float, dt: float, integrator: str,
                 cap_state: Dict[str, float]) -> np.ndarray:
    x = x_prev.copy()
    n_nodes = len(system.node_index)
    previous_delta: np.ndarray | None = None
    damping = 1.0
    damping_events = 0
    v_delta = None
    for iteration in range(1, _MAX_NEWTON + 1):
        system.reset()
        ctx = StampContext(system=system, x=x, x_prev=x_prev, dt=dt, time=t,
                           integrator=integrator, cap_state=cap_state,
                           gmin=1e-12)
        for element in circuit.elements:
            element.stamp(ctx)
        x_new = system.solve()
        delta = x_new - x
        v_delta = delta[:n_nodes]
        max_step = float(np.max(np.abs(v_delta))) if n_nodes else 0.0
        if max_step > _DAMP_LIMIT:
            delta = delta * (_DAMP_LIMIT / max_step)
        # Oscillation guard: when successive updates point in opposite
        # directions (a limit cycle around a curvature change), shrink
        # the step until the cycle collapses into the fixed point.
        if previous_delta is not None:
            if float(np.dot(delta, previous_delta)) < 0.0:
                damping = max(damping * 0.5, 1.0 / 256.0)
                damping_events += 1
            else:
                damping = min(1.0, damping * 1.5)
        previous_delta = delta
        x = x + delta * damping
        if max_step < _V_TOL:
            m = obs.metrics()
            m.histogram("spice.newton_iterations",
                        _NEWTON_BUCKETS).observe(iteration)
            if damping_events:
                m.counter("spice.damping_events").inc(damping_events)
            return x
    obs.metrics().counter("spice.convergence_failures").inc()
    worst_node = _worst_residual_node(system, v_delta)
    _log.warning("transient Newton failed at t=%gs for circuit %r "
                 "(worst residual at node %r)", t, circuit.name, worst_node)
    raise ConvergenceError(
        f"transient Newton failed for circuit {circuit.name!r}",
        time=t, iterations=_MAX_NEWTON, worst_node=worst_node,
    )


def _worst_residual_node(system: MnaSystem,
                         v_delta: "np.ndarray | None") -> Optional[str]:
    """Name of the node whose last Newton update was largest."""
    if v_delta is None or not len(v_delta):
        return None
    worst = int(np.argmax(np.abs(v_delta)))
    for name, index in system.node_index.items():
        if index == worst:
            return name
    return None
