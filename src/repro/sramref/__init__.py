"""The SRAM baseline: Cosemans et al., ESSCIRC 2008 (paper ref. [10]).

Every figure of the paper is a head-to-head against this 128 kbit
low-power SRAM.  :mod:`repro.sramref.reference` records its published
silicon figures as calibration anchors; :mod:`repro.sramref.model`
instantiates the shared array skeleton with a 6T cell to produce the
comparable model numbers.
"""

from repro.sramref.reference import Esscirc2008Reference, PUBLISHED_REFERENCE
from repro.sramref.model import SramBaselineDesign

__all__ = [
    "Esscirc2008Reference",
    "PUBLISHED_REFERENCE",
    "SramBaselineDesign",
]
