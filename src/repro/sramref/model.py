"""Model instance of the baseline SRAM macro.

The same hierarchical skeleton as the DRAM (fine-grained local blocks,
local SAs, low-swing GBL — the baseline [10] pioneered these techniques;
the paper *reuses its peripherals*), populated with the 6T cell.
"""

from __future__ import annotations

import dataclasses

from repro.array.macro import MacroDesign
from repro.array.organization import ArrayOrganization
from repro.array.senseamp import SenseAmplifier
from repro.cells.sram6t import Sram6tCell
from repro.errors import ConfigurationError
from repro.tech.node import TechnologyNode, VtFlavor
from repro.units import fF, kb

SRAM_CELLS_PER_LBL = 16
SRAM_CELL_ASPECT = 2.0  # 6T cells are wide and short


@dataclasses.dataclass(frozen=True)
class SramBaselineDesign:
    """Factory for baseline-SRAM macro models."""

    node: TechnologyNode = dataclasses.field(
        default_factory=TechnologyNode.logic_90nm)
    cell_flavor: VtFlavor = VtFlavor.SVT
    cells_per_lbl: int = SRAM_CELLS_PER_LBL

    def cell(self) -> Sram6tCell:
        return Sram6tCell(self.node, flavor=self.cell_flavor)

    def build(self, total_bits: int = 128 * kb,
              word_bits: int = 32) -> MacroDesign:
        """Assemble the macro at ``total_bits`` capacity."""
        if total_bits <= 0:
            raise ConfigurationError("total_bits must be positive")
        organization = ArrayOrganization(
            node=self.node,
            cell=self.cell().spec(),
            total_bits=total_bits,
            word_bits=word_bits,
            cells_per_lbl=self.cells_per_lbl,
            cell_aspect_ratio=SRAM_CELL_ASPECT,
        )
        # The [10] tunable sense amplifiers: moderate size, offset tuning.
        local_sa = SenseAmplifier(self.node, input_units=4.0,
                                  internal_cap=4 * fF, tunable=True)
        global_sa = SenseAmplifier(self.node, input_units=6.0,
                                   internal_cap=8 * fF, tunable=True)
        return MacroDesign(
            organization=organization,
            local_sa=local_sa,
            global_sa=global_sa,
        )
