"""Published figures of the baseline SRAM ([10], ESSCIRC 2008).

"A 3.6 pJ/access 480 MHz, 128 kbit on-chip SRAM with 850 MHz boost mode
in 90 nm CMOS with tunable sense amplifiers" — these numbers anchor the
calibration of our shared array model: the SRAM instance of the skeleton
should land near them, which transfers credibility to the DRAM instance.
"""

from __future__ import annotations

import dataclasses

from repro.errors import CalibrationError
from repro.units import GHz, MHz, kb, ns, pJ


@dataclasses.dataclass(frozen=True)
class Esscirc2008Reference:
    """Silicon figures published for the baseline SRAM."""

    capacity_bits: int
    energy_per_access: float  # joules
    nominal_frequency: float  # Hz
    boost_frequency: float  # Hz
    technology: str

    @property
    def nominal_cycle_time(self) -> float:
        return 1.0 / self.nominal_frequency

    @property
    def boost_cycle_time(self) -> float:
        return 1.0 / self.boost_frequency

    def check_energy(self, modelled: float, tolerance: float = 0.35) -> float:
        """Relative model error vs the published energy.

        Raises :class:`CalibrationError` outside ``tolerance`` — the
        guard that keeps the model honest when constants are touched.
        """
        error = (modelled - self.energy_per_access) / self.energy_per_access
        if abs(error) > tolerance:
            raise CalibrationError(
                f"modelled SRAM energy {modelled / pJ:.2f} pJ deviates "
                f"{100 * error:+.0f} % from the published "
                f"{self.energy_per_access / pJ:.1f} pJ"
            )
        return error

    def check_access_time(self, modelled: float,
                          tolerance: float = 0.45) -> float:
        """Relative model error vs the published boost cycle time.

        The boost-mode cycle bounds the access time from above; the
        nominal cycle leaves slack, so the anchor is the boost figure.
        """
        anchor = self.boost_cycle_time
        error = (modelled - anchor) / anchor
        if abs(error) > tolerance:
            raise CalibrationError(
                f"modelled SRAM access {modelled / ns:.2f} ns deviates "
                f"{100 * error:+.0f} % from the boost cycle "
                f"{anchor / ns:.2f} ns"
            )
        return error


PUBLISHED_REFERENCE = Esscirc2008Reference(
    capacity_bits=128 * kb,
    energy_per_access=3.6 * pJ,
    nominal_frequency=480 * MHz,
    boost_frequency=850 * MHz,
    technology="90nm CMOS",
)
