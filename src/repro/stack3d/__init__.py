"""3D-interconnect context (paper Sec. I and Fig. 2).

The paper's motivation: through-silicon vias are small, low-capacitance
and can be spread across the die, so stacking a memory die on a logic
die gives a bandwidth-energy trade-off packaged parts cannot match — and
then conventional-process DRAM (not edram) becomes available to the SoC
memory hierarchy.

* :mod:`repro.stack3d.tsv` — the TSV electrical model,
* :mod:`repro.stack3d.routing` — 3D vs off-chip routing energy/bandwidth,
* :mod:`repro.stack3d.stack` — die stacks and the hybrid cache system of
  paper Fig. 2 (fast DRAM as L1, regular DRAM as L2, on the memory die).
"""

from repro.stack3d.tsv import TsvModel
from repro.stack3d.routing import (
    RoutingLink,
    tsv_link,
    offchip_link,
    onchip_link,
    compare_links,
)
from repro.stack3d.stack import Die, DieStack, hybrid_cache_stack
from repro.stack3d.thermal import (
    ThermalLayer,
    ThermalResult,
    StackThermalModel,
    RefreshThermalCoupling,
)

__all__ = [
    "TsvModel",
    "RoutingLink",
    "tsv_link",
    "offchip_link",
    "onchip_link",
    "compare_links",
    "Die",
    "DieStack",
    "hybrid_cache_stack",
    "ThermalLayer",
    "ThermalResult",
    "StackThermalModel",
    "RefreshThermalCoupling",
]
