"""Routing-energy comparison: 3D TSV vs off-chip vs on-chip links.

Quantifies the paper's Sec. I claim: "3D vias are typically smaller and
have less parasitic capacitance than off-chip connections […] These
advantages allow to provide a better bandwidth-energy trade off for the
routing between two stacked dies than between two packaged dies."
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.errors import ConfigurationError
from repro.stack3d.tsv import TsvModel
from repro.tech.wire import GLOBAL_LAYER, Wire
from repro.units import GHz, mm, mm2, pF


@dataclasses.dataclass(frozen=True)
class RoutingLink:
    """One die-to-die (or die-to-package) data link."""

    name: str
    capacitance: float  # F per line
    swing: float  # V
    max_links: int  # connections available
    max_toggle_rate: float  # Hz per line

    def __post_init__(self) -> None:
        if self.capacitance <= 0 or self.swing <= 0:
            raise ConfigurationError("link C and swing must be positive")
        if self.max_links < 1 or self.max_toggle_rate <= 0:
            raise ConfigurationError("link count and rate must be positive")

    @property
    def energy_per_bit(self) -> float:
        """Energy per transferred bit (one transition), joules."""
        return self.capacitance * self.swing ** 2

    @property
    def aggregate_bandwidth(self) -> float:
        """Peak bits/second across all links."""
        return self.max_links * self.max_toggle_rate

    def power_at(self, bandwidth: float, activity: float = 0.5) -> float:
        """Power to sustain ``bandwidth`` bits/s, watts."""
        if bandwidth < 0:
            raise ConfigurationError("bandwidth must be >= 0")
        if bandwidth > self.aggregate_bandwidth:
            raise ConfigurationError(
                f"{self.name}: requested {bandwidth:.3g} b/s exceeds the "
                f"link's {self.aggregate_bandwidth:.3g} b/s"
            )
        return bandwidth * self.energy_per_bit * activity


def tsv_link(die_area: float, tsv: TsvModel | None = None,
             signal_fraction: float = 0.25) -> RoutingLink:
    """3D link: TSVs spread over the die area (paper's scenario)."""
    tsv = TsvModel() if tsv is None else tsv
    if not 0 < signal_fraction <= 1:
        raise ConfigurationError("signal fraction must lie in (0, 1]")
    count = max(1, int(tsv.vias_per_area(die_area) * signal_fraction))
    return RoutingLink(
        name="3d-tsv",
        capacitance=tsv.capacitance,
        swing=1.2,
        max_links=count,
        max_toggle_rate=2 * GHz,
    )


def offchip_link(pin_count: int = 256) -> RoutingLink:
    """Packaged-die link: bond pad + package trace + termination."""
    if pin_count < 1:
        raise ConfigurationError("pin count must be >= 1")
    return RoutingLink(
        name="off-chip",
        capacitance=4 * pF,  # pad + wire-bond + PCB stub
        swing=1.8,  # I/O voltage domain
        max_links=pin_count,
        max_toggle_rate=0.8 * GHz,
    )


def onchip_link(length: float = 5 * mm, lines: int = 512) -> RoutingLink:
    """Same-die global wire, for reference."""
    wire = Wire(GLOBAL_LAYER, length)
    return RoutingLink(
        name="on-chip",
        capacitance=wire.capacitance,
        swing=1.2,
        max_links=lines,
        max_toggle_rate=1 * GHz,
    )


def compare_links(die_area: float = 25 * mm2,
                  bandwidth: float = 64e9  # noqa: L101 - bits/s
                  ) -> Dict[str, Dict[str, float]]:
    """The Sec. I comparison at a common bandwidth target.

    Returns energy/bit, aggregate bandwidth and power for the three link
    styles; the benchmark asserts TSV beats off-chip on both axes.
    """
    links = [tsv_link(die_area), offchip_link(), onchip_link()]
    result = {}
    for link in links:
        entry = {
            "energy_per_bit_j": link.energy_per_bit,
            "aggregate_bandwidth_bps": link.aggregate_bandwidth,
        }
        try:
            entry["power_w"] = link.power_at(bandwidth)
        except ConfigurationError:
            entry["power_w"] = float("inf")
        result[link.name] = entry
    return result
