"""Die stacks and the hybrid 3D cache system of paper Fig. 2.

Fig. 2 sketches the application: logic dies (the cores) stacked under a
memory die that carries *both* cache levels — the proposed fast DRAM as
first level and regular-density DRAM as second level, connected by TSVs.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.array.macro import MacroDesign
from repro.core.fastdram import FastDramDesign
from repro.errors import ConfigurationError
from repro.stack3d.routing import RoutingLink, tsv_link
from repro.stack3d.tsv import TsvModel
from repro.units import kb, Mb, mm2


@dataclasses.dataclass(frozen=True)
class Die:
    """One die of the stack."""

    name: str
    kind: str  # "logic" or "memory"
    area: float  # m^2
    macros: Tuple[MacroDesign, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("logic", "memory"):
            raise ConfigurationError(f"unknown die kind {self.kind!r}")
        if self.area <= 0:
            raise ConfigurationError("die area must be positive")
        macro_area = sum(m.area() for m in self.macros)
        if macro_area > self.area:
            raise ConfigurationError(
                f"die {self.name!r}: macros need {macro_area / mm2:.2f} mm^2 "
                f"but the die has {self.area / mm2:.2f} mm^2"
            )


@dataclasses.dataclass(frozen=True)
class DieStack:
    """A vertical stack of dies linked by TSVs."""

    dies: Tuple[Die, ...]
    tsv: TsvModel = dataclasses.field(default_factory=TsvModel)

    def __post_init__(self) -> None:
        if len(self.dies) < 2:
            raise ConfigurationError("a stack needs at least two dies")

    @property
    def footprint(self) -> float:
        """Stack footprint = largest die, m^2."""
        return max(die.area for die in self.dies)

    def interface(self, lower: int = 0, upper: int = 1) -> RoutingLink:
        """The TSV link between two adjacent dies."""
        if not (0 <= lower < len(self.dies) and 0 <= upper < len(self.dies)):
            raise ConfigurationError("die index out of range")
        if abs(upper - lower) != 1:
            raise ConfigurationError("TSVs only link adjacent dies")
        shared = min(self.dies[lower].area, self.dies[upper].area)
        return tsv_link(shared, tsv=self.tsv)

    def memory_capacity(self) -> int:
        """Total bits of all memory macros in the stack."""
        return sum(
            m.organization.total_bits
            for die in self.dies for m in die.macros
        )


def hybrid_cache_stack(logic_area: float = 25 * mm2,
                       l1_bits: int = 128 * kb,
                       l2_bits: int = 2 * Mb) -> DieStack:
    """Build the paper Fig. 2 system: cores below, hybrid cache above.

    The memory die carries the fast DRAM (L1) next to a dense
    conventional-organization DRAM (L2, modelled as the fast design with
    maximal LBL sharing — density over speed).
    """
    l1 = FastDramDesign(technology="dram").build(l1_bits)
    # L2: same cell, coarse granularity (128 cells/LBL) = denser, slower.
    l2 = FastDramDesign(technology="dram", cells_per_lbl=128).build(l2_bits)
    memory_die = Die(
        name="memory",
        kind="memory",
        area=max(logic_area, 1.2 * (l1.area() + l2.area())),
        macros=(l1, l2),
    )
    logic_die = Die(name="logic", kind="logic", area=logic_area)
    return DieStack(dies=(logic_die, memory_die))
