"""Thermal model of the 3D stack — the feedback loop the paper omits.

Stacking memory on logic has a thermal price: the logic die's power
heats the memory die, DRAM retention halves every ~10 K, and the
refresh power rises — which heats the stack a little more.  This module
models the stack as a 1-D thermal resistance ladder (die-to-die bond
and silicon conduction, package/heatsink to ambient at the top or
bottom) and solves the retention/refresh feedback to a fixed point.

The result quantifies a real adoption question for the paper's system:
how much of the 10x static-power win survives under a hot logic die?
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.refresh.adaptive import TemperatureAdaptiveRefresh
from repro.units import ns, pW, um

SILICON_CONDUCTIVITY = 130.0  # W / (m K)
DIE_THICKNESS = 100 * um  # thinned die
BOND_RESISTANCE_PER_AREA = 2e-5  # noqa: L101 - K m^2 / W, die-to-die bond


@dataclasses.dataclass(frozen=True)
class ThermalLayer:
    """One die of the thermal ladder."""

    name: str
    power: float  # W dissipated in this die
    area: float  # m^2

    def __post_init__(self) -> None:
        if self.power < 0:
            raise ConfigurationError("layer power must be >= 0")
        if self.area <= 0:
            raise ConfigurationError("layer area must be positive")


@dataclasses.dataclass(frozen=True)
class ThermalResult:
    """Per-layer temperatures of one solve, kelvin."""

    temperatures: List[float]
    ambient: float
    iterations: int

    def hottest(self) -> float:
        return max(self.temperatures)


@dataclasses.dataclass(frozen=True)
class StackThermalModel:
    """1-D thermal ladder: heatsink - die_0 - bond - die_1 - ... .

    ``sink_resistance`` couples layer 0 to ambient (the heatsink side);
    heat from upper dies flows down through silicon + bond resistances.
    This is the classical worst case for memory-on-logic: the memory
    die sits *away* from the heatsink.
    """

    layers: Sequence[ThermalLayer]
    ambient: float = 318.0  # 45 C board environment
    sink_resistance: float = 1.0  # K/W, heatsink + package

    def __post_init__(self) -> None:
        if not self.layers:
            raise ConfigurationError("stack needs at least one layer")
        if self.sink_resistance <= 0:
            raise ConfigurationError("sink resistance must be positive")
        if self.ambient < 200:
            raise ConfigurationError("ambient must be in kelvin")

    def interlayer_resistance(self, lower: int) -> float:
        """Thermal resistance between layer ``lower`` and ``lower + 1``."""
        shared_area = min(self.layers[lower].area,
                          self.layers[lower + 1].area)
        conduction = DIE_THICKNESS / (SILICON_CONDUCTIVITY * shared_area)
        bond = BOND_RESISTANCE_PER_AREA / shared_area
        return conduction + bond

    def solve(self, extra_powers: Sequence[float] | None = None
              ) -> ThermalResult:
        """Steady-state layer temperatures.

        In the 1-D ladder, all heat generated at or above layer i flows
        through the resistance below layer i, so the temperatures follow
        in closed form by accumulating the heat flux down the ladder.
        ``extra_powers`` adds per-layer power (the refresh feedback).
        """
        n = len(self.layers)
        extra = [0.0] * n if extra_powers is None else list(extra_powers)
        if len(extra) != n:
            raise ConfigurationError("extra_powers must match layer count")
        powers = [layer.power + extra[i]
                  for i, layer in enumerate(self.layers)]
        total = sum(powers)
        temperatures = [self.ambient + total * self.sink_resistance]
        for i in range(1, n):
            flux_above = sum(powers[i:])
            rise = flux_above * self.interlayer_resistance(i - 1)
            temperatures.append(temperatures[i - 1] + rise)
        return ThermalResult(temperatures=temperatures,
                             ambient=self.ambient, iterations=1)


@dataclasses.dataclass(frozen=True)
class RefreshThermalCoupling:
    """The retention/refresh/temperature fixed point.

    Parameters
    ----------
    stack:
        The thermal ladder (memory die = ``memory_layer`` index).
    memory_layer:
        Which layer holds the DRAM.
    refresh_model:
        Temperature-to-retention law (calibrated at its base point).
    rows:
        Rows refreshed per period.
    row_energy:
        Energy per row refresh, joules.
    """

    stack: StackThermalModel
    memory_layer: int
    refresh_model: TemperatureAdaptiveRefresh
    rows: int
    row_energy: float

    def __post_init__(self) -> None:
        if not 0 <= self.memory_layer < len(self.stack.layers):
            raise ConfigurationError("memory layer index out of range")
        if self.rows < 1 or self.row_energy <= 0:
            raise ConfigurationError("rows and row energy must be positive")

    def refresh_power_at(self, temperature: float) -> float:
        """Refresh power when the memory die sits at ``temperature``."""
        period = self.refresh_model.refresh_period_at(temperature)
        if period <= self.rows * ns:
            # Less than ~1 ns per row: the matrix cannot even keep up
            # with its own refresh — thermal runaway territory.
            raise ConfigurationError(
                f"refresh period {period:.3g} s at {temperature:.0f} K is "
                "below the physically serviceable rate: thermal runaway"
            )
        return self.rows * self.row_energy / period

    def solve(self, max_iterations: int = 50,
              tolerance: float = 1e-3) -> tuple[ThermalResult, float]:
        """Fixed point of (temperature -> refresh power -> temperature).

        Returns the converged thermal result and the refresh power.
        Raises :class:`ConfigurationError` on thermal runaway (the
        feedback failing to converge — physically: the refresh power
        grows faster with temperature than the stack can shed).
        """
        refresh_power = 0.0
        result = self.stack.solve()
        for iteration in range(1, max_iterations + 1):
            extra = [0.0] * len(self.stack.layers)
            extra[self.memory_layer] = refresh_power
            result = self.stack.solve(extra_powers=extra)
            temperature = result.temperatures[self.memory_layer]
            updated = self.refresh_power_at(temperature)
            if abs(updated - refresh_power) <= tolerance * max(updated, 1 * pW):
                return (ThermalResult(temperatures=result.temperatures,
                                      ambient=result.ambient,
                                      iterations=iteration),
                        updated)
            refresh_power = updated
        raise ConfigurationError(
            "refresh/thermal feedback did not converge: thermal runaway "
            f"(last refresh power {refresh_power:.3g} W)"
        )
