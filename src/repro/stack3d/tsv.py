"""Through-silicon via electrical model.

Calibrated to the via-last Cu TSV technology of the paper's era
(Kawano et al., VLSI-TSA 2007 [7]): ~10 um diameter, ~50 um depth,
tens of femtofarads — two orders of magnitude below a package pin.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigurationError
from repro.units import fF, um

_COPPER_RESISTIVITY = 1.7e-8  # noqa: L101 - ohm * m (no units.py entry)


@dataclasses.dataclass(frozen=True)
class TsvModel:
    """One TSV: a copper cylinder through a thinned die."""

    diameter: float = 10 * um
    depth: float = 50 * um
    pitch: float = 40 * um
    liner_capacitance: float = 35 * fF

    def __post_init__(self) -> None:
        if min(self.diameter, self.depth, self.pitch) <= 0:
            raise ConfigurationError("TSV dimensions must be positive")
        if self.pitch < self.diameter:
            raise ConfigurationError("TSV pitch smaller than its diameter")
        if self.liner_capacitance <= 0:
            raise ConfigurationError("TSV capacitance must be positive")

    @property
    def resistance(self) -> float:
        """Series resistance of the copper column, ohms."""
        area = math.pi * (self.diameter / 2.0) ** 2
        return _COPPER_RESISTIVITY * self.depth / area

    @property
    def capacitance(self) -> float:
        return self.liner_capacitance

    def energy_per_transition(self, swing: float) -> float:
        """Energy of one full-swing transition through the TSV, joules."""
        if swing <= 0:
            raise ConfigurationError("swing must be positive")
        return self.capacitance * swing ** 2

    def vias_per_area(self, area: float) -> int:
        """How many TSVs fit on ``area`` m^2 at this pitch.

        The paper's bandwidth argument: TSVs "can be spread across the
        chip", so the connection count scales with *area*, not
        perimeter.
        """
        if area <= 0:
            raise ConfigurationError("area must be positive")
        return int(area / self.pitch ** 2)
