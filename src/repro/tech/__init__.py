"""Technology substrate: 90 nm device, wire and capacitor models.

This package replaces the foundry PDK the paper used.  It provides
analytic, calibrated models of:

* :class:`~repro.tech.node.TechnologyNode` — process constants for the
  90 nm logic process of the scratch-pad design and the 90 nm DRAM
  process of the final estimate (paper Fig. 6, "DRAM tech estimation").
* :class:`~repro.tech.transistor.Mosfet` — alpha-power-law MOSFET with
  subthreshold and leakage behaviour, used both directly by the
  architecture model and as the device curve behind the
  :mod:`repro.spice` MOSFET element.
* :class:`~repro.tech.wire.Wire` — interconnect RC.
* :class:`~repro.tech.capacitor` — storage capacitors (CMOS gate cap,
  deep trench).
"""

from repro.tech.node import TechnologyNode, TransistorParams, VtFlavor, Polarity
from repro.tech.transistor import Mosfet
from repro.tech.wire import Wire, WireLayer, repeater_stage_delay
from repro.tech.capacitor import StorageCapacitor, CapacitorKind
from repro.tech.corners import Corner, apply_corner
from repro.tech.leakage import (
    subthreshold_leakage,
    gate_leakage,
    junction_leakage,
    stacked_leakage_factor,
)

__all__ = [
    "TechnologyNode",
    "TransistorParams",
    "VtFlavor",
    "Polarity",
    "Mosfet",
    "Wire",
    "WireLayer",
    "repeater_stage_delay",
    "StorageCapacitor",
    "CapacitorKind",
    "Corner",
    "apply_corner",
    "subthreshold_leakage",
    "gate_leakage",
    "junction_leakage",
    "stacked_leakage_factor",
]
