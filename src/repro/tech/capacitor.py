"""Storage capacitor models.

The paper's methodology hinges on two cells:

* the *scratch-pad* cell — an 11 fF CMOS gate capacitance, buildable in
  the plain logic process (paper Sec. III);
* the *DRAM-technology* cell — a 30 fF deep-trench capacitor with a much
  smaller footprint, used for the final estimate.

Both are described by :class:`StorageCapacitor`.  Leakage through the
capacitor dielectric matters for retention of the gate-cap cell (gate
tunnelling) and is negligible for the trench.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import ConfigurationError
from repro.tech.node import TechnologyNode
from repro.units import aF, fF, um2


class CapacitorKind(enum.Enum):
    """Physical implementation of the storage capacitor."""

    CMOS_GATE = "cmos-gate"
    DEEP_TRENCH = "deep-trench"
    MIM = "mim"


@dataclasses.dataclass(frozen=True)
class StorageCapacitor:
    """A storage capacitor of a DRAM cell.

    Attributes
    ----------
    kind:
        Physical implementation.
    capacitance:
        Storage capacitance, farads.
    area:
        Silicon footprint, m^2.  For the trench this is the cell-area
        contribution (the trench itself goes down, not sideways).
    dielectric_leakage:
        Leakage through the capacitor dielectric at full bias, amperes.
    """

    kind: CapacitorKind
    capacitance: float
    area: float
    dielectric_leakage: float

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ConfigurationError("capacitance must be positive")
        if self.area <= 0:
            raise ConfigurationError("area must be positive")
        if self.dielectric_leakage < 0:
            raise ConfigurationError("dielectric leakage must be >= 0")

    @classmethod
    def cmos_gate(cls, node: TechnologyNode,
                  capacitance: float = 11 * fF) -> "StorageCapacitor":
        """The scratch-pad cell capacitor: an NMOS gate in the logic process.

        Area follows from the gate-capacitance density; gate tunnelling
        through the thin logic oxide is the dominant dielectric leakage
        and is what makes the scratch-pad retention conservative.
        """
        # Gate cap density ~ Cox; reuse the per-width constant over the
        # min-length channel to get F/m^2.
        density = node.gate_cap_per_width / node.feature_size  # F / m^2
        area = capacitance / density
        leakage = node.gate_leak_per_area * area
        return cls(kind=CapacitorKind.CMOS_GATE, capacitance=capacitance,
                   area=area, dielectric_leakage=leakage)

    @classmethod
    def deep_trench(cls, node: TechnologyNode,
                    capacitance: float = 30 * fF) -> "StorageCapacitor":
        """The DRAM-technology trench capacitor (paper Sec. III).

        The trench contributes almost no extra footprint beyond the
        0.3 um^2 cell; dielectric leakage of the thick trench dielectric
        is negligible compared to junction leakage.
        """
        return cls(kind=CapacitorKind.DEEP_TRENCH, capacitance=capacitance,
                   area=0.1 * node.dram_cell_area, dielectric_leakage=1 * aF)

    @classmethod
    def mim(cls, capacitance: float, density: float = 2 * fF / um2
            ) -> "StorageCapacitor":
        """Metal-insulator-metal capacitor (explored as an alternative)."""
        if density <= 0:
            raise ConfigurationError("MIM density must be positive")
        return cls(kind=CapacitorKind.MIM, capacitance=capacitance,
                   area=capacitance / density, dielectric_leakage=1 * aF)

    def stored_charge(self, voltage: float) -> float:
        """Charge stored at ``voltage``, coulombs."""
        if voltage < 0:
            raise ConfigurationError("storage voltage must be >= 0")
        return self.capacitance * voltage
