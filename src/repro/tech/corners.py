"""Process corners and temperature derating.

The paper quotes worst-case figures ("worst case retention time in 6-sigma
worst case monte-carlo"); corner support lets the benchmarks report the
same corner the paper does and lets tests check corner ordering (SS slower
than TT slower than FF, leakage highest at FF/hot).
"""

from __future__ import annotations

import dataclasses
import enum
import math

from repro.errors import ConfigurationError
from repro.tech.node import Polarity, TechnologyNode, TransistorParams
from repro.units import mV


class Corner(enum.Enum):
    """Classical five process corners (NMOS letter first)."""

    TT = "tt"
    FF = "ff"
    SS = "ss"
    FS = "fs"
    SF = "sf"


# vth shift (V) applied to (nmos, pmos) per corner.  Fast = lower vth.
_VTH_SHIFT = {
    Corner.TT: (0.0, 0.0),
    Corner.FF: (-0.04, -0.04),
    Corner.SS: (+0.04, +0.04),
    Corner.FS: (-0.04, +0.04),
    Corner.SF: (+0.04, -0.04),
}

_REFERENCE_TEMPERATURE = 300.0


def _derate_params(params: TransistorParams, vth_shift: float,
                   temperature: float) -> TransistorParams:
    """Shift one transistor card to a corner + temperature."""
    dt = temperature - _REFERENCE_TEMPERATURE
    # Mobility degrades ~ (T/T0)^-1.5; vth drops ~ 1 mV/K with temperature.
    mobility_factor = (temperature / _REFERENCE_TEMPERATURE) ** -1.5
    vth = params.vth + vth_shift - 1 * mV * dt
    if vth <= 0.05:
        raise ConfigurationError(
            f"corner/temperature pushed vth to {vth:.3f} V; model invalid"
        )
    # Subthreshold swing scales linearly with absolute temperature.
    swing = params.subthreshold_swing * temperature / _REFERENCE_TEMPERATURE
    # Leakage: the diffusion prefactor goes as T^2 and the vth shift acts
    # through the (new) swing.
    vth_delta = vth - params.vth
    i_off = (params.i_off
             * (temperature / _REFERENCE_TEMPERATURE) ** 2
             * 10.0 ** (-vth_delta / swing))
    return dataclasses.replace(
        params,
        vth=vth,
        k_sat=params.k_sat * mobility_factor,
        i_off=i_off,
        subthreshold_swing=swing,
    )


def apply_corner(node: TechnologyNode, corner: Corner,
                 temperature: float | None = None) -> TechnologyNode:
    """Return ``node`` shifted to ``corner`` at ``temperature`` (kelvin).

    >>> from repro.tech import TechnologyNode
    >>> hot_ss = apply_corner(TechnologyNode.logic_90nm(), Corner.SS, 398.0)
    >>> hot_ss.temperature
    398.0
    """
    temperature = node.temperature if temperature is None else temperature
    if temperature < 200 or temperature > 450:
        raise ConfigurationError(
            f"temperature {temperature} K outside the validated 200-450 K range"
        )
    nmos_shift, pmos_shift = _VTH_SHIFT[corner]
    transistors = {}
    for (polarity, flavor), params in node.transistors.items():
        shift = nmos_shift if polarity is Polarity.NMOS else pmos_shift
        transistors[(polarity, flavor)] = _derate_params(params, shift, temperature)
    # Junction leakage roughly doubles every 10 K.
    junction_scale = 2.0 ** ((temperature - node.temperature) / 10.0)
    return dataclasses.replace(
        node,
        name=f"{node.name}-{corner.value}-{temperature:.0f}K",
        temperature=temperature,
        transistors=transistors,
        junction_leak_per_width=node.junction_leak_per_width * junction_scale,
        gate_leak_per_area=node.gate_leak_per_area
        * math.exp(0.005 * (temperature - node.temperature)),
    )
