"""Leakage mechanism helpers.

The static-power comparison (paper Fig. 7c) is the heart of the paper's
claim: an SRAM cell *continuously* burns its leakage current, while a
DRAM cell's leakage only costs energy when the cell is refreshed.  These
helpers compute the ingredient currents; :mod:`repro.array.static_power`
assembles them into the figure.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.tech.node import TechnologyNode
from repro.tech.transistor import Mosfet


def subthreshold_leakage(device: Mosfet, vds: float | None = None) -> float:
    """Subthreshold leakage of one off device, amperes."""
    return device.off_current(vds=vds)


def gate_leakage(device: Mosfet) -> float:
    """Gate tunnelling leakage of one on device, amperes."""
    return device.gate_leakage()


def junction_leakage(node: TechnologyNode, junction_width: float) -> float:
    """Reverse-biased junction + GIDL leakage, amperes.

    This is the current that discharges a DRAM cell through its access
    transistor drain and hence sets retention time.
    """
    if junction_width <= 0:
        raise ConfigurationError("junction width must be positive")
    return node.junction_leak_per_width * junction_width


def stacked_leakage_factor(stack_depth: int) -> float:
    """Leakage reduction factor of a stack of series off-devices.

    Two stacked off transistors leak roughly an order of magnitude less
    than one (the shared node self-biases).  Modelled as 10x per extra
    device, the standard first-order rule.
    """
    if stack_depth < 1:
        raise ConfigurationError("stack depth must be >= 1")
    return 10.0 ** -(stack_depth - 1)


def sram_cell_leakage(node: TechnologyNode, cell_device: Mosfet) -> float:
    """Leakage of one 6T SRAM cell, amperes.

    A 6T cell always has exactly two off NMOS and one off PMOS on the
    storage nodes plus one off access device; lumped here as ~3 device
    widths of subthreshold leakage plus gate leakage of the two on
    devices.  ``cell_device`` is a representative cell transistor.
    """
    sub = 3.0 * subthreshold_leakage(cell_device)
    gate = 2.0 * gate_leakage(cell_device)
    return sub + gate
